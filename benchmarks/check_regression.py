"""Benchmark regression gate: compare a fresh run against the baseline.

CI reruns the engine comparison (``bench_kernel_perf.py``) and then
calls this script to diff the fresh ``benchmarks/results/BENCH_kernel.json``
against the committed repo-root ``BENCH_kernel.json`` baseline.  Raw
cycles-per-second numbers are machine-dependent, so the gate compares
the machine-portable *speedup ratios* — ``event_speedup`` (event vs
naive) and ``compiled_speedup`` (compiled vs event) — per workload: a
workload regresses when a ratio drops more than ``BENCH_TOLERANCE``
(default 0.25, i.e. >25%) below the baseline.

Usage::

    python benchmarks/check_regression.py [baseline.json] [current.json]

Writes a markdown delta table to stdout, to
``benchmarks/results/regression_delta.md`` (uploaded as a CI artifact
even when the gate passes) and, when the ``GITHUB_STEP_SUMMARY``
environment variable is set (as in GitHub Actions), appends the same
table to the job summary.  Exits non-zero if any workload regressed.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_kernel.json"
DEFAULT_CURRENT = (
    pathlib.Path(__file__).resolve().parent / "results" / "BENCH_kernel.json"
)

#: The speedup ratios the gate guards, and their display names.
#: `ensemble_speedup` (batched vs serial scenarios/sec) only exists on
#: the ensemble-capable mt_* workloads; `profile_overhead` (cps after a
#: profiler attach/detach round trip vs plain, nominally 1.0) only on
#: mt_pipeline; others show "no data".
RATIOS = (
    ("event_speedup", "event/naive"),
    ("compiled_speedup", "compiled/event"),
    ("ensemble_speedup", "ensemble/serial"),
    ("profile_overhead", "profile-off/plain"),
)


def tolerance() -> float:
    raw = os.environ.get("BENCH_TOLERANCE", "0.25")
    try:
        value = float(raw)
    except ValueError:
        raise SystemExit(f"invalid BENCH_TOLERANCE {raw!r} (want a float)")
    if not 0 <= value < 1:
        raise SystemExit(f"BENCH_TOLERANCE {value} out of range [0, 1)")
    return value


def compare(baseline: dict, current: dict, tol: float):
    """Return (markdown lines, regression messages)."""
    lines = [
        "### Benchmark regression gate",
        "",
        f"baseline mode `{baseline.get('mode', '?')}` "
        f"(py {baseline.get('python', '?')}) vs current mode "
        f"`{current.get('mode', '?')}` (py {current.get('python', '?')}); "
        f"tolerance {tol:.0%}",
        "",
        "| workload | ratio | baseline | current | delta | status |",
        "|---|---|---|---|---|---|",
    ]
    regressions: list[str] = []
    base_workloads = baseline.get("workloads", {})
    cur_workloads = current.get("workloads", {})
    for name, base_row in base_workloads.items():
        cur_row = cur_workloads.get(name)
        if cur_row is None:
            regressions.append(f"{name}: missing from current results")
            lines.append(f"| {name} | — | — | — | — | ❌ missing |")
            continue
        for key, label in RATIOS:
            base_ratio = base_row.get(key)
            cur_ratio = cur_row.get(key)
            if base_ratio is None or cur_ratio is None:
                lines.append(
                    f"| {name} | {label} | — | — | — | ⏭ no data |"
                )
                continue
            delta = (cur_ratio - base_ratio) / base_ratio
            ok = cur_ratio >= base_ratio * (1 - tol)
            status = "✅ ok" if ok else "❌ regressed"
            lines.append(
                f"| {name} | {label} | {base_ratio:.2f}x | "
                f"{cur_ratio:.2f}x | {delta:+.0%} | {status} |"
            )
            if not ok:
                regressions.append(
                    f"{name}: {label} {base_ratio:.2f}x -> "
                    f"{cur_ratio:.2f}x ({delta:+.0%}, tolerance -{tol:.0%})"
                )
    for name in cur_workloads:
        if name not in base_workloads:
            lines.append(f"| {name} | — | new | — | — | ℹ not gated |")
    return lines, regressions


def main(argv: list[str]) -> int:
    baseline_path = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_BASELINE
    current_path = pathlib.Path(argv[2]) if len(argv) > 2 else DEFAULT_CURRENT
    for path, what in ((baseline_path, "baseline"), (current_path, "current")):
        if not path.is_file():
            print(f"error: {what} results not found at {path}")
            return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = json.loads(current_path.read_text(encoding="utf-8"))
    lines, regressions = compare(baseline, current, tolerance())
    if regressions:
        lines += ["", "**Regressions:**", ""]
        lines += [f"- {msg}" for msg in regressions]
    report = "\n".join(lines) + "\n"
    print(report)
    delta_path = current_path.parent / "regression_delta.md"
    try:
        delta_path.write_text(report, encoding="utf-8")
    except OSError as exc:  # the table is advisory; never fail on it
        print(f"warning: could not write {delta_path}: {exc}")
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(report)
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
