"""E13 (extension) — processor pipeline utilization vs thread count.

Quantifies the paper's §I motivation on the §V-B processor:
"multithreading increases the utilization of processing units and hides
the latency of each operation by time-multiplexing operations of
different threads in the datapath."

Sweeps the number of armed hardware threads (identical spin-loop
programs, deliberately slow instruction/data memories) and reports IPC,
speedup over 1 thread, and the fetch-stage channel utilization.  Also
compares full vs reduced MEBs across the sweep (the Table I footnote:
throughput is not sacrificed).
"""

from __future__ import annotations

import io

from repro.apps.processor import Processor, programs

THREAD_SWEEP = (1, 2, 4, 8)
MEM_CFG = dict(imem_latency=2, dmem_latency=4, mul_latency=3)


def run_sweep(meb: str):
    out = {}
    for n in THREAD_SWEEP:
        cpu = Processor(threads=n, meb=meb, monitor=True, **MEM_CFG)
        for t in range(n):
            cpu.load_program(t, programs.spin(40).source)
        stats = cpu.run()
        fetch_mon = cpu.monitors["c_pc"]
        out[n] = {
            "ipc": stats.ipc,
            "cycles": stats.cycles,
            "retired": stats.total_retired,
            "fetch_util": fetch_mon.utilization(),
        }
    return out


def test_ipc_scaling_with_threads(benchmark, report):
    data = benchmark(run_sweep, "reduced")
    base = data[1]["ipc"]
    buf = io.StringIO()
    buf.write("Processor utilization vs hardware threads "
              "(reduced MEBs, imem=2, dmem=4 cycles)\n\n")
    buf.write(f"{'threads':>8} | {'cycles':>7} | {'IPC':>6} | "
              f"{'speedup':>8} | {'fetch-channel util':>18}\n")
    for n in THREAD_SWEEP:
        d = data[n]
        buf.write(
            f"{n:>8} | {d['cycles']:>7} | {d['ipc']:>6.3f} | "
            f"{d['ipc'] / base:>7.2f}x | {d['fetch_util']:>18.2f}\n"
        )
    report("processor_utilization", buf.getvalue())

    # IPC grows monotonically with thread count...
    ipcs = [data[n]["ipc"] for n in THREAD_SWEEP]
    assert ipcs == sorted(ipcs)
    # ...with near-linear speedup while the pipeline has slack.
    assert data[4]["ipc"] > 3.5 * base
    # Channel utilization rises toward saturation.
    assert data[8]["fetch_util"] > data[1]["fetch_util"]


def test_full_vs_reduced_across_sweep(benchmark, report):
    def both():
        return {meb: run_sweep(meb) for meb in ("full", "reduced")}

    data = benchmark(both)
    buf = io.StringIO()
    buf.write("Full vs reduced MEBs: IPC across the thread sweep\n\n")
    buf.write(f"{'threads':>8} | {'full IPC':>9} | {'reduced IPC':>12}\n")
    for n in THREAD_SWEEP:
        buf.write(
            f"{n:>8} | {data['full'][n]['ipc']:>9.3f} | "
            f"{data['reduced'][n]['ipc']:>12.3f}\n"
        )
    report("processor_full_vs_reduced_sweep", buf.getvalue())
    for n in THREAD_SWEEP:
        full_ipc = data["full"][n]["ipc"]
        red_ipc = data["reduced"][n]["ipc"]
        assert abs(full_ipc - red_ipc) / full_ipc < 0.05
