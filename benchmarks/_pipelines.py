"""Pipeline builders shared by the benchmark harness."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.core import (
    FullMEB,
    GrantPolicy,
    MBranch,
    MMerge,
    MTChannel,
    MTFunction,
    MTMonitor,
    MTSink,
    MTSource,
)
from repro.elastic.endpoints import Pattern
from repro.kernel import build


def make_mt_pipeline(
    meb_cls,
    threads: int,
    items: Sequence[Iterable[Any]],
    n_stages: int = 2,
    src_patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
    sink_patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
    policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
    width: int = 32,
    engine: str | None = None,
):
    """source -> MEB^n_stages -> sink with a monitor on every channel."""
    chans = [
        MTChannel(f"ch{i}", threads=threads, width=width)
        for i in range(n_stages + 1)
    ]
    source = MTSource("src", chans[0], items=items, patterns=src_patterns)
    mebs = [
        meb_cls(f"meb{i}", chans[i], chans[i + 1], policy=policy)
        for i in range(n_stages)
    ]
    sink = MTSink("snk", chans[-1], patterns=sink_patterns)
    monitors = [MTMonitor(f"mon{i}", ch) for i, ch in enumerate(chans)]
    sim = build(*chans, source, *mebs, sink, *monitors, engine=engine)
    return sim, source, sink, mebs, monitors


def make_mt_bursty(
    meb_cls,
    threads: int,
    n_stages: int = 2,
    width: int = 32,
    engine: str | None = None,
):
    """An MT pipeline fed in bursts with long quiescent gaps.

    Built like :func:`make_mt_pipeline` (monitors included) but with
    empty source streams: the caller pushes a burst of items per thread,
    runs a fixed-length window (``sim.run(cycles=gap)``), and repeats.
    Once a burst drains, the design is fully quiescent for the rest of
    the window — the workload shape the compiled engine's settle+tick
    fusion batches, while the event engine still pays per-cycle
    scheduling and the full tick dispatch.
    """
    items = [[] for _ in range(threads)]
    return make_mt_pipeline(
        meb_cls, threads=threads, items=items, n_stages=n_stages,
        width=width, engine=engine,
    )


def make_mt_chain(
    threads: int,
    n_funcs: int,
    n_items: int,
    width: int = 32,
    engine: str | None = None,
):
    """source -> MEB -> shared-function chain -> MEB -> sink.

    The paper's §I motif — one copy of the datapath logic serving all
    threads time-multiplexed — as a pure dense chain: every stage is a
    combinational :class:`MTFunction`, so the settle phase dominates and
    the declared dependency graph is one long acyclic run (the compiled
    engine fuses it into a single straight-line function).
    """
    chans = [
        MTChannel(f"c{i}", threads=threads, width=width)
        for i in range(n_funcs + 3)
    ]
    source = MTSource(
        "src", chans[0],
        items=[list(range(n_items)) for _ in range(threads)],
    )
    meb_in = FullMEB("meb_in", chans[0], chans[1])
    funcs = [
        MTFunction(
            f"f{k}", chans[1 + k], chans[2 + k],
            fn=(lambda x, k=k: (x * 7 + k) & 0xFFFF), pure=True,
        )
        for k in range(n_funcs)
    ]
    meb_out = FullMEB("meb_out", chans[n_funcs + 1], chans[n_funcs + 2])
    sink = MTSink("snk", chans[-1])
    sim = build(*chans, source, meb_in, *funcs, meb_out, sink,
                engine=engine)
    return sim, source, sink


def make_mt_ring(
    threads: int,
    n_funcs: int,
    trips: int,
    width: int = 32,
    engine: str | None = None,
):
    """Recirculating elastic ring: merge -> MEB -> functions -> branch.

    The MD5-style loop topology (paper Fig. 1) distilled to the
    substrate: one token per thread makes *trips* passes around the
    ring before the branch releases it.  The whole ring is one cyclic
    SCC, exercising the engines' worklist path with ~every member
    switching every cycle.
    """
    c_new = MTChannel("c_new", threads, width)
    c_loop = MTChannel("c_loop", threads, width)
    c_rec = MTChannel("c_rec", threads, width)
    c_out = MTChannel("c_out", threads, width)
    c_fin = MTChannel("c_fin", threads, width)
    inner = [MTChannel(f"ci{k}", threads, width) for k in range(n_funcs + 1)]
    source = MTSource("src", c_new, items=[[(t, 0)] for t in range(threads)])
    merge = MMerge("merge", [c_new, c_rec], c_loop)
    meb_in = FullMEB("meb_in", c_loop, inner[0])
    funcs = [
        MTFunction(
            f"f{k}", inner[k], inner[k + 1],
            fn=(lambda d, k=k: ((d[0] * 5 + k) & 0xFFFF, d[1])), pure=True,
        )
        for k in range(n_funcs)
    ]
    meb_out = FullMEB("meb_out", inner[-1], c_out)
    branch = MBranch(
        "br", c_out, [c_rec, c_fin],
        selector=lambda d: 1 if d[1] >= trips - 1 else 0,
        route=lambda d: (d[0], d[1] + 1),
    )
    sink = MTSink("snk", c_fin)
    sim = build(c_new, c_loop, c_rec, c_out, c_fin, *inner, source, merge,
                meb_in, *funcs, meb_out, branch, sink, engine=engine)
    return sim, source, sink
