"""Pipeline builders shared by the benchmark harness.

The factories now live in :mod:`repro.sweep.families` — the campaign
subsystem's design-family registry is their single home — and this
module re-exports them so existing benchmark scripts keep importing
from ``_pipelines``.  New code should import from ``repro.sweep``
directly (or declare campaigns instead of hand-rolling loops; see
``docs/sweep.md``).
"""

from __future__ import annotations

from repro.sweep.families import (  # noqa: F401
    make_mt_bursty,
    make_mt_chain,
    make_mt_pipeline,
    make_mt_ring,
)

__all__ = [
    "make_mt_bursty",
    "make_mt_chain",
    "make_mt_pipeline",
    "make_mt_ring",
]
