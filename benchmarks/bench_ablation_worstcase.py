"""E8 (ablation) — when does the reduced MEB's 50% corner actually bite?

Paper §III-A: "The occurrence frequency of this effect depends on how
often all but one of the threads are stalled ... and on the number of
cycles it takes the stall to propagate to the source of the pipeline."

Two sweeps quantify that sentence:

1. **Stall-duration sweep** — thread A's average throughput penalty vs
   the length of thread B's stall, for full and reduced MEBs.  Short
   stalls are absorbed by the shared slots (no penalty); the penalty
   grows once the stall outlives the propagation time.
2. **Pipeline-depth sweep** — cycles until every stage's shared slot is
   owned by the blocked thread, vs pipeline depth: the degradation onset
   moves out linearly with depth.
"""

from __future__ import annotations

import io

from repro.core import FullMEB, ReducedMEB
from repro.elastic import stall_window

from _pipelines import make_mt_pipeline

STALL_START = 10
N_ITEMS = 200


def a_throughput_with_stall(meb_cls, stall_len, n_stages=2):
    items = [[f"A{i}" for i in range(N_ITEMS)],
             [f"B{i}" for i in range(N_ITEMS)]]
    sim, _src, _sink, _mebs, mons = make_mt_pipeline(
        meb_cls, threads=2, items=items, n_stages=n_stages,
        sink_patterns=[None, stall_window(STALL_START, STALL_START + stall_len)],
    )
    sim.run(cycles=STALL_START + stall_len)
    if stall_len == 0:
        return 0.5
    return mons[-1].throughput_window(STALL_START, STALL_START + stall_len,
                                      thread=0)


def degradation_onset(n_stages):
    """Cycle at which all shared slots belong to the blocked thread."""
    items = [[f"A{i}" for i in range(N_ITEMS)],
             [f"B{i}" for i in range(N_ITEMS)]]
    sim, _src, _sink, mebs, _mons = make_mt_pipeline(
        ReducedMEB, threads=2, items=items, n_stages=n_stages,
        sink_patterns=[None, stall_window(STALL_START, 10_000)],
    )
    for cycle in range(1, 400):
        sim.step()
        if all(m.shared_owner == 1 for m in mebs):
            return cycle
    raise AssertionError("degradation never reached the source")


def test_stall_duration_sweep(benchmark, report):
    durations = (0, 2, 4, 8, 16, 32, 64)

    def sweep():
        return {
            name: {d: a_throughput_with_stall(cls, d) for d in durations}
            for name, cls in (("full", FullMEB), ("reduced", ReducedMEB))
        }

    data = benchmark(sweep)
    buf = io.StringIO()
    buf.write("Thread A throughput during B's stall vs stall duration "
              "(2-stage pipeline)\n")
    buf.write(f"{'stall':>6} | {'full':>6} | {'reduced':>8}\n")
    for d in durations:
        buf.write(f"{d:>6} | {data['full'][d]:>6.2f} | "
                  f"{data['reduced'][d]:>8.2f}\n")
    report("ablation_stall_duration", buf.getvalue())

    # Full MEB: A converges to 1.0 for long stalls (the average over the
    # whole stall includes the short fill transient, hence > 0.9).
    assert data["full"][64] > 0.9
    # Reduced: short stalls absorbed (still ~fair 0.5+), long stalls
    # converge to the 50% corner — which equals the fair share here, so
    # the real signature is the gap vs full MEB:
    assert data["reduced"][64] < 0.6
    # The penalty (full - reduced) grows monotonically with duration.
    gaps = [data["full"][d] - data["reduced"][d] for d in durations]
    assert gaps[-1] > gaps[1]


def test_degradation_onset_vs_depth(benchmark, report):
    depths = (1, 2, 4, 6, 8)
    onsets = benchmark(lambda: {n: degradation_onset(n) for n in depths})
    buf = io.StringIO()
    buf.write("Cycles until B owns every shared slot (stall starts at "
              f"cycle {STALL_START})\n")
    buf.write(f"{'stages':>7} | {'onset cycle':>12}\n")
    for n in depths:
        buf.write(f"{n:>7} | {onsets[n]:>12}\n")
    report("ablation_degradation_onset", buf.getvalue())
    values = [onsets[n] for n in depths]
    assert values == sorted(values)
    assert onsets[8] > onsets[1]
