"""E7 — throughput preservation ("without sacrificing ... performance in
terms of throughput", §V-C).

Three measurements:

1. Per-thread throughput vs number of active threads (the 1/M law of
   §III-A) for both MEB kinds — they must coincide.
2. End-to-end MD5 hashing: cycles per digest with full vs reduced MEBs.
3. Processor: cycles to complete the standard mixed workload with full
   vs reduced MEBs.
"""

from __future__ import annotations

import io

from repro.apps.md5 import MD5Hasher
from repro.apps.processor import Processor, programs
from repro.core import FullMEB, ReducedMEB
from repro.sweep import get_family, make_scenario

MEBS = {"full": FullMEB, "reduced": ReducedMEB}


def throughput_vs_active_threads():
    """Per-thread steady-state throughput with M of 4 threads active.

    Re-based onto the sweep registry: each (MEB kind, M) point is the
    ``mt_pipeline`` family's ``active`` scenario — the same measurement
    a declared campaign makes (see ``examples/campaigns/``), so the
    benchmark and the campaign layer can never drift apart.
    """
    results: dict[str, dict[int, float]] = {}
    family = get_family("mt_pipeline")
    for name in MEBS:
        results[name] = {}
        handle = family.build({"threads": 4, "n_stages": 3, "meb": name},
                              None)
        pristine = handle.sim.snapshot()
        for m in (1, 2, 3, 4):
            handle.sim.restore(pristine)
            scenario = make_scenario(
                "mt_pipeline",
                params={"threads": 4, "n_stages": 3, "meb": name},
                stimulus={"kind": "active", "active": m,
                          "items_per_thread": 40, "max_cycles": 2000},
                metrics={"warmup": 6, "drain": 4},
            )
            metrics = family.run(handle, scenario)
            per_thread = metrics["per_thread_throughput"][:m]
            results[name][m] = sum(per_thread) / m
    return results


def md5_cycles_per_digest():
    out = {}
    for name in MEBS:
        hasher = MD5Hasher(threads=8, meb=name)
        msgs = [f"message-{i}".encode() for i in range(8)]
        hasher.hash_batch(msgs)
        out[name] = hasher.circuit.sim.cycle / 8
    return out


def processor_workload_cycles():
    out = {}
    for name in MEBS:
        cpu = Processor(threads=8, meb=name)
        for t, prog in enumerate(programs.standard_mix()):
            cpu.load_program(t, prog.source)
        stats = cpu.run()
        out[name] = stats
    return out


def test_throughput_1_over_m_both_kinds(benchmark, report):
    results = benchmark(throughput_vs_active_threads)
    buf = io.StringIO()
    buf.write("Per-thread throughput vs active threads M (4-thread, "
              "3-stage pipeline)\n")
    buf.write(f"{'M':>3} | {'ideal 1/M':>10} | {'full MEB':>9} | "
              f"{'reduced':>9}\n")
    for m in (1, 2, 3, 4):
        buf.write(
            f"{m:>3} | {1 / m:>10.3f} | {results['full'][m]:>9.3f} | "
            f"{results['reduced'][m]:>9.3f}\n"
        )
    report("throughput_vs_threads", buf.getvalue())
    for m in (1, 2, 3, 4):
        assert abs(results["full"][m] - 1 / m) < 0.1
        assert abs(results["reduced"][m] - 1 / m) < 0.1
        assert abs(results["full"][m] - results["reduced"][m]) < 0.05


def test_md5_throughput_preserved(benchmark, report):
    cycles = benchmark(md5_cycles_per_digest)
    ratio = cycles["reduced"] / cycles["full"]
    report(
        "throughput_md5",
        "MD5, 8 threads, 8 single-block messages:\n"
        f"  cycles/digest full    = {cycles['full']:.1f}\n"
        f"  cycles/digest reduced = {cycles['reduced']:.1f}\n"
        f"  ratio = {ratio:.3f} (paper: no throughput loss)\n",
    )
    assert ratio < 1.05


def test_processor_throughput_preserved(benchmark, report):
    stats = benchmark(processor_workload_cycles)
    ratio = stats["reduced"].cycles / stats["full"].cycles
    report(
        "throughput_processor",
        "Processor, 8 threads, standard mixed workload:\n"
        f"  full:    {stats['full'].cycles} cycles, "
        f"{stats['full'].total_retired} instrs, IPC "
        f"{stats['full'].ipc:.3f}\n"
        f"  reduced: {stats['reduced'].cycles} cycles, "
        f"{stats['reduced'].total_retired} instrs, IPC "
        f"{stats['reduced'].ipc:.3f}\n"
        f"  cycle ratio reduced/full = {ratio:.3f} "
        "(paper: no performance loss)\n",
    )
    assert stats["full"].total_retired == stats["reduced"].total_retired
    assert ratio < 1.05
