"""E7 — throughput preservation ("without sacrificing ... performance in
terms of throughput", §V-C).

Three measurements:

1. Per-thread throughput vs number of active threads (the 1/M law of
   §III-A) for both MEB kinds — they must coincide.
2. End-to-end MD5 hashing: cycles per digest with full vs reduced MEBs.
3. Processor: cycles to complete the standard mixed workload with full
   vs reduced MEBs.
"""

from __future__ import annotations

import io

from repro.analysis import steady_state_window
from repro.apps.md5 import MD5Hasher
from repro.apps.processor import Processor, programs
from repro.core import FullMEB, ReducedMEB

from _pipelines import make_mt_pipeline

MEBS = {"full": FullMEB, "reduced": ReducedMEB}


def throughput_vs_active_threads():
    """Per-thread steady-state throughput with M of 4 threads active."""
    results: dict[str, dict[int, float]] = {}
    n_items = 40
    for name, meb_cls in MEBS.items():
        results[name] = {}
        for m in (1, 2, 3, 4):
            items = [
                list(range(n_items)) if t < m else [] for t in range(4)
            ]
            sim, _src, sink, _mebs, mons = make_mt_pipeline(
                meb_cls, threads=4, items=items, n_stages=3
            )
            sim.run(until=lambda s: sink.count == n_items * m,
                    max_cycles=2000)
            window = steady_state_window(mons[-1], warmup=6, drain=4)
            per_thread = [
                mons[-1].throughput_window(*window, thread=t)
                for t in range(m)
            ]
            results[name][m] = sum(per_thread) / m
    return results


def md5_cycles_per_digest():
    out = {}
    for name in MEBS:
        hasher = MD5Hasher(threads=8, meb=name)
        msgs = [f"message-{i}".encode() for i in range(8)]
        hasher.hash_batch(msgs)
        out[name] = hasher.circuit.sim.cycle / 8
    return out


def processor_workload_cycles():
    out = {}
    for name in MEBS:
        cpu = Processor(threads=8, meb=name)
        for t, prog in enumerate(programs.standard_mix()):
            cpu.load_program(t, prog.source)
        stats = cpu.run()
        out[name] = stats
    return out


def test_throughput_1_over_m_both_kinds(benchmark, report):
    results = benchmark(throughput_vs_active_threads)
    buf = io.StringIO()
    buf.write("Per-thread throughput vs active threads M (4-thread, "
              "3-stage pipeline)\n")
    buf.write(f"{'M':>3} | {'ideal 1/M':>10} | {'full MEB':>9} | "
              f"{'reduced':>9}\n")
    for m in (1, 2, 3, 4):
        buf.write(
            f"{m:>3} | {1 / m:>10.3f} | {results['full'][m]:>9.3f} | "
            f"{results['reduced'][m]:>9.3f}\n"
        )
    report("throughput_vs_threads", buf.getvalue())
    for m in (1, 2, 3, 4):
        assert abs(results["full"][m] - 1 / m) < 0.1
        assert abs(results["reduced"][m] - 1 / m) < 0.1
        assert abs(results["full"][m] - results["reduced"][m]) < 0.05


def test_md5_throughput_preserved(benchmark, report):
    cycles = benchmark(md5_cycles_per_digest)
    ratio = cycles["reduced"] / cycles["full"]
    report(
        "throughput_md5",
        "MD5, 8 threads, 8 single-block messages:\n"
        f"  cycles/digest full    = {cycles['full']:.1f}\n"
        f"  cycles/digest reduced = {cycles['reduced']:.1f}\n"
        f"  ratio = {ratio:.3f} (paper: no throughput loss)\n",
    )
    assert ratio < 1.05


def test_processor_throughput_preserved(benchmark, report):
    stats = benchmark(processor_workload_cycles)
    ratio = stats["reduced"].cycles / stats["full"].cycles
    report(
        "throughput_processor",
        "Processor, 8 threads, standard mixed workload:\n"
        f"  full:    {stats['full'].cycles} cycles, "
        f"{stats['full'].total_retired} instrs, IPC "
        f"{stats['full'].ipc:.3f}\n"
        f"  reduced: {stats['reduced'].cycles} cycles, "
        f"{stats['reduced'].total_retired} instrs, IPC "
        f"{stats['reduced'].ipc:.3f}\n"
        f"  cycle ratio reduced/full = {ratio:.3f} "
        "(paper: no performance loss)\n",
    )
    assert stats["full"].total_retired == stats["reduced"].total_retired
    assert ratio < 1.05
