"""Fuzz-campaign regression gate: coverage and fault oracles vs baseline.

The coverage analogue of ``check_sweep_regression.py``: CI re-runs the
fuzz campaign (``examples/campaigns/fuzz_campaign.toml``) and calls this
script to diff the aggregated ``fuzz-results/fuzz_campaign.json`` report
against the committed repo-root ``BENCH_coverage.json`` baseline.  The
fuzzer is deterministic (the mutant sequence is a pure function of the
campaign seed, invariant across worker counts and settle engines), so
any drift here is a code change — the ratio tolerance exists to separate
deliberate re-baselining from accidental drift, exactly like the sweep
gate.

Per fuzz scenario the gate guards, higher-is-better:

* ``coverage_pct`` — joint structural-state coverage after the mutation
  loop; a drop beyond ``BENCH_TOLERANCE`` (default 0.25) means the
  fuzzer stopped reaching states it used to reach;
* ``new_states`` — the absolute count behind the percentage;
* ``mutants_kept`` — corpus growth; a collapse to zero means mutation
  stopped discovering anything even if the seed corpus still covers.

Per fault scenario ``oracle_ok`` is gated as a 0/1 metric (a detectable
fault going undetected, or a survivable one corrupting state, flips it
to 0 and fails the gate).  On top of the per-scenario rows the
campaign-level summary is gated too: summary ``coverage_pct`` and the
fault-oracle ``pass_rate`` must not drop beyond tolerance.

A scenario present in the baseline but missing (or failed) in the
current report always regresses; new scenarios are reported but not
gated (they become gated once the baseline is regenerated — see
docs/fuzzing.md for the re-baseline recipe).

Usage::

    python benchmarks/check_coverage_regression.py [baseline.json] [current.json]

Writes a markdown delta table to stdout, to
``<current dir>/coverage_regression_delta.md`` (uploaded as a CI
artifact even when the gate passes) and, when ``GITHUB_STEP_SUMMARY``
is set, appends the same table to the job summary.  Exits non-zero if
anything regressed.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_coverage.json"
DEFAULT_CURRENT = REPO_ROOT / "fuzz-results" / "fuzz_campaign.json"

#: metric key -> (display label, True when higher is better).
METRICS = (
    ("coverage_pct", "cov %", True),
    ("new_states", "states", True),
    ("mutants_kept", "kept", True),
    ("oracle_ok", "oracle", True),
)

#: summary key (possibly nested) -> display label; all higher-better.
SUMMARY_METRICS = (
    (("coverage_pct",), "summary cov %"),
    (("fault_oracles", "pass_rate"), "fault-oracle pass rate"),
)


def tolerance() -> float:
    raw = os.environ.get("BENCH_TOLERANCE", "0.25")
    try:
        value = float(raw)
    except ValueError:
        raise SystemExit(f"invalid BENCH_TOLERANCE {raw!r} (want a float)")
    if not 0 <= value < 1:
        raise SystemExit(f"BENCH_TOLERANCE {value} out of range [0, 1)")
    return value


def _metric_rows(report: dict) -> dict[str, dict]:
    """``scenario key -> metrics`` for the report's ok scenarios."""
    return {
        row["key"]: row.get("metrics", {})
        for row in report.get("scenarios", ())
        if row.get("status") == "ok"
    }


def _summary_value(report: dict, path: tuple[str, ...]):
    node = report.get("summary", {})
    for part in path:
        if not isinstance(node, dict):
            return None
        node = node.get(part)
    return node


def compare(baseline: dict, current: dict, tol: float):
    """Return (markdown lines, regression messages)."""
    base_name = baseline.get("campaign", {}).get("name", "?")
    cur_name = current.get("campaign", {}).get("name", "?")
    lines = [
        "### Coverage regression gate",
        "",
        f"baseline campaign `{base_name}` vs current `{cur_name}`; "
        f"tolerance {tol:.0%}",
        "",
        "| scenario | metric | baseline | current | delta | status |",
        "|---|---|---|---|---|---|",
    ]
    regressions: list[str] = []

    for path, label in SUMMARY_METRICS:
        base_val = _summary_value(baseline, path)
        cur_val = _summary_value(current, path)
        if not isinstance(base_val, (int, float)):
            continue
        if not isinstance(cur_val, (int, float)):
            regressions.append(
                f"summary: {label!r} missing from the current report"
            )
            lines.append(
                f"| _summary_ | {label} | {base_val:g} | — | — | "
                f"❌ missing metric |"
            )
            continue
        if base_val == 0:
            continue
        delta = (cur_val - base_val) / base_val
        ok = cur_val >= base_val * (1 - tol)
        status = "✅ ok" if ok else "❌ regressed"
        lines.append(
            f"| _summary_ | {label} | {base_val:g} | {cur_val:g} | "
            f"{delta:+.1%} | {status} |"
        )
        if not ok:
            regressions.append(
                f"summary: {label} dropped {base_val:g} -> {cur_val:g} "
                f"({delta:+.1%}, tolerance {tol:.0%})"
            )

    base_rows = _metric_rows(baseline)
    cur_rows = _metric_rows(current)
    for key, base_metrics in base_rows.items():
        cur_metrics = cur_rows.get(key)
        if cur_metrics is None:
            regressions.append(f"{key}: missing or failed in current report")
            lines.append(f"| `{key}` | — | — | — | — | ❌ missing |")
            continue
        for metric, label, higher_better in METRICS:
            base_val = base_metrics.get(metric)
            cur_val = cur_metrics.get(metric)
            if not isinstance(base_val, (int, float)):
                continue
            if not isinstance(cur_val, (int, float)):
                regressions.append(
                    f"{key}: gated metric {label!r} missing from the "
                    f"current report"
                )
                lines.append(
                    f"| `{key}` | {label} | {base_val:g} | — | — | "
                    f"❌ missing metric |"
                )
                continue
            if base_val == 0:
                continue  # a ratio over zero is meaningless; skip
            delta = (cur_val - base_val) / base_val
            if higher_better:
                ok = cur_val >= base_val * (1 - tol)
            else:
                ok = cur_val <= base_val * (1 + tol)
            status = "✅ ok" if ok else "❌ regressed"
            lines.append(
                f"| `{key}` | {label} | {base_val:g} | {cur_val:g} | "
                f"{delta:+.1%} | {status} |"
            )
            if not ok:
                direction = "dropped" if higher_better else "rose"
                regressions.append(
                    f"{key}: {label} {direction} {base_val:g} -> "
                    f"{cur_val:g} ({delta:+.1%}, tolerance {tol:.0%})"
                )
    for key in cur_rows:
        if key not in base_rows:
            lines.append(f"| `{key}` | — | new | — | — | ℹ not gated |")
    return lines, regressions


def main(argv: list[str]) -> int:
    baseline_path = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_BASELINE
    current_path = pathlib.Path(argv[2]) if len(argv) > 2 else DEFAULT_CURRENT
    for path, what in ((baseline_path, "baseline"), (current_path, "current")):
        if not path.is_file():
            print(f"error: {what} campaign report not found at {path}")
            return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = json.loads(current_path.read_text(encoding="utf-8"))
    lines, regressions = compare(baseline, current, tolerance())
    if regressions:
        lines += ["", "**Regressions:**", ""]
        lines += [f"- {msg}" for msg in regressions]
    report = "\n".join(lines) + "\n"
    print(report)
    delta_path = current_path.parent / "coverage_regression_delta.md"
    try:
        delta_path.write_text(report, encoding="utf-8")
    except OSError as exc:  # the table is advisory; never fail on it
        print(f"warning: could not write {delta_path}: {exc}")
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(report)
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
