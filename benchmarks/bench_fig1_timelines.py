"""E1 — Fig. 1: single and multithreaded elasticity versus inelastic
operation.

The scenario of the paper's figure: a computation unit F is fed by a
producer whose tokens become available after *variable* delays.

(a) **inelastic** — the rigid schedule must budget the worst-case delay
    for every token, so F does useful work once per L_max cycles;
(b) **elastic, one thread** — F fires as soon as a token is valid; the
    channel shows bubbles whenever the actual delay was shorter than
    worst case but a token is still in flight;
(c) **multithreaded elastic** — a second independent thread's tokens fill
    those bubble cycles, driving the shared unit's utilization toward 1.

The assertions encode the figure's message:
utilization(a) < utilization(b) < utilization(c), with identical
per-thread data in all modes.
"""

from __future__ import annotations

import itertools

from repro.analysis import render_timeline
from repro.core import (
    FullMEB,
    MTChannel,
    MTFunction,
    MTMonitor,
    MTSink,
    MTSource,
)
from repro.elastic import (
    ChannelMonitor,
    ElasticBuffer,
    ElasticChannel,
    FunctionUnit,
    Sink,
    Source,
)
from repro.kernel import build

#: Inter-arrival delay of each token at the producer (cycles).
DELAYS = [1, 3, 1, 2, 1, 1, 3, 1]
L_MAX = max(DELAYS)
N_TOKENS = len(DELAYS)
#: Arrival time of token k: cumulative delay.
ARRIVALS = list(itertools.accumulate(DELAYS))
HORIZON = 30


def inelastic_timeline():
    """Rigid worst-case schedule: F consumes one token per L_MAX."""
    cells: list[str | None] = [None] * HORIZON
    for k in range(N_TOKENS):
        cycle = (k + 1) * L_MAX
        if cycle < HORIZON:
            cells[cycle] = f"A{k}"
    done = N_TOKENS * L_MAX
    return cells, done


class _ArrivalDriver:
    """Observer pushing token k into its source at cycle ARRIVALS[k]."""

    def __init__(self, plan):
        # plan: list of (source, thread_or_None, arrival_cycle, item)
        self._plan = sorted(plan, key=lambda entry: entry[2])
        self._idx = 0

    def __call__(self, sim) -> None:
        while (self._idx < len(self._plan)
               and self._plan[self._idx][2] <= sim.cycle):
            source, thread, _cycle, item = self._plan[self._idx]
            if thread is None:
                source.push(item)
            else:
                source.push(thread, item)
            self._idx += 1


def elastic_run():
    c0 = ElasticChannel("c0", width=8)
    c1 = ElasticChannel("c1", width=8)
    c2 = ElasticChannel("c2", width=8)
    src = Source("src", c0, items=[])
    eb = ElasticBuffer("eb", c0, c1)
    fu = FunctionUnit("F", c1, c2, fn=lambda d: d)
    mon = ChannelMonitor("mon", c2)
    sink = Sink("snk", c2)
    sim = build(c0, c1, c2, src, eb, fu, mon, sink)
    sim.add_observer(_ArrivalDriver(
        [(src, None, ARRIVALS[k], k) for k in range(N_TOKENS)]
    ))
    sim.run(until=lambda s: sink.count == N_TOKENS, max_cycles=200)
    done = sim.cycle
    cells: list[str | None] = [None] * HORIZON
    for cycle, data in mon.transfers:
        if cycle < HORIZON:
            cells[cycle] = f"A{data}"
    return cells, done, mon


def mt_elastic_run():
    c0 = MTChannel("c0", threads=2, width=8)
    c1 = MTChannel("c1", threads=2, width=8)
    c2 = MTChannel("c2", threads=2, width=8)
    src = MTSource("src", c0, items=[[], []])
    meb = FullMEB("meb", c0, c1)
    fu = MTFunction("F", c1, c2, fn=lambda d: d)
    mon = MTMonitor("mon", c2)
    sink = MTSink("snk", c2)
    sim = build(c0, c1, c2, src, meb, fu, mon, sink)
    # Thread B runs the same variable-delay schedule, phase-shifted by
    # one cycle — its tokens land in A's bubbles.
    plan = [(src, 0, ARRIVALS[k], k) for k in range(N_TOKENS)]
    plan += [(src, 1, max(0, ARRIVALS[k] - 1), k) for k in range(N_TOKENS)]
    sim.add_observer(_ArrivalDriver(plan))
    sim.run(until=lambda s: sink.count == 2 * N_TOKENS, max_cycles=300)
    done = sim.cycle
    cells: list[str | None] = [None] * HORIZON
    for cycle, thread, data in mon.transfers:
        if cycle < HORIZON:
            cells[cycle] = f"{'AB'[thread]}{data}"
    return cells, done, mon


def test_fig1_timelines(benchmark, report):
    inelastic_cells, inelastic_done = inelastic_timeline()
    elastic_cells, elastic_done, e_mon = benchmark(elastic_run)
    mt_cells, mt_done, mt_mon = mt_elastic_run()

    text = "Fig. 1 — inelastic vs elastic vs multithreaded elastic\n"
    text += f"(token inter-arrival delays: {DELAYS}, worst case {L_MAX})\n\n"
    text += "(a) inelastic (worst-case schedule):\n"
    text += render_timeline("F", inelastic_cells, cell_width=4) + "\n"
    text += "(b) elastic, single thread (bubbles where delay < max):\n"
    text += render_timeline("F", elastic_cells, cell_width=4) + "\n"
    text += "(c) multithreaded elastic (thread B fills the bubbles):\n"
    text += render_timeline("F", mt_cells, cell_width=4) + "\n"

    util_inelastic = N_TOKENS / inelastic_done
    util_elastic = N_TOKENS / elastic_done
    util_mt = 2 * N_TOKENS / mt_done
    text += (
        f"\nutilization of F: inelastic {util_inelastic:.2f}, "
        f"elastic {util_elastic:.2f}, MT elastic {util_mt:.2f}\n"
    )
    report("fig1_timelines", text)

    assert util_elastic > util_inelastic
    assert util_mt > util_elastic
    assert util_mt > 0.8
    # Behavioural equivalence: same data per stream in every mode.
    assert [d for _c, d in e_mon.transfers] == list(range(N_TOKENS))
    assert mt_mon.values_for(0) == list(range(N_TOKENS))
    assert mt_mon.values_for(1) == list(range(N_TOKENS))
