"""Simulator performance benchmarks (pytest-benchmark + engine comparison).

Not a paper experiment — these track the cost of the substrate itself so
regressions in the settle engines or the MEB implementations show up in
CI.  Two modes:

* The ``test_perf_*`` functions are classic pytest-benchmark timings of
  the default (compiled) engine.
* ``test_engine_comparison`` is the **comparison mode**: it runs each
  workload under all three settle engines (``naive`` oracle, ``event``,
  ``compiled``), asserts the scheduled engines' cycles/sec advantages
  against conservative floors, and writes the measurements to
  ``benchmarks/results/BENCH_kernel.json`` so CI can upload them as an
  artifact and gate regressions against the committed repo-root
  ``BENCH_kernel.json`` baseline (see ``benchmarks/check_regression.py``).

Set ``BENCH_SMOKE=1`` to shrink every workload (CI's benchmark smoke
job); the JSON is still produced, only with smaller configurations and
looser floors.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.apps.md5 import MD5Hasher
from repro.apps.processor import Processor, programs
from repro.core import FullMEB, ReducedMEB

# Re-based onto the sweep subsystem: the workload factories' single
# home is the campaign design-family module (benchmarks/_pipelines.py
# is a thin re-export shim kept for the other bench scripts).
from repro.sweep.families import (
    make_mt_bursty,
    make_mt_chain,
    make_mt_pipeline,
    make_mt_ring,
)

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
# Anchored through resolve() so results land next to this file no matter
# what the CWD (or a relative __file__) is when the module runs.
RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent / "results" / "BENCH_kernel.json"
)


def pump_pipeline(meb_cls, threads=8, n_stages=4, n_items=50, engine=None):
    items = [list(range(n_items)) for _ in range(threads)]
    sim, _src, sink, _mebs, _mons = make_mt_pipeline(
        meb_cls, threads=threads, items=items, n_stages=n_stages,
        engine=engine,
    )
    sim.run(until=lambda s: sink.count == threads * n_items,
            max_cycles=20_000)
    return sim.cycle


def test_perf_full_meb_pipeline(benchmark):
    cycles = benchmark(pump_pipeline, FullMEB)
    assert cycles > 0


def test_perf_reduced_meb_pipeline(benchmark):
    cycles = benchmark(pump_pipeline, ReducedMEB)
    assert cycles > 0


def test_perf_md5_wave(benchmark):
    def run():
        hasher = MD5Hasher(threads=8, meb="reduced")
        return hasher.hash_batch([b"throughput"] * 8)

    digests = benchmark(run)
    assert len(digests) == 8


def test_perf_processor_workload(benchmark):
    def run():
        cpu = Processor(threads=8, meb="reduced")
        for t, prog in enumerate(programs.standard_mix()):
            cpu.load_program(t, prog.source)
        return cpu.run()

    stats = benchmark(run)
    assert stats.total_retired > 0


# ----------------------------------------------------------------------
# engine comparison mode
# ----------------------------------------------------------------------

def _run_pipeline(engine):
    """Returns (cycles, run-only seconds, behaviour fingerprint)."""
    threads, n_items = (4, 10) if SMOKE else (8, 50)
    items = [list(range(n_items)) for _ in range(threads)]
    sim, _src, sink, _mebs, _mons = make_mt_pipeline(
        FullMEB, threads=threads, items=items, n_stages=4, engine=engine,
    )
    start = time.perf_counter()
    sim.run(until=lambda s: sink.count == threads * n_items,
            max_cycles=20_000)
    elapsed = time.perf_counter() - start
    return sim.cycle, elapsed, (sim.cycle, sink.received)


def _run_md5(engine):
    threads = 4 if SMOKE else 8
    h = MD5Hasher(threads=threads, engine=engine)
    start = time.perf_counter()
    digests = h.hash_batch([b"throughput"] * threads)
    elapsed = time.perf_counter() - start
    return h.circuit.sim.cycle, elapsed, (h.circuit.sim.cycle, digests)


def _run_md5_pipelined(engine):
    threads, stages = (4, 4) if SMOKE else (32, 16)
    h = MD5Hasher(threads=threads, round_stages=stages, engine=engine)
    start = time.perf_counter()
    digests = h.hash_batch([b"throughput"] * threads)
    elapsed = time.perf_counter() - start
    return h.circuit.sim.cycle, elapsed, (h.circuit.sim.cycle, digests)


def _run_processor(engine):
    threads = 4 if SMOKE else 8
    cpu = Processor(threads=threads, meb="reduced", engine=engine)
    mix = programs.standard_mix()
    for t in range(threads):
        cpu.load_program(t, mix[t % len(mix)].source)
    start = time.perf_counter()
    stats = cpu.run()
    elapsed = time.perf_counter() - start
    return stats.cycles, elapsed, (stats.cycles, stats.total_retired)


def _run_mt_chain(engine):
    threads, n_funcs, n_items = (4, 3, 8) if SMOKE else (32, 8, 25)
    sim, _src, sink = make_mt_chain(
        threads=threads, n_funcs=n_funcs, n_items=n_items, engine=engine,
    )
    start = time.perf_counter()
    sim.run(until=lambda s: sink.count == threads * n_items,
            max_cycles=100_000)
    elapsed = time.perf_counter() - start
    return sim.cycle, elapsed, (sim.cycle, sink.received)


def _run_mt_bursty(engine):
    """Bursty traffic with long idle gaps: the fusion showcase.

    Each round pushes a burst of items into every thread and then runs a
    fixed window far longer than the drain time, so most cycles are
    fully quiescent.  The compiled engine batches those via settle+tick
    fusion; the other engines pay per cycle.
    """
    if SMOKE:
        # Long enough that the idle tail dominates even on noisy shared
        # runners (the single-rep smoke measurement needs headroom).
        threads, stages, burst, bursts, gap = 2, 2, 4, 2, 500
    else:
        threads, stages, burst, bursts, gap = 8, 3, 15, 5, 2000
    sim, src, sink, _mebs, _mons = make_mt_bursty(
        FullMEB, threads=threads, n_stages=stages, engine=engine,
    )
    start = time.perf_counter()
    for b in range(bursts):
        for t in range(threads):
            for i in range(burst):
                src.push(t, (b << 16) | (t << 8) | i)
        sim.run(cycles=gap)
    elapsed = time.perf_counter() - start
    return sim.cycle, elapsed, (sim.cycle, sink.received)


def _run_mt_ring(engine):
    threads, n_funcs, trips = (4, 2, 5) if SMOKE else (48, 6, 10)
    sim, _src, sink = make_mt_ring(
        threads=threads, n_funcs=n_funcs, trips=trips, engine=engine,
    )
    start = time.perf_counter()
    sim.run(until=lambda s: sink.count == threads, max_cycles=200_000)
    elapsed = time.perf_counter() - start
    return sim.cycle, elapsed, (sim.cycle, sink.received)


#: workload name -> (runner, event-vs-naive floor, compiled-vs-event
#: floor), both full-mode.  The floors are deliberately far below the
#: measured ratios (see docs/engines.md) so the comparison stays green
#: on noisy CI machines while still catching a broken scheduler; the
#: JSON records the actual numbers.
WORKLOADS = {
    "mt_pipeline": (_run_pipeline, 1.2, 1.2),
    "mt_chain": (_run_mt_chain, 1.2, 1.5),
    "mt_ring": (_run_mt_ring, 1.2, 1.5),
    "mt_bursty": (_run_mt_bursty, 1.5, 2.0),
    "md5": (_run_md5, 1.5, 1.0),
    "md5_pipelined": (_run_md5_pipelined, 3.0, 1.3),
    "processor": (_run_processor, 1.5, 1.5),
}

#: Smoke mode runs tiny configurations on shared CI runners where
#: constant overheads dominate; only sanity-check the direction.
SMOKE_EVENT_FLOOR = 1.0
SMOKE_COMPILED_FLOOR = 0.6


# ----------------------------------------------------------------------
# ensemble lockstep comparison
# ----------------------------------------------------------------------
# K control-identical scenarios (same design, same schedule, different
# seeded payloads) through ONE lifted simulator vs K serial compiled
# runs of a warm cached design.  `ensemble_speedup` is aggregate
# scenarios/sec — serial wall time over batched wall time for the same
# K scenarios — with per-scenario metrics asserted identical first.

def _ensemble_workloads():
    """family -> (params, stimulus, K).  Pure-Python row layout."""
    if SMOKE:
        width = 8
        return {
            "mt_chain": (
                {"threads": 4, "n_funcs": 3},
                {"kind": "uniform", "payload": "seeded",
                 "items_per_thread": 8},
                width,
            ),
            "mt_pipeline": (
                {"threads": 4, "n_stages": 3},
                {"kind": "uniform", "payload": "seeded",
                 "items_per_thread": 10},
                width,
            ),
        }
    width = 16
    return {
        "mt_chain": (
            {"threads": 16, "n_funcs": 6},
            {"kind": "uniform", "payload": "seeded",
             "items_per_thread": 20},
            width,
        ),
        "mt_pipeline": (
            {"threads": 8, "n_stages": 4},
            {"kind": "uniform", "payload": "seeded",
             "items_per_thread": 40},
            width,
        ),
    }


#: Full-mode floors for ensemble_speedup (the acceptance bar: >= 3x
#: aggregate scenarios/sec at K >= 8 on the mt_* families).
ENSEMBLE_FLOORS = {"mt_chain": 3.0, "mt_pipeline": 3.0}
SMOKE_ENSEMBLE_FLOOR = 1.0


def _measure_ensemble_family(family, params, stimulus, width, reps):
    from repro.sweep.runner import execute_ensemble, execute_scenario
    from repro.sweep.spec import from_dict

    spec = from_dict({
        "campaign": {"name": f"bench-{family}", "seed": 99},
        "scenarios": [{
            "family": family,
            "params": params,
            "stimulus": stimulus,
            "grid": {"stimulus.payload_salt": list(range(width))},
        }],
    })
    scenarios = list(spec.scenarios)
    serial_cache: dict = {}
    ens_cache: dict = {}
    # Warm both caches and pin the hard contract: per-scenario metrics
    # of the batch are identical to serial compiled runs.
    reference = [
        execute_scenario(s, None, cache=serial_cache) for s in scenarios
    ]
    batch = execute_ensemble(scenarios, None, cache=ens_cache)
    for ref, row in zip(reference, batch):
        assert row.get("ensemble") == width, (
            f"{family}: batch fell back to serial execution"
        )
        assert row["metrics"] == ref["metrics"], (
            f"{family}: ensemble metrics diverge from serial"
        )
    best_serial = best_ensemble = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for scenario in scenarios:
            execute_scenario(scenario, None, cache=serial_cache)
        best_serial = min(best_serial, time.perf_counter() - start)
        start = time.perf_counter()
        execute_ensemble(scenarios, None, cache=ens_cache)
        best_ensemble = min(best_ensemble, time.perf_counter() - start)
    return round(best_serial / best_ensemble, 2)


def _measure(runner, engine, reps):
    best_cps = 0.0
    cycles = fingerprint = None
    for _ in range(reps):
        cycles, elapsed, fingerprint = runner(engine)
        best_cps = max(best_cps, cycles / elapsed)
    return best_cps, cycles, fingerprint


# ----------------------------------------------------------------------
# profiler disabled-overhead
# ----------------------------------------------------------------------
# The kernel profiler's contract is zero cost when off: a simulator
# that attached and then detached a profiler must run the exact
# unprofiled fast path.  `profile_overhead` is (cps after a profiler
# attach/detach round trip) / (plain cps) on the mt_pipeline workload —
# nominally 1.0 — recorded in BENCH_kernel.json and gated like the
# engine speedups (see benchmarks/check_regression.py).

def _run_pipeline_after_profile():
    """_run_pipeline(compiled), but attach+detach a profiler first."""
    threads, n_items = (4, 10) if SMOKE else (8, 50)
    items = [list(range(n_items)) for _ in range(threads)]
    sim, _src, sink, _mebs, _mons = make_mt_pipeline(
        FullMEB, threads=threads, items=items, n_stages=4,
        engine="compiled",
    )
    session = sim.profile()
    session.__enter__()
    session.__exit__(None, None, None)
    start = time.perf_counter()
    sim.run(until=lambda s: sink.count == threads * n_items,
            max_cycles=20_000)
    elapsed = time.perf_counter() - start
    return sim.cycle, elapsed, (sim.cycle, sink.received)


def measure_profile_overhead(reps):
    """Returns (overhead ratio, plain cps, after-detach cps)."""
    plain_cps, _cycles, plain_fp = _measure(
        _run_pipeline, "compiled", reps
    )
    after_cps, _cycles, after_fp = _measure(
        lambda _engine: _run_pipeline_after_profile(), "compiled", reps
    )
    assert plain_fp == after_fp, (
        "profiler attach/detach changed behaviour"
    )
    return after_cps / plain_cps, plain_cps, after_cps


def run_comparison():
    """Time every workload under all three engines; return the results."""
    reps = 1 if SMOKE else 3
    results = {
        "mode": "smoke" if SMOKE else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
    }
    for name, (runner, _efloor, _cfloor) in WORKLOADS.items():
        naive_cps, _cycles, naive_fp = _measure(runner, "naive", reps)
        event_cps, _cycles, event_fp = _measure(runner, "event", reps)
        compiled_cps, cycles, compiled_fp = _measure(
            runner, "compiled", reps
        )
        assert naive_fp == event_fp == compiled_fp, (
            f"{name}: engines disagree on behaviour"
        )
        results["workloads"][name] = {
            "cycles": cycles,
            "naive_cps": round(naive_cps, 1),
            "event_cps": round(event_cps, 1),
            "compiled_cps": round(compiled_cps, 1),
            "event_speedup": round(event_cps / naive_cps, 2),
            "compiled_speedup": round(compiled_cps / event_cps, 2),
        }
    for name, (params, stimulus, width) in _ensemble_workloads().items():
        row = results["workloads"][name]
        row["ensemble_width"] = width
        row["ensemble_speedup"] = _measure_ensemble_family(
            name, params, stimulus, width, reps
        )
    overhead, _plain, _after = measure_profile_overhead(reps)
    results["workloads"]["mt_pipeline"]["profile_overhead"] = round(
        overhead, 2
    )
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n",
                            encoding="utf-8")
    return results


def test_engine_comparison():
    results = run_comparison()
    lines = [f"engine comparison ({results['mode']} mode):"]
    for name, row in results["workloads"].items():
        lines.append(
            f"  {name:14s} naive={row['naive_cps']:>9.0f}  "
            f"event={row['event_cps']:>9.0f} "
            f"({row['event_speedup']:.2f}x)  "
            f"compiled={row['compiled_cps']:>9.0f} "
            f"({row['compiled_speedup']:.2f}x vs event)"
        )
        if "ensemble_speedup" in row:
            lines.append(
                f"  {name:14s} ensemble K={row['ensemble_width']}: "
                f"{row['ensemble_speedup']:.2f}x scenarios/sec vs serial "
                f"compiled"
            )
    print("\n".join(lines))
    for name, (_runner, event_floor, compiled_floor) in WORKLOADS.items():
        row = results["workloads"][name]
        required_event = SMOKE_EVENT_FLOOR if SMOKE else event_floor
        required_compiled = (
            SMOKE_COMPILED_FLOOR if SMOKE else compiled_floor
        )
        assert row["event_speedup"] >= required_event, (
            f"{name}: event engine speedup {row['event_speedup']:.2f}x "
            f"below {required_event}x floor"
        )
        assert row["compiled_speedup"] >= required_compiled, (
            f"{name}: compiled engine speedup "
            f"{row['compiled_speedup']:.2f}x below {required_compiled}x "
            f"floor"
        )
    for name, floor in ENSEMBLE_FLOORS.items():
        row = results["workloads"][name]
        required = SMOKE_ENSEMBLE_FLOOR if SMOKE else floor
        assert row["ensemble_speedup"] >= required, (
            f"{name}: ensemble speedup {row['ensemble_speedup']:.2f}x "
            f"(K={row['ensemble_width']}) below {required}x floor"
        )
    overhead = results["workloads"]["mt_pipeline"]["profile_overhead"]
    print(f"  profile_overhead (detached profiler, mt_pipeline): "
          f"{overhead:.2f}x")
    # Nominally 1.0; the floor only catches a profiler that leaves
    # wrappers behind after detach (single-rep smoke runs are noisy).
    required = 0.5 if SMOKE else 0.9
    assert overhead >= required, (
        f"detached profiler costs {(1 - overhead) * 100:.0f}% on "
        f"mt_pipeline (ratio {overhead:.2f} below {required})"
    )


if __name__ == "__main__":
    test_engine_comparison()
