"""Simulator performance micro-benchmarks (pytest-benchmark timings).

Not a paper experiment — these track the cost of the substrate itself so
regressions in the settle loop or the MEB implementations show up in CI.
"""

from __future__ import annotations

from repro.apps.md5 import MD5Hasher
from repro.apps.processor import Processor, programs
from repro.core import FullMEB, ReducedMEB

from _pipelines import make_mt_pipeline


def pump_pipeline(meb_cls, threads=8, n_stages=4, n_items=50):
    items = [list(range(n_items)) for _ in range(threads)]
    sim, _src, sink, _mebs, _mons = make_mt_pipeline(
        meb_cls, threads=threads, items=items, n_stages=n_stages
    )
    sim.run(until=lambda s: sink.count == threads * n_items,
            max_cycles=20_000)
    return sim.cycle


def test_perf_full_meb_pipeline(benchmark):
    cycles = benchmark(pump_pipeline, FullMEB)
    assert cycles > 0


def test_perf_reduced_meb_pipeline(benchmark):
    cycles = benchmark(pump_pipeline, ReducedMEB)
    assert cycles > 0


def test_perf_md5_wave(benchmark):
    def run():
        hasher = MD5Hasher(threads=8, meb="reduced")
        return hasher.hash_batch([b"throughput"] * 8)

    digests = benchmark(run)
    assert len(digests) == 8


def test_perf_processor_workload(benchmark):
    def run():
        cpu = Processor(threads=8, meb="reduced")
        for t, prog in enumerate(programs.standard_mix()):
            cpu.load_program(t, prog.source)
        return cpu.run()

    stats = benchmark(run)
    assert stats.total_retired > 0
