"""E9 (ablation) — why exactly S+1 slots?

Paper §III-A motivates the reduced MEB's capacity: S per-thread slots
keep the 1/M uniform throughput, and the one *shared* extra slot is what
lets a lone thread reach 100%.  This ablation compares three buffer
capacities on the lone-thread workload and on the uniform workload:

* ``2S``  (full MEB)           — 100% lone-thread, 1/M uniform
* ``S+1`` (reduced MEB)        — 100% lone-thread, 1/M uniform
* ``S``   (no shared slot)     — lone thread capped at 50%!

The S-slot variant is built here as a ReducedMEB whose shared slot is
never granted (a one-line subclass), demonstrating that the shared slot
is load-bearing, not an implementation convenience.

A second sweep regenerates the storage-cost curve: slots per MEB vs
thread count for the three designs.
"""

from __future__ import annotations

import io

from repro.core import FullMEB, ReducedMEB

from _pipelines import make_mt_pipeline


class NoSharedSlotMEB(ReducedMEB):
    """ReducedMEB with the shared auxiliary slot disabled (S slots)."""

    def can_accept(self, thread: int) -> bool:
        return self._state[thread] == "EMPTY"

    @property
    def total_slots(self) -> int:
        return self.threads


VARIANTS = {
    "full (2S)": FullMEB,
    "reduced (S+1)": ReducedMEB,
    "no-shared (S)": NoSharedSlotMEB,
}


def lone_thread_throughput(meb_cls):
    items = [list(range(40)), [], [], []]
    sim, _src, sink, _mebs, mons = make_mt_pipeline(
        meb_cls, threads=4, items=items, n_stages=2
    )
    sim.run(until=lambda s: sink.count == 40, max_cycles=400)
    return mons[-1].throughput_window(4, 40, thread=0)


def uniform_throughput(meb_cls, m=4):
    items = [list(range(40)) for _ in range(m)]
    sim, _src, sink, _mebs, mons = make_mt_pipeline(
        meb_cls, threads=m, items=items, n_stages=2
    )
    sim.run(until=lambda s: sink.count == 40 * m, max_cycles=1000)
    return [
        mons[-1].throughput_window(8, 48, thread=t) for t in range(m)
    ]


def test_shared_slot_is_load_bearing(benchmark, report):
    lone = benchmark(
        lambda: {name: lone_thread_throughput(cls)
                 for name, cls in VARIANTS.items()}
    )
    uniform = {name: uniform_throughput(cls) for name, cls in VARIANTS.items()}

    buf = io.StringIO()
    buf.write("Slot-count ablation (4 threads, 2-stage pipeline)\n\n")
    buf.write(f"{'variant':<15} | {'lone-thread tp':>14} | "
              f"{'uniform per-thread tp':>22}\n")
    for name in VARIANTS:
        uni = ", ".join(f"{tp:.2f}" for tp in uniform[name])
        buf.write(f"{name:<15} | {lone[name]:>14.2f} | {uni:>22}\n")
    report("ablation_slots", buf.getvalue())

    # Both paper designs give the lone thread full throughput...
    assert lone["full (2S)"] > 0.95
    assert lone["reduced (S+1)"] > 0.95
    # ...but dropping the shared slot caps it at 50% (§III-A's argument).
    assert abs(lone["no-shared (S)"] - 0.5) < 0.05
    # Uniform utilization is 1/M for every variant.
    for name in VARIANTS:
        for tp in uniform[name]:
            assert abs(tp - 0.25) < 0.08, (name, tp)


def test_storage_cost_curve(report):
    buf = io.StringIO()
    buf.write("Data slots per MEB vs thread count\n")
    buf.write(f"{'S':>4} | {'full 2S':>8} | {'reduced S+1':>12} | "
              f"{'saved':>6}\n")
    for s in (2, 4, 8, 16, 32, 64):
        full, reduced = 2 * s, s + 1
        buf.write(f"{s:>4} | {full:>8} | {reduced:>12} | "
                  f"{full - reduced:>6}\n")
    report("ablation_slot_counts", buf.getvalue())
