"""Load harness for the campaign service (``python -m repro.serve``).

Not a paper experiment — this measures and asserts the service-level
contract of the jobs API end to end, over a real server process:

1. **Reference run** — the campaign spec executes through the CLI path
   (``run_campaign``) in this process; its canonical report is the
   parity oracle.
2. **Cold pass** — one HTTP client submits the campaign to a freshly
   started ``python -m repro.serve`` subprocess and *follows its
   ``/events`` stream*: one scenario event per scenario is required
   before the report is read.  Every scenario simulates (cache cold),
   the report must equal the reference modulo placement/timestamps,
   and a ``/metrics`` scrape must expose the required series.
3. **Warm passes** — N concurrent clients resubmit the identical
   campaign R times each.  Every one of those jobs must complete with
   100% dedup hits (zero simulated scenarios) and a bit-identical
   canonical report; their submit→report latencies give the p50/p99
   while a sampler thread records the queue-depth / pool-occupancy
   gauge envelope from ``/metrics``.

Results land in ``benchmarks/results/BENCH_service.json`` (plus a
markdown latency table next to it) so CI can upload them as artifacts;
the committed repo-root ``BENCH_service.json`` is the reference
trajectory (see docs/service.md for the re-baseline recipe).  Set
``BENCH_SMOKE=1`` to shrink the client count and repeats.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import copy
import json
import os
import pathlib
import platform
import re
import statistics
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServiceClient  # noqa: E402
from repro.sweep.report import canonical_report  # noqa: E402
from repro.sweep.runner import run_campaign  # noqa: E402
from repro.sweep.spec import from_dict  # noqa: E402

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
DEFAULT_SPEC = REPO_ROOT / "examples" / "campaigns" / "paper_sweep.toml"

_LISTEN_RE = re.compile(r"listening on http://([\w.\-]+):(\d+)")


def load_spec_mapping(path: pathlib.Path) -> dict:
    """The raw spec mapping — what an HTTP client POSTs as JSON."""
    if path.suffix.lower() == ".toml":
        import tomllib

        with path.open("rb") as fh:
            return tomllib.load(fh)
    return json.loads(path.read_text(encoding="utf-8"))


def start_server(workers: int) -> tuple[subprocess.Popen, str]:
    """Spawn ``python -m repro.serve`` and return (process, base_url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--workers", str(workers), "--memory-store"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.monotonic() + 30
    while True:
        line = process.stdout.readline()
        match = _LISTEN_RE.search(line or "")
        if match:
            return process, f"http://{match.group(1)}:{match.group(2)}"
        if process.poll() is not None or time.monotonic() > deadline:
            raise RuntimeError(f"server failed to start: {line!r}")


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def timed_run(client: ServiceClient, spec: dict) -> tuple[float, dict]:
    start = time.perf_counter()
    report = client.run(spec, timeout=600)
    return time.perf_counter() - start, report


#: Series every scrape of ``GET /metrics`` must expose (the contract
#: the CI service-smoke job asserts; see docs/observability.md).
REQUIRED_METRICS = (
    "repro_jobs_submitted_total",
    "repro_jobs_completed_total",
    "repro_job_duration_seconds_bucket",
    "repro_scenario_duration_seconds_bucket",
    "repro_scenarios_completed_total",
    "repro_dedup_lookups_total",
    "repro_queue_depth",
    "repro_pool_inflight",
    "repro_pool_workers",
    "repro_pool_workers_alive",
    # Resilience series (PR 10): present from the first scrape even
    # when nothing has timed out / retried / been rejected yet.
    "repro_scenario_timeouts_total",
    "repro_scenario_retries_total",
    "repro_jobs_rejected_total",
    "repro_drain_seconds",
)


def parse_gauge(text: str, name: str) -> float:
    """The value of an unlabelled gauge in a Prometheus text scrape."""
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    raise AssertionError(f"metric {name} missing from scrape")


class GaugeSampler:
    """Polls ``/metrics`` in a thread, folding gauge max/mean values.

    Queue depth and pool occupancy are point-in-time gauges — a single
    scrape after the storm says nothing, so the load phase is sampled
    while it runs and ``BENCH_service.json`` records the envelope.
    """

    def __init__(self, client: ServiceClient, interval_s: float = 0.05):
        import threading

        self.client = client
        self.interval_s = interval_s
        self.samples: dict[str, list[float]] = {
            "repro_queue_depth": [],
            "repro_pool_inflight": [],
            "repro_pool_workers_alive": [],
        }
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                text = self.client.metrics()
                for name, values in self.samples.items():
                    values.append(parse_gauge(text, name))
            except Exception:  # server busy/teardown: skip the sample
                pass
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "GaugeSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5)

    def summary(self) -> dict:
        out = {}
        for name, values in self.samples.items():
            key = name.removeprefix("repro_")
            out[key] = {
                "samples": len(values),
                "max": max(values) if values else None,
                "mean": (
                    round(statistics.mean(values), 3) if values else None
                ),
            }
        return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", type=pathlib.Path, default=DEFAULT_SPEC)
    parser.add_argument("--clients", type=int, default=2 if SMOKE else 4)
    parser.add_argument("--repeats", type=int, default=2 if SMOKE else 5,
                        help="warm submissions per client")
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker processes")
    parser.add_argument("--out", type=pathlib.Path,
                        default=RESULTS_DIR / "BENCH_service.json")
    args = parser.parse_args(argv)

    spec_mapping = load_spec_mapping(args.spec)
    scenario_count = len(from_dict(spec_mapping).scenarios)
    print(f"campaign: {args.spec.name} ({scenario_count} scenarios), "
          f"{args.clients} client(s) x {args.repeats} warm repeat(s), "
          f"{args.workers} worker(s)")

    reference = canonical_report(run_campaign(from_dict(spec_mapping)))

    process, base_url = start_server(args.workers)
    try:
        client = ServiceClient(base_url, timeout=60)
        client.wait_ready()

        # Cold pass doubles as the streamed-progress check: follow the
        # job's /events stream and require one scenario event per
        # scenario (every key covered) before reading the report.
        start = time.perf_counter()
        cold_id = client.submit(spec_mapping)["id"]
        events = list(client.events(cold_id, timeout=600))
        cold_s = time.perf_counter() - start
        scenario_events = [e for e in events if e["event"] == "scenario"]
        assert len(scenario_events) == scenario_count, (
            f"expected {scenario_count} scenario events, "
            f"got {len(scenario_events)}"
        )
        assert len({e["key"] for e in scenario_events}) == scenario_count, (
            "scenario events do not cover every scenario key"
        )
        assert events[-1] == {
            **events[-1], "event": "job", "state": "done",
        }, f"stream did not end with a terminal job event: {events[-1]}"
        cold_report = client.report(cold_id, wait=60)
        assert "dedup_hits" not in cold_report["summary"], (
            "cold pass must simulate every scenario"
        )
        assert canonical_report(cold_report) == reference, (
            "HTTP report diverged from the CLI reference"
        )
        print(f"cold submit->events->report: {cold_s * 1000:.1f} ms "
              f"({len(events)} events streamed)")

        # /metrics contract: valid exposition with the required series.
        scrape = client.metrics()
        for series in REQUIRED_METRICS:
            assert series in scrape, f"/metrics is missing {series}"
        assert parse_gauge(scrape, "repro_pool_workers") == args.workers

        def one_client(client_index: int) -> list[float]:
            own = ServiceClient(base_url, timeout=60)
            latencies = []
            for _ in range(args.repeats):
                elapsed, report = timed_run(own, spec_mapping)
                summary = report["summary"]
                assert summary.get("dedup_hits") == scenario_count, (
                    f"warm pass simulated scenarios: {summary}"
                )
                assert canonical_report(report) == reference
                latencies.append(elapsed)
            return latencies

        with GaugeSampler(client) as sampler:
            with concurrent.futures.ThreadPoolExecutor(args.clients) as pool:
                warm = [
                    s for lat in pool.map(one_client, range(args.clients))
                    for s in lat
                ]
        gauges = sampler.summary()

        health = client.healthz()
        # Service-lifetime dedup accounting: the cold pass misses every
        # scenario once, and each warm submission hits all of them.
        dedup = health["dedup"]
        expect_misses = scenario_count
        expect_hits = args.clients * args.repeats * scenario_count
        assert dedup["misses"] == expect_misses, (
            f"expected {expect_misses} cold misses, healthz says {dedup}"
        )
        assert dedup["hits"] == expect_hits, (
            f"expected {expect_hits} warm hits, healthz says {dedup}"
        )
        assert dedup["store_entries"] == scenario_count, (
            f"store should hold one row per scenario: {dedup}"
        )

        # Graceful-drain contract: SIGTERM while a job is mid-flight
        # must finish that job, deliver the terminal event on the
        # already-open /events stream, and exit 0.  The bumped seed
        # defeats dedup so the job really simulates.
        drain_spec = copy.deepcopy(spec_mapping)
        campaign = drain_spec.setdefault("campaign", {})
        campaign["seed"] = int(campaign.get("seed", 0)) + 1
        drain_id = client.submit(drain_spec)["id"]
        stream = client.events(drain_id, timeout=600)
        first = next(stream)  # stream established before the SIGTERM
        drain_start = time.perf_counter()
        process.terminate()
        drain_events = [first, *stream]
        drain_s = time.perf_counter() - drain_start
        last = drain_events[-1]
        assert last.get("event") == "job" and last.get("state") == "done", (
            f"drain did not deliver a terminal event: {last}"
        )
        rc = process.wait(timeout=60)
        assert rc == 0, f"drained server exited {rc}"
        tail = process.stdout.read() or ""
        assert "drained in" in tail, (
            f"server did not report a graceful drain: {tail!r}"
        )
        print(f"graceful drain: job finished and server exited 0 "
              f"in {drain_s * 1000:.1f} ms")
    finally:
        if process.poll() is None:
            process.terminate()
        process.wait(timeout=15)

    warm_ms = [s * 1000 for s in warm]
    p50, p99 = percentile(warm_ms, 0.50), percentile(warm_ms, 0.99)
    print(f"warm submit->report over {len(warm_ms)} requests: "
          f"p50 {p50:.1f} ms, p99 {p99:.1f} ms "
          f"(speedup x{cold_s * 1000 / p50:.1f} vs cold)")

    results = {
        "bench": "service",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "spec": args.spec.name,
        "scenarios": scenario_count,
        "clients": args.clients,
        "repeats": args.repeats,
        "workers": args.workers,
        "cold_ms": round(cold_s * 1000, 2),
        "warm_requests": len(warm_ms),
        "warm_p50_ms": round(p50, 2),
        "warm_p99_ms": round(p99, 2),
        "warm_mean_ms": round(statistics.mean(warm_ms), 2),
        "dedup_rate": 1.0,
        "dedup": health["dedup"],
        "store": health["store"],
        # SIGTERM-to-terminal-event latency of the drain check.
        "drain_ms": round(drain_s * 1000, 2),
        # /metrics gauge envelope sampled during the warm storm (max /
        # mean of each point-in-time series; see GaugeSampler).
        "gauges": gauges,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(
        json.dumps(results, indent=2) + "\n", encoding="utf-8"
    )

    table = args.out.with_name(args.out.stem + "_latency.md")
    table.write_text(
        "| pass | requests | p50 (ms) | p99 (ms) |\n"
        "|---|---:|---:|---:|\n"
        f"| cold | 1 | {results['cold_ms']} | {results['cold_ms']} |\n"
        f"| warm (dedup) | {len(warm_ms)} | {results['warm_p50_ms']} "
        f"| {results['warm_p99_ms']} |\n",
        encoding="utf-8",
    )
    print(f"wrote {args.out} and {table}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
