"""Campaign regression gate: diff a sweep report against the baseline.

The sweep analogue of ``check_regression.py``: CI re-runs the example
campaign (``examples/campaigns/paper_sweep.toml``) and then calls this
script to diff the aggregated ``sweep-results/paper_sweep.json`` against
the committed repo-root ``BENCH_sweep.json`` baseline.  Campaign metrics
are deterministic (seeded stimulus, cycle-identical engines, shard-count
invariant), so unlike the kernel gate nothing here is machine-dependent —
the ratio tolerance exists to separate deliberate re-baselining from
accidental drift, and to let small intentional changes through with an
explicit ``BENCH_TOLERANCE`` bump instead of a silent overwrite.

Per scenario key, the gate guards:

* ``cycles`` (and ``cycles_per_digest``) — lower is better; a rise of
  more than ``BENCH_TOLERANCE`` (default 0.25) is a regression (an
  *application-level* throughput drift, e.g. an elastic-control change
  that adds stall cycles);
* ``utilization`` / ``ipc`` — higher is better; a drop beyond the
  tolerance regresses.

A scenario present in the baseline but missing (or failed) in the
current report always regresses; new scenarios are reported but not
gated (they become gated once the baseline is regenerated).

Usage::

    python benchmarks/check_sweep_regression.py [baseline.json] [current.json]

Writes a markdown delta table to stdout, to
``<current dir>/sweep_regression_delta.md`` (uploaded as a CI artifact
even when the gate passes) and, when ``GITHUB_STEP_SUMMARY`` is set,
appends the same table to the job summary.  Exits non-zero if any
scenario regressed.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_sweep.json"
DEFAULT_CURRENT = REPO_ROOT / "sweep-results" / "paper_sweep.json"

#: metric key -> (display label, True when higher is better).
METRICS = (
    ("cycles", "cycles", False),
    ("cycles_per_digest", "cyc/digest", False),
    ("utilization", "util", True),
    ("ipc", "ipc", True),
)


def tolerance() -> float:
    raw = os.environ.get("BENCH_TOLERANCE", "0.25")
    try:
        value = float(raw)
    except ValueError:
        raise SystemExit(f"invalid BENCH_TOLERANCE {raw!r} (want a float)")
    if not 0 <= value < 1:
        raise SystemExit(f"BENCH_TOLERANCE {value} out of range [0, 1)")
    return value


def _metric_rows(report: dict) -> dict[str, dict]:
    """``scenario key -> metrics`` for the report's ok scenarios."""
    return {
        row["key"]: row.get("metrics", {})
        for row in report.get("scenarios", ())
        if row.get("status") == "ok"
    }


def compare(baseline: dict, current: dict, tol: float):
    """Return (markdown lines, regression messages)."""
    base_name = baseline.get("campaign", {}).get("name", "?")
    cur_name = current.get("campaign", {}).get("name", "?")
    lines = [
        "### Campaign regression gate",
        "",
        f"baseline campaign `{base_name}` vs current `{cur_name}`; "
        f"tolerance {tol:.0%}",
        "",
        "| scenario | metric | baseline | current | delta | status |",
        "|---|---|---|---|---|---|",
    ]
    regressions: list[str] = []
    base_rows = _metric_rows(baseline)
    cur_rows = _metric_rows(current)
    for key, base_metrics in base_rows.items():
        cur_metrics = cur_rows.get(key)
        if cur_metrics is None:
            regressions.append(f"{key}: missing or failed in current report")
            lines.append(f"| `{key}` | — | — | — | — | ❌ missing |")
            continue
        for metric, label, higher_better in METRICS:
            base_val = base_metrics.get(metric)
            cur_val = cur_metrics.get(metric)
            if not isinstance(base_val, (int, float)):
                continue
            if not isinstance(cur_val, (int, float)):
                # A gated metric vanished (or changed shape): that is a
                # report regression, not a reason to skip the scenario.
                regressions.append(
                    f"{key}: gated metric {label!r} missing from the "
                    f"current report"
                )
                lines.append(
                    f"| `{key}` | {label} | {base_val:g} | — | — | "
                    f"❌ missing metric |"
                )
                continue
            if base_val == 0:
                continue  # a ratio over zero is meaningless; skip
            delta = (cur_val - base_val) / base_val
            if higher_better:
                ok = cur_val >= base_val * (1 - tol)
            else:
                ok = cur_val <= base_val * (1 + tol)
            status = "✅ ok" if ok else "❌ regressed"
            lines.append(
                f"| `{key}` | {label} | {base_val:g} | {cur_val:g} | "
                f"{delta:+.1%} | {status} |"
            )
            if not ok:
                direction = "dropped" if higher_better else "rose"
                regressions.append(
                    f"{key}: {label} {direction} {base_val:g} -> "
                    f"{cur_val:g} ({delta:+.1%}, tolerance {tol:.0%})"
                )
    for key in cur_rows:
        if key not in base_rows:
            lines.append(f"| `{key}` | — | new | — | — | ℹ not gated |")
    return lines, regressions


def main(argv: list[str]) -> int:
    baseline_path = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_BASELINE
    current_path = pathlib.Path(argv[2]) if len(argv) > 2 else DEFAULT_CURRENT
    for path, what in ((baseline_path, "baseline"), (current_path, "current")):
        if not path.is_file():
            print(f"error: {what} campaign report not found at {path}")
            return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = json.loads(current_path.read_text(encoding="utf-8"))
    lines, regressions = compare(baseline, current, tolerance())
    if regressions:
        lines += ["", "**Regressions:**", ""]
        lines += [f"- {msg}" for msg in regressions]
    report = "\n".join(lines) + "\n"
    print(report)
    delta_path = current_path.parent / "sweep_regression_delta.md"
    try:
        delta_path.write_text(report, encoding="utf-8")
    except OSError as exc:  # the table is advisory; never fail on it
        print(f"warning: could not write {delta_path}: {exc}")
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(report)
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
