"""E12 (ablation) — arbitration policy choices inside the MEB.

Two design decisions the paper states but does not evaluate:

1. **Rotating vs fixed priority.**  The MEB arbiter must rotate for
   per-thread fairness; a fixed-priority arbiter starves high-index
   threads whenever low-index threads keep the channel busy.  Measured
   with Jain's fairness index over per-thread throughput.

2. **Downstream-ready masking** ("after taking into account which threads
   are ready downstream").  On a plain pipeline, masked and
   masked-with-fallback arbitration are cycle-identical; with a barrier
   downstream, pure masking deadlocks (arrivals can never be observed) —
   the empirical demonstration of DESIGN.md §5's analysis and why this
   library defaults to MASKED_FALLBACK.
"""

from __future__ import annotations

import io

from repro.analysis import fairness_index, per_thread_throughputs
from repro.core import (
    Barrier,
    FixedPriorityArbiter,
    FullMEB,
    GrantPolicy,
    MTChannel,
    MTMonitor,
    MTSink,
    MTSource,
)
from repro.kernel import SimulationError, build

from _pipelines import make_mt_pipeline


def fairness_with_arbiter(arbiter_factory):
    """Swap the arbiter in *every* arbitration point (source and MEBs)."""
    items = [list(range(60)) for _ in range(4)]
    sim, src, _sink, mebs, mons = make_mt_pipeline(
        FullMEB, threads=4, items=items, n_stages=2
    )
    src.arbiter = arbiter_factory(4)
    for meb in mebs:
        meb.arbiter = arbiter_factory(4)
    sim.reset()
    sim.run(cycles=60)
    tps = per_thread_throughputs(mons[-1], 8, 56)
    return fairness_index(tps), tps


def barrier_deadlock_probe(policy):
    """Run MEB->barrier with the given policy; True if progress happens."""
    c0 = MTChannel("c0", threads=2)
    c1 = MTChannel("c1", threads=2)
    c2 = MTChannel("c2", threads=2)
    src = MTSource("src", c0, items=[["a"], ["b"]], policy=policy)
    meb = FullMEB("meb", c0, c1, policy=policy)
    bar = Barrier("bar", c1, c2)
    sink = MTSink("snk", c2)
    mon = MTMonitor("mon", c2)
    sim = build(c0, c1, c2, src, meb, bar, sink, mon)
    try:
        sim.run(until=lambda _s: sink.count == 2, max_cycles=60)
        return True
    except SimulationError:
        return False


def test_round_robin_vs_fixed_priority(benchmark, report):
    from repro.core import RoundRobinArbiter

    def measure():
        rr = fairness_with_arbiter(lambda n: RoundRobinArbiter(n))
        fixed = fairness_with_arbiter(lambda n: FixedPriorityArbiter(n))
        return rr, fixed

    (rr_fair, rr_tps), (fx_fair, fx_tps) = benchmark(measure)
    buf = io.StringIO()
    buf.write("Arbiter fairness over 4 saturating threads "
              "(Jain index, 1.0 = perfectly fair)\n\n")
    buf.write(f"{'arbiter':<16} | {'fairness':>8} | per-thread throughput\n")
    rr_fmt = ", ".join(f"{tp:.2f}" for tp in rr_tps)
    fx_fmt = ", ".join(f"{tp:.2f}" for tp in fx_tps)
    buf.write(f"{'round-robin':<16} | {rr_fair:>8.3f} | {rr_fmt}\n")
    buf.write(f"{'fixed-priority':<16} | {fx_fair:>8.3f} | {fx_fmt}\n")
    report("ablation_arbitration_fairness", buf.getvalue())

    assert rr_fair > 0.99
    assert fx_fair < 0.5
    # Fixed priority starves everyone but thread 0.
    assert fx_tps[0] > 0.9
    assert max(fx_tps[1:]) < 0.1


def test_masking_policy_on_barrier_topology(benchmark, report):
    results = benchmark(lambda: {
        policy.name: barrier_deadlock_probe(policy)
        for policy in GrantPolicy
    })
    buf = io.StringIO()
    buf.write("Grant-policy ablation on a source->MEB->barrier->sink "
              "topology\n(True = all items delivered, False = deadlock "
              "detected)\n\n")
    for name, ok in results.items():
        buf.write(f"  {name:<16} {'progress' if ok else 'DEADLOCK'}\n")
    buf.write(
        "\nPure downstream-ready masking deadlocks: the barrier opens only "
        "after seeing\nevery thread's valid, but a masked arbiter never "
        "presents a thread whose ready\nis low. The fallback policy "
        "probes with valid threads and breaks the knot\n(DESIGN.md §5).\n"
    )
    report("ablation_grant_policy", buf.getvalue())

    assert results["MASKED"] is False
    assert results["MASKED_FALLBACK"] is True
    assert results["UNMASKED"] is True


def test_policies_identical_on_pipelines(report):
    """On MEB-to-MEB pipelines every policy delivers the same streams —
    the configurations the paper measures are unaffected by the choice."""
    outputs = {}
    for policy in GrantPolicy:
        items = [list(range(12)), list(range(12))]
        sim, _src, sink, _mebs, _mons = make_mt_pipeline(
            FullMEB, threads=2, items=items, n_stages=3, policy=policy
        )
        sim.run(cycles=80)
        outputs[policy.name] = (sink.values_for(0), sink.values_for(1))
    assert outputs["MASKED"] == outputs["MASKED_FALLBACK"] == outputs["UNMASKED"]
    report(
        "ablation_policy_pipeline_equivalence",
        "All three grant policies deliver identical per-thread streams on "
        "a 3-stage\nMEB pipeline (the paper's measured topology).\n",
    )
