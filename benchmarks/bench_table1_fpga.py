"""E5/E6 — Table I: FPGA implementation results (area/frequency).

Reproduces the paper's Table I for the 8-thread MD5 hash and the
8-thread multithreaded processor, built with full and with reduced MEBs,
plus the §V-C thread-count sweep ("if we increase the number of threads
to 16 the average savings rise above 22%").

Substitution (DESIGN.md §2): instead of FPGA place & route we fold each
design's structural inventory through the LE cost model; the timing model
is wire-dominated (``period = k·sqrt(area)``) with ``k`` calibrated once
per design on the *full-MEB* column — the reduced-MEB frequency is then a
model prediction, not an input.
"""

from __future__ import annotations

import math

from repro.apps.md5 import MD5Circuit
from repro.apps.processor import Processor
from repro.cost import (
    AreaModel,
    ComparisonRow,
    DesignCost,
    average_savings,
    savings_sweep_table,
    table1,
)

#: Paper Table I values: (design, full LE, full MHz, reduced LE, reduced MHz)
PAPER_TABLE1 = {
    "MD5 hash": (12780, 11.0, 11200, 12.0),
    "Processor": (6850, 60.0, 5590, 68.0),
}

THREADS = 8
SWEEP = (2, 4, 8, 16, 32)


def build_design(name: str, meb: str, threads: int):
    if name == "MD5 hash":
        return MD5Circuit(threads=threads, meb=meb)
    return Processor(threads=threads, meb=meb)


def design_area(name: str, meb: str, threads: int, model: AreaModel) -> float:
    design = build_design(name, meb, threads)
    return sum(
        model.component_area(c).total_le for c in design.area_components()
    )


def meb_area(name: str, meb: str, threads: int, model: AreaModel) -> float:
    design = build_design(name, meb, threads)
    return sum(
        model.component_area(c).total_le for c in design.meb_components()
    )


def comparison_rows(model: AreaModel, threads: int = THREADS):
    rows = []
    for name, (paper_full_le, paper_full_mhz, _rle, _rmhz) in (
        PAPER_TABLE1.items()
    ):
        full_le = design_area(name, "full", threads, model)
        red_le = design_area(name, "reduced", threads, model)
        # One calibration point per design: the full-MEB build is pinned
        # to the paper's frequency; reduced is predicted by the model.
        wire_k = (1000.0 / paper_full_mhz) / math.sqrt(full_le)
        full_mhz = 1000.0 / (wire_k * math.sqrt(full_le))
        red_mhz = 1000.0 / (wire_k * math.sqrt(red_le))
        rows.append(ComparisonRow(
            name,
            DesignCost(name, "full", full_le, full_mhz),
            DesignCost(name, "reduced", red_le, red_mhz),
        ))
    return rows


def test_table1_8_threads(benchmark, report):
    model = AreaModel()
    rows = benchmark(comparison_rows, model)
    text = table1(
        rows,
        title="TABLE I — FPGA implementation results, 8-thread designs "
              "(structural cost model)",
    )
    text += "\nPaper reference:\n"
    for name, (fle, fmhz, rle, rmhz) in PAPER_TABLE1.items():
        sav = 1 - rle / fle
        text += (
            f"  {name:<12} full {fle} LE @ {fmhz} MHz | reduced {rle} LE @ "
            f"{rmhz} MHz | savings {sav:.1%}\n"
        )
    text += (
        f"  paper average savings: "
        f"{(1 - 11200 / 12780 + 1 - 5590 / 6850) / 2:.1%}\n"
    )
    report("table1_8threads", text)
    # Shape assertions: reduced always wins, savings in the paper's band,
    # processor saves more than MD5 (its MEB/logic ratio is larger).
    assert all(r.area_savings > 0 for r in rows)
    assert rows[1].area_savings > rows[0].area_savings
    assert 0.10 < average_savings(rows) < 0.22
    assert all(r.speedup > 1.0 for r in rows)


def test_table1_16_thread_savings(benchmark, report):
    """§V-C: savings rise with thread count; >22% MEB-local at S=16."""
    model = AreaModel()

    def sweep():
        out = {}
        for name in PAPER_TABLE1:
            points = []
            meb_points = []
            for s in SWEEP:
                full = design_area(name, "full", s, model)
                red = design_area(name, "reduced", s, model)
                points.append((s, full, red))
                meb_points.append(
                    (s, meb_area(name, "full", s, model),
                     meb_area(name, "reduced", s, model))
                )
            out[name] = (points, meb_points)
        return out

    data = benchmark(sweep)
    text = ""
    for name, (points, meb_points) in data.items():
        text += savings_sweep_table(f"{name} (whole design)", points) + "\n"
        text += savings_sweep_table(f"{name} (MEB area only)", meb_points)
        text += "\n"

    def whole_savings(name, s):
        pts = {p[0]: p for p in data[name][0]}
        _s, full, red = pts[s]
        return 1 - red / full

    def meb_savings(name, s):
        pts = {p[0]: p for p in data[name][1]}
        _s, full, red = pts[s]
        return 1 - red / full

    avg16_whole = sum(whole_savings(n, 16) for n in PAPER_TABLE1) / 2
    avg16_meb = sum(meb_savings(n, 16) for n in PAPER_TABLE1) / 2
    avg8_whole = sum(whole_savings(n, 8) for n in PAPER_TABLE1) / 2
    text += (
        f"Average whole-design savings: S=8 {avg8_whole:.1%} -> "
        f"S=16 {avg16_whole:.1%}\n"
        f"Average MEB-local savings at S=16: {avg16_meb:.1%} "
        f"(paper: 'above 22%')\n"
    )
    report("table1_thread_sweep", text)
    # Savings must grow monotonically with S for both designs.
    for name in PAPER_TABLE1:
        series = [whole_savings(name, s) for s in SWEEP]
        assert series == sorted(series), f"{name}: {series}"
    assert avg16_whole > avg8_whole
    assert avg16_meb > 0.22


def test_table1_storage_arithmetic(report):
    """The slot counts behind Table I: 2S vs S+1 words per MEB."""
    text = ""
    for s in SWEEP:
        md5_full = MD5Circuit(threads=s, meb="full")
        md5_red = MD5Circuit(threads=s, meb="reduced")
        slots_full = sum(m.total_slots for m in md5_full.meb_components())
        slots_red = sum(m.total_slots for m in md5_red.meb_components())
        text += (
            f"S={s:>2}: MD5 buffer slots full={slots_full} "
            f"reduced={slots_red} (per MEB: {2 * s} vs {s + 1})\n"
        )
        assert slots_full == 2 * 2 * s
        assert slots_red == 2 * (s + 1)
    report("table1_slot_arithmetic", text)
