"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered output goes to stdout (run with ``-s`` to see it live) and to
``results/<name>.txt`` next to this directory, so EXPERIMENTS.md can
reference the exact artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

# Anchored through resolve() so report files land next to this file no
# matter what the CWD (or a relative __file__) is at run time.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir):
    """Callable saving a named report: ``report("fig5", text)``."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text, encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return _save
