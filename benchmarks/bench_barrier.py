"""E10 — barrier behaviour (Fig. 8) and its cost in the MD5 loop.

Renders the barrier's open/close trace during an MD5 run — arrivals,
counter value, go-flag flips, releases — and measures the
synchronization overhead: cycles per round with the barrier (lockstep
rounds, as the paper's configuration sharing requires) for different
thread counts.
"""

from __future__ import annotations

import hashlib
import io

from repro.apps.md5 import MD5Hasher
from repro.analysis import OccupancyProbe


def run_md5_with_barrier_probe(threads=4):
    hasher = MD5Hasher(threads=threads, meb="reduced")
    bar = hasher.circuit.barrier
    probe_count = OccupancyProbe(lambda: bar.count)
    probe_go = OccupancyProbe(lambda: int(bar.go))
    probe_states = OccupancyProbe(
        lambda: "".join(bar.thread_state(t)[0] for t in range(threads))
    )
    hasher.circuit.sim.add_observer(probe_count)
    hasher.circuit.sim.add_observer(probe_go)
    hasher.circuit.sim.add_observer(probe_states)
    msgs = [f"msg-{i}".encode() for i in range(threads)]
    digests = hasher.hash_batch(msgs)
    return hasher, digests, probe_count, probe_go, probe_states


def test_barrier_trace(benchmark, report):
    hasher, digests, p_count, p_go, p_states = benchmark(
        run_md5_with_barrier_probe
    )
    bar = hasher.circuit.barrier
    buf = io.StringIO()
    buf.write("Barrier activity during a 4-thread, single-block MD5 run\n")
    buf.write("(per cycle: arrival counter, go flag, per-thread FSM "
              "I=IDLE W=WAIT F=FREE)\n\n")
    n = len(p_count.series)
    buf.write(f"{'cycle':>6} | {'count':>5} | {'go':>2} | states\n")
    for c in range(min(n, 40)):
        buf.write(
            f"{c:>6} | {p_count.series[c]:>5} | {p_go.series[c]:>2} | "
            f"{p_states.series[c]}\n"
        )
    buf.write(f"\nreleases: {bar.releases} (4 rounds x 1 wave)\n")
    report("barrier_trace", buf.getvalue())

    assert bar.releases == 4
    # The go flag flipped exactly once per release.
    flips = sum(
        1 for a, b in zip(p_go.series, p_go.series[1:]) if a != b
    )
    assert flips == 4
    # Counter never exceeds the participant count.
    assert max(p_count.series) <= 4
    assert digests == [
        hashlib.md5(f"msg-{i}".encode()).hexdigest() for i in range(4)
    ]


def test_barrier_overhead_vs_threads(benchmark, report):
    def sweep():
        out = {}
        for threads in (2, 4, 8):
            hasher = MD5Hasher(threads=threads, meb="reduced")
            msgs = [f"m{i}".encode() for i in range(threads)]
            hasher.hash_batch(msgs)
            cycles = hasher.circuit.sim.cycle
            out[threads] = (cycles, cycles / 4)
        return out

    data = benchmark(sweep)
    buf = io.StringIO()
    buf.write("MD5 single-wave cost vs thread count (4 rounds, barrier "
              "synchronized)\n")
    buf.write(f"{'threads':>8} | {'cycles':>7} | {'cycles/round':>12}\n")
    for threads, (cycles, per_round) in data.items():
        buf.write(f"{threads:>8} | {cycles:>7} | {per_round:>12.1f}\n")
    report("barrier_overhead", buf.getvalue())
    # Per-round cost grows linearly with threads: the loop serializes one
    # thread per cycle through two MEB stages, so a lockstep round costs
    # about 2S cycles (plus the barrier's release latency).
    for threads, (_cycles, per_round) in data.items():
        assert per_round <= 2 * threads + 2
