"""E2 — Fig. 2(b): the elastic handshake waveform.

Reproduces the valid/ready/data waveform of the paper's Fig. 2(b): three
words cross an elastic buffer; a stall (ready low) delays word2, during
which valid stays asserted and the data stays stable.
"""

from __future__ import annotations

from repro.elastic import ChannelMonitor, ElasticBuffer, ElasticChannel, Sink, Source
from repro.kernel import Simulator, TraceRecorder


def run_handshake():
    c0 = ElasticChannel("c0", width=16)
    c1 = ElasticChannel("c1", width=16)
    src = Source("src", c0, items=["word1", "word2", "word3"],
                 pattern=[True, True, False, True])
    eb = ElasticBuffer("eb", c0, c1)
    # Downstream refuses in cycles 2-3: word2 must wait.
    sink = Sink("snk", c1, pattern=lambda c: c not in (2, 3))
    mon = ChannelMonitor("mon", c1)
    sim = Simulator()
    for comp in (c0, c1, src, eb, sink, mon):
        sim.add(comp)
    sim.reset()
    rec = TraceRecorder(
        [c1.valid, c1.ready, c1.data],
        labels=["valid", "ready", "data"],
    ).attach(sim)
    sim.run(cycles=10)
    return rec, mon


def test_fig2_handshake_waveform(benchmark, report):
    rec, mon = benchmark(run_handshake)
    text = "Fig. 2(b) — elastic protocol waveform on the EB output " \
           "channel\n(downstream stalls in cycles 2-3)\n\n"
    text += rec.ascii_waveform(cell_width=7)
    report("fig2_handshake", text)

    valid = rec.column("valid")
    ready = rec.column("ready")
    data = rec.column("data")
    transfers = [
        (c, d) for c, (v, r, d) in enumerate(zip(valid, ready, data))
        if v and r
    ]
    # All three words transfer, in order.
    assert [d for _c, d in transfers] == ["word1", "word2", "word3"]
    # The stalled offer persists: valid stays high with stable data
    # through the stall cycles.
    assert valid[2] and valid[3]
    assert not ready[2] and not ready[3]
    assert data[2] == data[3] == "word2"
    assert mon.stall_cycles >= 2
