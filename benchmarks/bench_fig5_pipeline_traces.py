"""E3/E4 — Fig. 5: elastic flow on 2-stage MEB pipelines.

Regenerates the cycle-by-cycle traces of the paper's Fig. 5: two threads
(A and B) flowing through a 2-stage pipeline of (a) full MEBs and
(b) reduced MEBs, with thread B stalling at the output for a window and
then being released.  The rendered tables show, per cycle, which item
crosses the input channel, the inter-stage channel and the output
channel, plus the per-stage buffer occupancy of each thread and the
shared-slot owner for reduced MEBs.

The quantitative claims asserted here match tests/test_core_fig5.py:
full keeps thread A at 100% during the stall, reduced drops A to 50%
once B's backpressure reaches the source, and B's injection stops.
"""

from __future__ import annotations

from repro.analysis import OccupancyProbe, render_activity_table, render_occupancy_table
from repro.core import FullMEB, MTChannel, MTMonitor, MTSink, MTSource, ReducedMEB
from repro.elastic import stall_window
from repro.kernel import build

STALL_START, STALL_END = 6, 26
N_SHOW = 30          # cycles rendered in the figure
N_ITEMS = 40


def build_fig5(meb_cls):
    chans = [MTChannel(f"ch{i}", threads=2, width=32) for i in range(3)]
    items = [[f"A{i}" for i in range(N_ITEMS)],
             [f"B{i}" for i in range(N_ITEMS)]]
    src = MTSource("src", chans[0], items=items)
    meb0 = meb_cls("meb0", chans[0], chans[1])
    meb1 = meb_cls("meb1", chans[1], chans[2])
    sink = MTSink("snk", chans[2],
                  patterns=[None, stall_window(STALL_START, STALL_END)])
    mons = [MTMonitor(f"mon{i}", ch) for i, ch in enumerate(chans)]
    sim = build(*chans, src, meb0, meb1, sink, *mons)
    probes = {
        "meb0.A": OccupancyProbe(lambda m=meb0: m.occupancy(0)),
        "meb0.B": OccupancyProbe(lambda m=meb0: m.occupancy(1)),
        "meb1.A": OccupancyProbe(lambda m=meb1: m.occupancy(0)),
        "meb1.B": OccupancyProbe(lambda m=meb1: m.occupancy(1)),
    }
    if meb_cls is ReducedMEB:
        probes["meb0.shared"] = OccupancyProbe(
            lambda m=meb0: "AB"[m.shared_owner] if m.shared_full else "-"
        )
        probes["meb1.shared"] = OccupancyProbe(
            lambda m=meb1: "AB"[m.shared_owner] if m.shared_full else "-"
        )
    for probe in probes.values():
        sim.add_observer(probe)
    return sim, mons, probes, (meb0, meb1)


def run_and_render(meb_cls):
    sim, mons, probes, _mebs = build_fig5(meb_cls)
    sim.run(cycles=60)
    label = {FullMEB: "(a) full MEBs", ReducedMEB: "(b) reduced MEBs"}[meb_cls]
    text = f"Fig. 5{label}: 2-thread, 2-stage pipeline; B stalls " \
           f"cycles [{STALL_START},{STALL_END})\n\n"
    text += render_activity_table(
        {"input": mons[0], "stage1->2": mons[1], "output": mons[2]},
        start=0, end=N_SHOW,
    )
    text += "\nBuffer occupancy per thread (and shared-slot owner):\n"
    text += render_occupancy_table(
        {name: probe.series for name, probe in probes.items()},
        start=0, end=N_SHOW,
    )
    return text, mons


def test_fig5a_full_meb_trace(benchmark, report):
    text, mons = benchmark(run_and_render, FullMEB)
    report("fig5a_full_meb", text)
    # During the stall — once B's four private slots have filled and its
    # injection stopped — A uses every output cycle.
    window = (STALL_START + 10, STALL_END)
    tp_a = mons[2].throughput_window(*window, thread=0)
    assert tp_a == 1.0


def test_fig5b_reduced_meb_trace(benchmark, report):
    text, mons = benchmark(run_and_render, ReducedMEB)
    report("fig5b_reduced_meb", text)
    window = (STALL_START + 6, STALL_END)
    tp_a = mons[2].throughput_window(*window, thread=0)
    assert abs(tp_a - 0.5) <= 0.1
    # B injection stops once backpressure reaches the source.
    b_inj = [c for c in mons[0].transfer_cycles(1)
             if STALL_START + 6 <= c < STALL_END]
    assert b_inj == []


def test_fig5_streams_identical(report):
    """Both MEB kinds deliver identical per-thread streams — elasticity
    changes timing, never data (paper §I behavioural equivalence)."""
    outputs = {}
    for meb_cls in (FullMEB, ReducedMEB):
        sim, mons, _probes, _mebs = build_fig5(meb_cls)
        sim.run(cycles=STALL_END + 2 * N_ITEMS + 10)
        outputs[meb_cls.__name__] = (
            mons[2].values_for(0), mons[2].values_for(1)
        )
    assert outputs["FullMEB"] == outputs["ReducedMEB"]
    a_full, b_full = outputs["FullMEB"]
    assert a_full == [f"A{i}" for i in range(N_ITEMS)]
    assert b_full == [f"B{i}" for i in range(N_ITEMS)]
    report(
        "fig5_equivalence",
        "Full and reduced MEB pipelines delivered identical per-thread "
        f"streams ({N_ITEMS} items per thread, B stalled "
        f"[{STALL_START},{STALL_END})).\n",
    )
