"""E11 (extension) — pipelining the MD5 round "with minimum changes".

Paper §V-A: the 16 steps of each round "are fully unrolled and
implemented in a single cycle, although they could have been pipelined
with minimum changes due to elasticity."  This bench performs that change
(``MD5Circuit(round_stages=k)``) and quantifies the trade:

* logic depth per stage falls as 16/k steps -> the clock period estimate
  falls accordingly (minus the growing wiring term);
* the elastic loop needs more cycles per wave (more MEB hops);
* net wall-clock throughput (digests/second = digests/cycle x fmax)
  improves markedly for k in {2, 4, 8} with 8 threads keeping the longer
  pipeline full.

Correctness at every k is already covered by the test suite; here we
re-verify one batch per configuration and report the cost/performance
table.
"""

from __future__ import annotations

import hashlib
import io
import math

from repro.apps.md5 import MD5Hasher
from repro.cost import AreaModel

#: Per-step logic depth (ns): the MD5 step is a short adder chain.
STEP_DEPTH_NS = 5.0
#: Wiring coefficient consistent with the Table I calibration for MD5.
WIRE_K = 0.65

STAGE_COUNTS = (1, 2, 4, 8, 16)
THREADS = 8


def run_config(stages: int):
    hasher = MD5Hasher(threads=THREADS, meb="reduced", round_stages=stages)
    msgs = [f"pipeline-{i}".encode() for i in range(THREADS)]
    digests = hasher.hash_batch(msgs)
    assert digests == [hashlib.md5(m).hexdigest() for m in msgs]
    cycles = hasher.circuit.sim.cycle
    model = AreaModel()
    area = sum(
        model.component_area(c).total_le
        for c in hasher.circuit.area_components()
    )
    steps_per_stage = 16 // stages
    period = STEP_DEPTH_NS * steps_per_stage + WIRE_K * math.sqrt(area)
    fmax = 1000.0 / period
    wall_us = cycles * period / 1000.0
    digests_per_ms = THREADS / wall_us * 1000.0
    return {
        "cycles": cycles,
        "area": area,
        "fmax": fmax,
        "wall_us": wall_us,
        "digests_per_ms": digests_per_ms,
    }


def test_md5_round_pipelining(benchmark, report):
    data = benchmark(lambda: {k: run_config(k) for k in STAGE_COUNTS})
    buf = io.StringIO()
    buf.write("MD5 round pipelining ablation (8 threads, reduced MEBs, "
              "one single-block digest per thread)\n\n")
    buf.write(
        f"{'stages':>7} | {'area LE':>8} | {'fmax MHz':>9} | "
        f"{'cycles':>7} | {'wall us':>8} | {'digests/ms':>10}\n"
    )
    for k in STAGE_COUNTS:
        d = data[k]
        buf.write(
            f"{k:>7} | {d['area']:>8.0f} | {d['fmax']:>9.1f} | "
            f"{d['cycles']:>7} | {d['wall_us']:>8.2f} | "
            f"{d['digests_per_ms']:>10.1f}\n"
        )
    best = max(STAGE_COUNTS, key=lambda k: data[k]["digests_per_ms"])
    buf.write(
        "\n'minimum changes': the only code difference between rows is "
        "the round_stages\nconstructor argument — the elastic control "
        "absorbs the extra latency.\n"
        f"\nsweet spot: {best} stage(s). Each extra stage buys 16/k steps "
        "of logic depth but\ncosts one more S+1-slot, 144-bit MEB, whose "
        "area (wiring) and loop-latency\npenalties overtake the logic-"
        "depth win beyond a few stages — an effect the\npaper's 'could "
        "have been pipelined' remark leaves unquantified.\n"
    )
    report("ablation_md5_pipelining", buf.getvalue())

    # Area grows monotonically with stage count (one more MEB per stage).
    areas = [data[k]["area"] for k in STAGE_COUNTS]
    assert areas == sorted(areas)
    # Moderate pipelining beats the single-cycle round on wall clock...
    assert data[best]["digests_per_ms"] > data[1]["digests_per_ms"]
    assert 1 < best <= 8
    # ...but the deepest pipeline loses to the sweet spot: buffer cost
    # (area -> wiring delay) and extra loop hops dominate.
    assert data[16]["digests_per_ms"] < data[best]["digests_per_ms"]
