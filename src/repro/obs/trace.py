"""Hierarchical spans for campaign runs, serializable as JSONL.

A :class:`Tracer` collects :class:`Span` records forming a tree:
``job -> unit -> scenario -> build/simulate/metrics``.  Spans carry a
wall-clock start (``start_unix``, for merging across processes) and a
monotonic-clock duration (``duration_s``, measured with
``time.perf_counter`` so it is immune to wall-clock jumps).

Worker processes in the persistent pool build their own tracer per
dispatched unit; the finished spans ship back through the result queue
as plain dicts and the dispatcher merges them into the job's trace with
the parent id pointing at the job-side span — see
``repro.sweep.jobs``.  :class:`NullTracer` is the zero-cost stand-in so
hot paths never branch on ``if tracer is not None``.
"""

from __future__ import annotations

import json
import time
import uuid
from threading import Lock

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_unix",
        "duration_s",
        "attrs",
        "_t0",
        "_tracer",
    )

    def __init__(self, tracer, name, parent_id, attrs):
        self.trace_id = tracer.trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.start_unix = time.time()
        self.duration_s = None
        self.attrs = dict(attrs)
        self._t0 = time.perf_counter()
        self._tracer = tracer

    def set(self, **attrs) -> None:
        """Attach attributes to an open (or finished) span."""
        self.attrs.update(attrs)

    def end(self) -> None:
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._t0
            self._tracer._record(self)

    def __enter__(self) -> Span:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": round(self.start_unix, 6),
            "duration_s": None
            if self.duration_s is None
            else round(self.duration_s, 9),
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects finished spans for one trace (thread-safe)."""

    def __init__(self, trace_id: str | None = None, **attrs) -> None:
        self.trace_id = trace_id or _new_id()
        self.attrs = dict(attrs)
        self._lock = Lock()
        self._spans: list[Span] = []

    def span(self, name: str, parent: Span | str | None = None, **attrs) -> Span:
        """Open a span; use as a context manager or call ``.end()``."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        merged = dict(self.attrs)
        merged.update(attrs)
        return Span(self, name, parent_id, merged)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> list[dict]:
        """Finished spans as dicts, in completion order."""
        with self._lock:
            return [span.to_dict() for span in self._spans]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(span, sort_keys=True) + "\n" for span in self.spans()
        )


class _NullSpan:
    """Inert span: accepts the full Span surface, records nothing."""

    __slots__ = ()
    trace_id = span_id = parent_id = None
    name = "null"
    attrs: dict = {}

    def set(self, **attrs) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer:
    """Drop-in tracer that records nothing (the default on hot paths)."""

    trace_id = None

    def span(self, name, parent=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> list[dict]:
        return []

    def to_jsonl(self) -> str:
        return ""


_NULL_SPAN = _NullSpan()

#: Shared inert tracer instance.
NULL_TRACER = NullTracer()
