"""Kernel profiler: wall-time attribution without breaking the fast path.

:class:`KernelProfiler` attributes wall-time and invocation counts per
component, per compiled region, and per phase (settle vs tick vs fused
batch), plus engine counters (settle iterations, dirty-set seed sizes,
fusion utilization, ensemble lane occupancy) for one
:class:`~repro.kernel.simulator.Simulator`.

The contract (differentially tested in ``tests/test_obs.py``):

* **Not an observer.**  Attaching never calls ``add_observer`` — any
  observer disables settle+tick fusion, which would make the profiled
  run take a different code path from the run being diagnosed.  Instead
  the simulator *recompiles* its engine and tick plans with timing
  wrappers baked in (``Simulator.attach_profiler`` ->
  ``_build_engine``), and recompiles them back out on detach.
* **Bit-identical reports.**  The wrappers time and count; they never
  reorder, skip, or add evaluations, so settled values, cycle counts
  and every campaign metric are unchanged.
* **Zero cost when off.**  Profiling hooks exist only in plans compiled
  while a profiler is attached; a detached simulator runs the exact
  code it would have run had the profiler never existed (gated by the
  ``profile_overhead`` ratio in ``BENCH_kernel.json``).

Usage::

    with sim.profile() as prof:
        sim.run(cycles=10_000)
    report = prof.report()          # JSON-safe dict

or ``Simulator(profile=True)`` + ``sim.profiler.report()``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable

__all__ = ["KernelProfiler", "ProfileSession"]


class KernelProfiler:
    """Accumulates timing/counter data for one simulator's run window."""

    def __init__(self) -> None:
        self.engine_name: str | None = None
        self.reset()

    def reset(self) -> None:
        """Zero every accumulator (keeps engine/region attribution)."""
        # path -> [seconds, calls] for settle-phase evaluations.
        self._comb: dict[str, list] = {}
        # path -> [seconds, calls] for tick-phase capture+commit.
        self._tick: dict[str, list] = {}
        # phase -> [seconds, calls]
        self._phase = {
            "settle": [0.0, 0],
            "tick": [0.0, 0],
            "fused": [0.0, 0],
        }
        self.settle_iterations = 0
        self.dirty_seeded = 0
        self.dirty_max = 0
        self.cycles_ticked = 0
        self.cycles_fused = 0
        self.fused_batches = 0
        self._regions: list[dict] = []
        self._ensemble = {"batches": 0, "lanes": 0, "lanes_live": 0}

    # ------------------------------------------------------------------
    # wrappers compiled into engines / plans (only while attached)
    # ------------------------------------------------------------------
    def wrap_comb(self, fn: Callable[[], Any], path: str) -> Callable[[], Any]:
        """Time a settle-phase evaluation step attributed to *path*."""
        cell = self._comb.setdefault(path, [0.0, 0])
        perf = perf_counter

        def timed():
            t0 = perf()
            try:
                return fn()
            finally:
                cell[0] += perf() - t0
                cell[1] += 1

        timed.__qualname__ = f"profiled[{path}]"
        return timed

    def wrap_tick_capture(self, fn, path: str):
        """Time a tick-phase capture step (``fn(cycle)``) for *path*."""
        cell = self._tick.setdefault(path, [0.0, 0])
        perf = perf_counter

        def timed(cycle):
            t0 = perf()
            try:
                return fn(cycle)
            finally:
                cell[0] += perf() - t0
                cell[1] += 1

        return timed

    def wrap_tick_fn(self, fn: Callable[[], Any], path: str):
        """Time a tick-phase capture()/commit() (no-arg) for *path*."""
        cell = self._tick.setdefault(path, [0.0, 0])
        perf = perf_counter

        def timed():
            t0 = perf()
            try:
                return fn()
            finally:
                cell[0] += perf() - t0
                cell[1] += 1

        # Diagnostics (Simulator.fusion_blockers) recover the owning
        # component from bound tick methods; keep that working when the
        # list holds timing wrappers instead.
        bound = getattr(fn, "__self__", None)
        if bound is not None:
            timed.__self__ = bound
        return timed

    # ------------------------------------------------------------------
    # engine / simulator instrumentation (instance-attribute shadowing,
    # never observers)
    # ------------------------------------------------------------------
    def instrument_engine(self, engine) -> None:
        """Wrap ``engine.settle`` with phase timing + scheduling counters.

        The wrapper is an *instance* attribute shadowing the class
        method, so a detach simply rebuilds the engine and the shadow is
        gone with it.  Reads the engines' private scheduling state to
        size the dirty seed — the profiler lives in-tree and tracks
        those structures.
        """
        self.engine_name = engine.name
        self._regions = [
            dict(region) for region in getattr(engine, "regions", ())
        ]
        name = engine.name
        if name == "compiled":
            stale, dirty = engine._stale, engine._dirty
            volatile = frozenset(engine._volatile)

            def seed_size() -> int:
                return len(stale | dirty | volatile)

        elif name == "event":
            def seed_size() -> int:
                return sum(
                    1
                    for d, s, v in zip(
                        engine._dirty, engine._stale, engine._volatile
                    )
                    if d or s or v
                )

        else:  # naive: every component, every settle
            n = len(engine._components)

            def seed_size() -> int:
                return n

        orig = type(engine).settle
        phase = self._phase["settle"]
        perf = perf_counter

        def timed_settle(cycle: int) -> int:
            seeded = seed_size()
            self.dirty_seeded += seeded
            if seeded > self.dirty_max:
                self.dirty_max = seeded
            t0 = perf()
            try:
                iterations = orig(engine, cycle)
            finally:
                phase[0] += perf() - t0
                phase[1] += 1
            self.settle_iterations += iterations
            return iterations

        engine.settle = timed_settle

    def instrument_sim(self, sim) -> None:
        """Shadow ``sim._tick`` / ``sim._fuse_quiescent`` with timed calls."""
        cls = type(sim)
        orig_tick = cls._tick
        orig_fuse = cls._fuse_quiescent
        tick_phase = self._phase["tick"]
        fused_phase = self._phase["fused"]
        perf = perf_counter

        def timed_tick() -> None:
            t0 = perf()
            try:
                orig_tick(sim)
            finally:
                tick_phase[0] += perf() - t0
                tick_phase[1] += 1
            self.cycles_ticked += 1

        def timed_fuse(budget: int) -> int:
            t0 = perf()
            fused = orig_fuse(sim, budget)
            if fused:
                fused_phase[0] += perf() - t0
                fused_phase[1] += 1
                self.cycles_fused += fused
                self.fused_batches += 1
            return fused

        sim.__dict__["_tick"] = timed_tick
        sim.__dict__["_fuse_quiescent"] = timed_fuse

    def release_sim(self, sim) -> None:
        """Remove the instance-attribute shadows placed by instrument_sim."""
        sim.__dict__.pop("_tick", None)
        sim.__dict__.pop("_fuse_quiescent", None)

    # ------------------------------------------------------------------
    # extra data points
    # ------------------------------------------------------------------
    def note_ensemble(self, width: int, live: int) -> None:
        """Record one lockstep batch: *live* of *width* lanes finished."""
        ens = self._ensemble
        ens["batches"] += 1
        ens["lanes"] += int(width)
        ens["lanes_live"] += int(live)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self, top: int | None = None) -> dict:
        """JSON-safe summary of everything accumulated so far.

        ``top`` caps the component hot-list length (None = all), sorted
        by total attributed time descending.
        """
        total_cycles = self.cycles_ticked + self.cycles_fused
        components = []
        for path in sorted(set(self._comb) | set(self._tick)):
            comb = self._comb.get(path, (0.0, 0))
            tick = self._tick.get(path, (0.0, 0))
            components.append(
                {
                    "path": path,
                    "settle_s": round(comb[0], 6),
                    "settle_calls": comb[1],
                    "tick_s": round(tick[0], 6),
                    "tick_calls": tick[1],
                    "total_s": round(comb[0] + tick[0], 6),
                }
            )
        components.sort(key=lambda row: (-row["total_s"], row["path"]))
        if top is not None:
            components = components[:top]
        regions = []
        for region in self._regions:
            members = region.get("members", ())
            time_s = sum(self._comb.get(p, (0.0, 0))[0] for p in members)
            calls = sum(self._comb.get(p, (0.0, 0))[1] for p in members)
            regions.append(
                {
                    "kind": region.get("kind"),
                    "size": len(members),
                    "members": list(members),
                    "settle_s": round(time_s, 6),
                    "settle_calls": calls,
                }
            )
        settle_calls = self._phase["settle"][1]
        ens = self._ensemble
        report = {
            "engine": self.engine_name,
            "cycles": {
                "total": total_cycles,
                "ticked": self.cycles_ticked,
                "fused": self.cycles_fused,
                "fused_batches": self.fused_batches,
                "fusion_utilization": (
                    round(self.cycles_fused / total_cycles, 6)
                    if total_cycles
                    else 0.0
                ),
            },
            "phases": {
                name: {"time_s": round(cell[0], 6), "calls": cell[1]}
                for name, cell in self._phase.items()
            },
            "settle": {
                "calls": settle_calls,
                "iterations": self.settle_iterations,
                "mean_iterations": (
                    round(self.settle_iterations / settle_calls, 3)
                    if settle_calls
                    else 0.0
                ),
                "dirty_seeded": self.dirty_seeded,
                "mean_dirty": (
                    round(self.dirty_seeded / settle_calls, 3)
                    if settle_calls
                    else 0.0
                ),
                "max_dirty": self.dirty_max,
            },
            "components": components,
            "regions": regions,
        }
        if ens["batches"]:
            report["ensemble"] = {
                "batches": ens["batches"],
                "lanes": ens["lanes"],
                "lanes_live": ens["lanes_live"],
                "occupancy": round(ens["lanes_live"] / ens["lanes"], 6)
                if ens["lanes"]
                else 0.0,
            }
        return report


class ProfileSession:
    """Context manager: attach a profiler on enter, detach on exit.

    Returned by :meth:`Simulator.profile`.  The profiler object stays
    usable after exit (``session.profiler.report()``), and the simulator
    leaves the context running the exact unprofiled fast path.
    """

    def __init__(self, sim, profiler: KernelProfiler | None = None):
        self.sim = sim
        self.profiler = profiler if profiler is not None else KernelProfiler()

    def __enter__(self) -> KernelProfiler:
        self.sim.attach_profiler(self.profiler)
        return self.profiler

    def __exit__(self, exc_type, exc, tb) -> None:
        self.sim.detach_profiler()
