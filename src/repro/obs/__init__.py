"""Unified observability layer: profiler, tracing, metrics.

Stdlib-only.  Three independent pieces sharing one design rule — zero
cost when off, no behavioural impact when on:

``repro.obs.profile``
    :class:`KernelProfiler` — per-component / per-region / per-phase
    wall-time attribution for a :class:`~repro.kernel.simulator.Simulator`.
    Attaches by recompiling the engine with timing wrappers (never by
    registering an observer, so settle+tick fusion stays enabled) and
    detaches by recompiling them back out.

``repro.obs.trace``
    :class:`Tracer` / :class:`Span` — hierarchical spans
    (job -> unit -> scenario -> build/simulate/metrics) with ids and
    monotonic-clock durations, serialized as JSONL and merged across
    worker processes.

``repro.obs.metrics``
    :class:`MetricsRegistry` with counters / gauges / histograms,
    rendered in Prometheus text exposition format (0.0.4).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import KernelProfiler, ProfileSession
from repro.obs.trace import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "NullTracer",
    "ProfileSession",
    "Span",
    "Tracer",
]
