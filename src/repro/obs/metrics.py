"""Process-local metrics registry with Prometheus text exposition.

Stdlib-only subset of the Prometheus client model: counters, gauges and
histograms, optionally labelled, rendered in text exposition format
0.0.4 (``text/plain; version=0.0.4``).  The registry is thread-safe —
the campaign dispatcher, the worker-pool accounting loop and HTTP
scrape threads all touch it concurrently.

Design notes:

- Metric mutation is a dict update under one registry lock; there is no
  per-metric allocation on the hot path after the first observation of
  a label set.
- Histograms use fixed cumulative buckets chosen at declaration time
  (``le`` upper bounds); ``+Inf``, ``_sum`` and ``_count`` series are
  derived at render time.
- Names and label values are validated/escaped at render, never on the
  hot path.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram buckets (seconds) — tuned for job/scenario
#: latencies that range from ~1 ms dedup hits to multi-second cold
#: campaign builds.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_pairs(labelnames: tuple[str, ...], labels: dict) -> tuple:
    """Order ``labels`` by the metric's declared label names."""
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared {list(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Common shape: name, help text, declared label names."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...] = (),
        lock: threading.Lock | None = None,
    ) -> None:
        if lock is None:  # standalone use, outside a registry
            lock = threading.Lock()
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        # label-value tuple -> float (counter/gauge) or [bucket_counts, sum, n]
        self._values: dict[tuple, object] = {}

    def _series_suffix(self, key: tuple, extra: tuple = ()) -> str:
        pairs = list(zip(self.labelnames, key)) + list(extra)
        if not pairs:
            return ""
        body = ",".join(
            f'{name}="{_escape_label_value(value)}"' for name, value in pairs
        )
        return "{" + body + "}"

    def render(self) -> list[str]:
        raise NotImplementedError

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            return float(self._values.get(key, 0.0))

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{self._series_suffix(key)} {_format_value(value)}"
            )
        return lines


class Gauge(_Metric):
    """Point-in-time value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            return float(self._values.get(key, 0.0))

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{self._series_suffix(key)} {_format_value(value)}"
            )
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram with ``_sum`` and ``_count`` series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...] = (),
        lock: threading.Lock | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = _label_pairs(self.labelnames, labels)
        value = float(value)
        with self._lock:
            cell = self._values.get(key)
            if cell is None:
                cell = [[0] * len(self.buckets), 0.0, 0]
                self._values[key] = cell
            counts, total, n = cell
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            cell[1] = total + value
            cell[2] = n + 1

    def count(self, **labels) -> int:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            cell = self._values.get(key)
            return int(cell[2]) if cell else 0

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(
                (key, (list(cell[0]), cell[1], cell[2]))
                for key, cell in self._values.items()
            )
        if not items and not self.labelnames:
            items = [((), ([0] * len(self.buckets), 0.0, 0))]
        for key, (counts, total, n) in items:
            for bound, count in zip(self.buckets, counts):
                suffix = self._series_suffix(key, (("le", _format_value(bound)),))
                lines.append(f"{self.name}_bucket{suffix} {count}")
            inf_suffix = self._series_suffix(key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{inf_suffix} {n}")
            lines.append(
                f"{self.name}_sum{self._series_suffix(key)} {_format_value(total)}"
            )
            lines.append(f"{self.name}_count{self._series_suffix(key)} {n}")
        return lines


class MetricsRegistry:
    """Ordered collection of metrics with a shared lock and one renderer."""

    #: Content-Type for HTTP responses carrying :meth:`render` output.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered "
                        f"as {existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str, labelnames=()) -> Counter:
        return self._register(
            Counter(name, help_text, tuple(labelnames), threading.Lock())
        )

    def gauge(self, name: str, help_text: str, labelnames=()) -> Gauge:
        return self._register(
            Gauge(name, help_text, tuple(labelnames), threading.Lock())
        )

    def histogram(
        self, name: str, help_text: str, labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(
            Histogram(
                name, help_text, tuple(labelnames), threading.Lock(), tuple(buckets)
            )
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """Render every metric in registration order as exposition text."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
