"""The multithreaded pipelined elastic processor (paper §V-B).

Five stages connected into an elastic ring, with an MEB in place of every
pipeline register::

    ┌─► PC/WB unit ──► MEB ──► Fetch(IMem, VL) ──► MEB ──► Decode+RegRead
    │                                                           │
    │                                                          MEB
    │                                                           │
    └── Mem(DMem, VL) ◄── MEB ◄──────────────────── Execute(ALU, VL)

* every thread owns a private program counter and register-file bank;
* the instruction memory, data memory and execution unit are
  variable-latency units (paper: "considered variable latency units");
* one instruction per thread is in flight at a time (DESIGN.md §5), so
  threads never see their own hazards while the MEBs keep the shared
  stages busy with *other* threads — multithreading hiding latency
  exactly as §I describes.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.apps.processor import isa
from repro.apps.processor.assembler import assemble
from repro.apps.processor.memory import DataMemoryArray, InstructionMemory
from repro.apps.processor.regfile import RegisterFileArray
from repro.apps.processor.stages import (
    DecodedToken,
    ExecutedToken,
    FetchedToken,
    MemToken,
    MTSequencedUnit,
    PCToken,
)
from repro.core import (
    FullMEB,
    GrantPolicy,
    MTChannel,
    MTContextFunction,
    MTMonitor,
    MTVariableLatencyUnit,
    ReducedMEB,
    RoundRobinArbiter,
)
from repro.cost.model import (
    adder_luts,
    comparator_luts,
    logic_unit_luts,
    mux_tree_luts,
    shifter_luts,
)
from repro.core.mtchannel import one_hot_thread
from repro.kernel import Component, Simulator, WatchedPredicate
from repro.kernel.errors import SimulationError
from repro.kernel.slots import SeqPlan
from repro.kernel.values import X, as_bool, bools, same_value

MEB_KINDS = {"full": FullMEB, "reduced": ReducedMEB}

#: Ops that write a destination register.
_WRITES_RD = frozenset(
    op for op, fmt in isa.FORMATS.items()
    if fmt is isa.Format.R or (fmt is isa.Format.I and op is not isa.Op.SW)
)


# ----------------------------------------------------------------------
# per-opcode execute specialization
# ----------------------------------------------------------------------
# The interpreter below (`_execute_interp`) walks an if/elif chain and
# calls `isa.alu` — a second dispatch — on every token.  The opcode is
# static per instruction, so both dispatches can be folded out: generate
# one straight-line function per opcode (the same codegen trick as the
# MD5 datapath's `compiled_round_steps`) and route execute through a
# single dict lookup.  The interpreter stays as the reference semantics
# the generated table is differential-tested against.

_ALU_EXPRS = {
    isa.Op.ADD: "(_a + _b) & M",
    isa.Op.ADDI: "(_a + _b) & M",
    isa.Op.SUB: "(_a - _b) & M",
    isa.Op.AND: "_a & _b",
    isa.Op.ANDI: "_a & _b",
    isa.Op.OR: "_a | _b",
    isa.Op.ORI: "_a | _b",
    isa.Op.XOR: "_a ^ _b",
    isa.Op.XORI: "_a ^ _b",
    isa.Op.SLL: "(_a << (_b & 31)) & M",
    isa.Op.SLLI: "(_a << (_b & 31)) & M",
    isa.Op.SRL: "_a >> (_b & 31)",
    isa.Op.SRLI: "_a >> (_b & 31)",
    isa.Op.SRA: "(_signed32(_a) >> (_b & 31)) & M if _b & 31 else _a",
    isa.Op.SRAI: "(_signed32(_a) >> (_b & 31)) & M if _b & 31 else _a",
    isa.Op.SLT: "1 if _signed32(_a) < _signed32(_b) else 0",
    isa.Op.SLTI: "1 if _signed32(_a) < _signed32(_b) else 0",
    isa.Op.SLTU: "1 if _a < _b else 0",
    isa.Op.MUL: "(_a * _b) & M",
    isa.Op.LUI: "(_b << 16) & M",
}

_BRANCH_CONDS = {
    isa.Op.BEQ: "(token.a & M) == (token.b & M)",
    isa.Op.BNE: "(token.a & M) != (token.b & M)",
    isa.Op.BLT: "_signed32(token.a) < _signed32(token.b)",
    isa.Op.BGE: "_signed32(token.a) >= _signed32(token.b)",
}


def _compile_execute_table() -> dict[isa.Op, Any]:
    """Generate the per-opcode ``fn(token) -> ExecutedToken`` table."""
    table: dict[isa.Op, Any] = {}
    for op in isa.Op:
        value, next_pc, mem_addr, halt = "0", "pc + 4", "None", "False"
        prelude: list[str] = []
        if op in _ALU_EXPRS:
            prelude = ["    _a = token.a & M", "    _b = token.b & M"]
            value = _ALU_EXPRS[op]
        elif op in _BRANCH_CONDS:
            next_pc = (
                f"pc + 4 + instr.imm * 4 if {_BRANCH_CONDS[op]} else pc + 4"
            )
        elif op is isa.Op.JAL:
            value, next_pc = "pc + 4", "instr.imm * 4"
        elif op is isa.Op.JALR:
            value = "pc + 4"
            next_pc = "(token.a + instr.imm) & ~3 & M"
        elif op in (isa.Op.LW, isa.Op.SW):
            mem_addr = "(token.a + instr.imm) & M"
        elif op is isa.Op.HALT:
            halt = "True"
        else:  # NOP
            pass
        name = f"_exec_{op.name.lower()}"
        lines = [
            f"def {name}(token):",
            "    instr = token.instr",
            "    pc = token.pc",
            *prelude,
            f"    return ExecutedToken(pc, instr, {value}, {next_pc}, "
            f"{mem_addr}, token.store_value, {halt})",
        ]
        ns: dict[str, Any] = {
            "ExecutedToken": ExecutedToken,
            "M": isa.MASK32,
            "_signed32": isa._signed32,
        }
        exec("\n".join(lines), ns)  # noqa: S102 - trusted codegen
        table[op] = ns[name]
    return table


_EXEC_FNS = _compile_execute_table()


def _execute_interp(token: DecodedToken) -> ExecutedToken:
    """Reference execute semantics (the pre-codegen interpreter)."""
    instr = token.instr
    op = instr.op
    pc = token.pc
    next_pc = pc + 4
    value = 0
    mem_addr: int | None = None
    halt = False
    if op is isa.Op.HALT:
        halt = True
    elif op is isa.Op.NOP:
        pass
    elif isa.is_branch(op):
        if isa.branch_taken(op, token.a, token.b):
            next_pc = pc + 4 + instr.imm * 4
    elif op is isa.Op.JAL:
        value = pc + 4
        next_pc = instr.imm * 4
    elif op is isa.Op.JALR:
        value = pc + 4
        next_pc = (token.a + instr.imm) & ~3 & isa.MASK32
    elif isa.is_mem(op):
        mem_addr = (token.a + instr.imm) & isa.MASK32
    else:
        value = isa.alu(op, token.a, token.b)
    return ExecutedToken(pc, instr, value, next_pc, mem_addr,
                         token.store_value, halt)


def alu_luts() -> int:
    """LE estimate for the shared execute datapath."""
    return (
        adder_luts(32)            # add/sub (shared adder)
        + logic_unit_luts(32)     # and/or/xor
        + shifter_luts(32)        # barrel shifter
        + comparator_luts(32)     # slt/branch compare
        + mux_tree_luts(6, 32)    # result selection
        + adder_luts(32)          # next-pc / address adder
    )


def decode_luts() -> int:
    """LE estimate for the decoder (control decode + immediate forms)."""
    return 96 + mux_tree_luts(2, 32)


class PCUnit(Component):
    """Writeback stage fused with the per-thread program counters.

    Holds one pending PC per live thread, dispatches fetch requests
    through its arbiter (this is the "private program counter" file of
    the paper), and retires incoming :class:`MemToken` results: register
    writeback, next-PC update, or thread halt.

    The registered state is slot-backed, laid out columnar as
    ``[pending×S][alive×S][retired×S]`` in ``_sstore`` starting at
    ``_sq`` — a private list until :meth:`compile_seq` re-homes the
    block into the design-wide :class:`~repro.kernel.slots.SeqStore`.
    The ``_pending``/``_alive``/``retired`` properties view the same
    cells.
    """

    def __init__(
        self,
        name: str,
        inp: MTChannel,
        out: MTChannel,
        regfile: RegisterFileArray,
        policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.threads = out.threads
        self.inp = inp
        self.out = out
        self.regfile = regfile
        self.policy = policy
        self.arbiter = RoundRobinArbiter(self.threads, rotate_on_stall=True)
        inp.connect_consumer(self)
        out.connect_producer(self)
        # Fetch dispatch is masked by downstream ready; retirement is
        # always accepted, so the input handshakes are not read.
        self.declare_reads(out.ready)
        self._start_pcs: dict[int, int] = {}
        self._sstore: list[Any] = (
            [None] * self.threads + [False] * self.threads
            + [0] * self.threads
        )
        self._sq = 0
        self._grant: int | None = None
        self._next: tuple[list[int | None], list[bool], list[int]] | None = None

    # -- slot-backed state views ---------------------------------------
    @property
    def _pending(self) -> list[int | None]:
        b = self._sq
        return self._sstore[b:b + self.threads]

    @_pending.setter
    def _pending(self, pending: list[int | None]) -> None:
        b = self._sq
        self._sstore[b:b + self.threads] = pending

    @property
    def _alive(self) -> list[bool]:
        b = self._sq + self.threads
        return self._sstore[b:b + self.threads]

    @_alive.setter
    def _alive(self, alive: list[bool]) -> None:
        b = self._sq + self.threads
        self._sstore[b:b + self.threads] = alive

    @property
    def retired(self) -> list[int]:
        """Per-thread retired-instruction counters."""
        b = self._sq + 2 * self.threads
        return self._sstore[b:b + self.threads]

    @retired.setter
    def retired(self, retired: list[int]) -> None:
        b = self._sq + 2 * self.threads
        self._sstore[b:b + self.threads] = retired

    # ------------------------------------------------------------------
    def set_start(self, thread: int, pc: int) -> None:
        """Arm *thread* to begin execution at byte address *pc*."""
        self._start_pcs[thread] = pc
        b = self._sq
        self._sstore[b + thread] = pc
        self._sstore[b + self.threads + thread] = True
        self.invalidate()

    @property
    def all_halted(self) -> bool:
        return not any(self._alive)

    def alive(self, thread: int) -> bool:
        return self._sstore[self._sq + self.threads + thread]

    # ------------------------------------------------------------------
    def combinational(self) -> None:
        requests_base = [pc is not None for pc in self._pending]
        readies = [as_bool(sig.value) for sig in self.out.ready]
        requests = self.policy.requests(requests_base, readies)
        grant = self.arbiter.grant(requests)
        self._grant = grant
        for t in range(self.threads):
            self.out.valid[t].set(grant == t)
            self.inp.ready[t].set(True)  # retirement always accepted
        if grant is not None:
            self.out.data.set(PCToken(self._pending[grant]))
        else:
            self.out.data.set(X)

    def compile_comb(self, store):
        """Slot-compiled :meth:`combinational`: one slice read for the S
        downstream readies, ``grant_fast`` index probes, and one slice
        compare-and-assign each for the S ``valid`` and S (constant-true)
        ``ready`` outputs.
        """
        if type(self).combinational is not PCUnit.combinational:
            return None
        if type(self.arbiter).grant is not RoundRobinArbiter.grant:
            return None
        out_valid = store.range_of(self.out.valid)
        out_ready = store.range_of(self.out.ready)
        in_ready = store.range_of(self.inp.ready)
        data_slot = store.slot_or_none(self.out.data)
        if None in (out_valid, out_ready, in_ready, data_slot):
            return None
        values = store.values
        dirty = store.dirty
        valid_readers = store.readers_of(self.out.valid)
        ready_readers = store.readers_of(self.inp.ready)
        data_readers = store.readers_of((self.out.data,))
        ovb, ove = out_valid
        orb, ore = out_ready
        irb, ire = in_ready
        unmasked = self.policy is GrantPolicy.UNMASKED
        masked_only = self.policy is GrantPolicy.MASKED
        grant_fast = self.arbiter.grant_fast
        falses = [False] * self.threads
        trues = [True] * self.threads
        unknown = X
        # Compile-time binding of the (possibly re-homed) state block;
        # rebuild()/reset() recompiles, so the binding stays fresh.
        sstore = self._sstore
        sq = self._sq
        sqe = sq + self.threads

        def step() -> bool:
            pending = sstore[sq:sqe]
            readies = bools(values[orb:ore])
            if unmasked:
                requests = [pc is not None for pc in pending]
            else:
                requests = [
                    pc is not None and r for pc, r in zip(pending, readies)
                ]
                if not masked_only and True not in requests:
                    requests = [pc is not None for pc in pending]
            grant = grant_fast(requests)
            self._grant = grant
            if grant is None:
                new_valid = falses
                new_data = unknown
            else:
                new_valid = falses[:]
                new_valid[grant] = True
                new_data = PCToken(pending[grant])
            changed = False
            if values[ovb:ove] != new_valid:
                values[ovb:ove] = new_valid
                if valid_readers:
                    dirty.update(valid_readers)
                changed = True
            if values[irb:ire] != trues:
                values[irb:ire] = trues[:]
                if ready_readers:
                    dirty.update(ready_readers)
                changed = True
            old = values[data_slot]
            if old is not new_data and not same_value(old, new_data):
                values[data_slot] = new_data
                if data_readers:
                    dirty.update(data_readers)
                changed = True
            return changed

        return step

    def capture(self) -> None:
        pending = list(self._pending)
        alive = list(self._alive)
        retired = list(self.retired)
        transferred = False
        g = self._grant
        if g is not None and as_bool(self.out.ready[g].value):
            transferred = True
            pending[g] = None  # token dispatched into the ring
        t = self.inp.transfer_thread()
        if t is not None:
            token: MemToken = self.inp.data.value
            instr = token.instr
            if instr.op in _WRITES_RD:
                self.regfile.write(t, instr.rd, token.value)
            retired[t] += 1
            if token.halt:
                alive[t] = False
                pending[t] = None
            else:
                if pending[t] is not None:
                    raise SimulationError(
                        f"{self.path}: thread {t} retired while a fetch "
                        "was already pending (duplicate token)"
                    )
                pending[t] = token.next_pc
        self.arbiter.note(g, transferred)
        self._next = (pending, alive, retired)

    def commit(self) -> bool:
        changed = self.arbiter.commit()
        if self._next is not None:
            changed = (
                changed
                or self._pending != self._next[0]
                or self._alive != self._next[1]
            )
            self._pending, self._alive, self.retired = self._next
            self._next = None
        return changed

    def compile_seq(self, seq):
        """Columnar tick plan: pending/alive/retired re-homed into one
        ``[pending×S][alive×S][retired×S]`` block, dispatch and
        retirement detected with slot-level probes, and the whole
        capture/commit delta-gated — a fully halted (or token-less)
        PC/WB unit costs nothing per cycle.
        """
        cls = type(self)
        if cls.capture is not PCUnit.capture or cls.commit is not PCUnit.commit:
            return None
        store = seq.store
        out_ready = store.range_of(self.out.ready)
        in_valid = store.range_of(self.inp.valid)
        in_ready = store.range_of(self.inp.ready)
        in_data = store.slot_or_none(self.inp.data)
        if None in (out_ready, in_valid, in_ready, in_data):
            return None
        threads = self.threads
        sq = seq.alloc(self._sstore[self._sq:self._sq + 3 * threads])
        self._sstore = seq.values
        self._sq = sq
        svalues = seq.values
        ab = sq + threads           # alive base
        rb = ab + threads           # retired base
        re_ = rb + threads
        values = store.values
        orb = out_ready[0]
        ivb, ive = in_valid
        irb = in_ready[0]
        arb = self.arbiter
        regfile_write = self.regfile.write
        writes_rd = _WRITES_RD
        inp_path = self.inp.path
        path = self.path

        def capture(cycle) -> None:
            g = self._grant
            transferred = g is not None and as_bool(values[orb + g])
            t = one_hot_thread(bools(values[ivb:ive]), inp_path)
            if t is not None and not as_bool(values[irb + t]):
                t = None
            if not transferred and t is None:
                # Idle cycle: no dispatch, no retirement.
                self._next = None
                arb.note(g, False)
                return
            pending = svalues[sq:ab]
            alive = svalues[ab:rb]
            retired = svalues[rb:re_]
            if transferred:
                pending[g] = None  # token dispatched into the ring
            if t is not None:
                token: MemToken = values[in_data]
                instr = token.instr
                if instr.op in writes_rd:
                    regfile_write(t, instr.rd, token.value)
                retired[t] += 1
                if token.halt:
                    alive[t] = False
                    pending[t] = None
                else:
                    if pending[t] is not None:
                        raise SimulationError(
                            f"{path}: thread {t} retired while a fetch "
                            "was already pending (duplicate token)"
                        )
                    pending[t] = token.next_pc
            arb.note(g, transferred)
            self._next = (pending, alive, retired)

        def commit() -> bool:
            changed = arb.commit()
            nxt = self._next
            if nxt is not None:
                changed = (
                    changed
                    or svalues[sq:ab] != nxt[0]
                    or svalues[ab:rb] != nxt[1]
                )
                svalues[sq:ab] = nxt[0]
                svalues[ab:rb] = nxt[1]
                svalues[rb:re_] = nxt[2]
                self._next = None
            return changed

        watch = (out_ready, in_valid, in_ready, (in_data, in_data + 1))
        return SeqPlan(self, capture, commit, watch,
                       state=((sq, re_),))

    def reset(self) -> None:
        self.arbiter.reset()
        b = self._sq
        s = self.threads
        pending: list[int | None] = [None] * s
        alive = [False] * s
        for t, pc in self._start_pcs.items():
            pending[t] = pc
            alive[t] = True
        self._sstore[b:b + s] = pending
        self._sstore[b + s:b + 2 * s] = alive
        self._sstore[b + 2 * s:b + 3 * s] = [0] * s
        self._grant = None
        self._next = None

    def area_items(self) -> list[tuple[str, int, int]]:
        s = self.threads
        items: list[tuple[str, int, int]] = [
            ("ff", s, 32),        # private program counters
            ("ff", s, 1),         # alive flags
            ("mux2", s - 1, 32),  # pc selection tree
            ("lut", 2 * s, 1),
        ]
        items.extend(self.arbiter.area_items())
        return items


@dataclasses.dataclass
class RunStats:
    """Execution summary returned by :meth:`Processor.run`."""

    cycles: int
    retired: list[int]

    @property
    def total_retired(self) -> int:
        return sum(self.retired)

    @property
    def ipc(self) -> float:
        return self.total_retired / self.cycles if self.cycles else 0.0


class Processor:
    """Assembled multithreaded elastic processor."""

    def __init__(
        self,
        threads: int = 8,
        meb: str = "reduced",
        policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
        imem_latency: Any = 1,
        dmem_latency: int = 2,
        mul_latency: int = 3,
        monitor: bool = False,
        alu_in_dsp: bool = True,
        engine: str | None = None,
    ):
        if meb not in MEB_KINDS:
            raise ValueError(f"meb must be one of {sorted(MEB_KINDS)}")
        self.threads = threads
        self.meb_kind = meb
        self.imem = InstructionMemory("imem")
        self.dmem = DataMemoryArray("dmem", threads)
        self.regfile = RegisterFileArray("regfile", threads)
        self._dmem_latency = dmem_latency
        self._mul_latency = mul_latency

        ch = lambda name, width: MTChannel(name, threads, width)
        self.c_pc = ch("c_pc", PCToken.WIDTH)
        self.c_if = ch("c_if", PCToken.WIDTH)
        self.c_fo = ch("c_fo", FetchedToken.WIDTH)
        self.c_id = ch("c_id", FetchedToken.WIDTH)
        self.c_do = ch("c_do", DecodedToken.WIDTH)
        self.c_ex = ch("c_ex", DecodedToken.WIDTH)
        self.c_eo = ch("c_eo", ExecutedToken.WIDTH)
        self.c_mm = ch("c_mm", ExecutedToken.WIDTH)
        self.c_mo = ch("c_mo", MemToken.WIDTH)

        meb_cls = MEB_KINDS[meb]
        self.pc_unit = PCUnit("pc_wb", self.c_mo, self.c_pc, self.regfile,
                              policy=policy)
        self.meb_if = meb_cls("meb_if", self.c_pc, self.c_if, policy=policy)
        self.fetch = MTVariableLatencyUnit(
            "fetch", self.c_if, self.c_fo,
            fn=lambda tok: FetchedToken(tok.pc, self.imem.fetch(tok.pc)),
            latency=imem_latency,
        )
        self.meb_id = meb_cls("meb_id", self.c_fo, self.c_id, policy=policy)
        # pure=True although _decode reads the register file: one token
        # per thread circulates the ring, so thread t's bank is only
        # written while t's token sits in the PC/WB stage — never while
        # a FetchedToken of t is parked at decode's input.  By the time
        # t's next token reaches decode, the input handshake signals
        # have changed and the engine re-evaluates.  Out-of-band regfile
        # writes mid-run must call decode.invalidate() (the standard
        # kernel rule for mutated closure context).
        self.decode = MTContextFunction(
            "decode", self.c_id, self.c_do, fn=self._decode,
            area_luts=decode_luts(), pure=True,
        )
        self.meb_ex = meb_cls("meb_ex", self.c_do, self.c_ex, policy=policy)
        # The reference iDEA processor [10] maps its ALU onto a DSP block,
        # which the paper's Table I excludes from the LE counts ("the DSP
        # blocks are not included"); alu_in_dsp=True mirrors that
        # accounting, alu_in_dsp=False folds the ALU into the LE total.
        self.alu_in_dsp = alu_in_dsp
        self.execute = MTVariableLatencyUnit(
            "execute", self.c_ex, self.c_eo, fn=self._execute,
            latency=self._exec_latency,
            area_luts=0 if alu_in_dsp else alu_luts(),
        )
        self.meb_mem = meb_cls("meb_mem", self.c_eo, self.c_mm, policy=policy)
        self.mem = MTSequencedUnit(
            "mem", self.c_mm, self.c_mo, fn=self._mem_access,
            latency=self._mem_latency,
        )

        parts: list[Component] = [
            self.c_pc, self.c_if, self.c_fo, self.c_id, self.c_do, self.c_ex,
            self.c_eo, self.c_mm, self.c_mo, self.imem, self.dmem,
            self.regfile, self.pc_unit, self.meb_if, self.fetch, self.meb_id,
            self.decode, self.meb_ex, self.execute, self.meb_mem, self.mem,
        ]
        self.monitors: dict[str, MTMonitor] = {}
        if monitor:
            for chan in (self.c_pc, self.c_do, self.c_mo):
                mon = MTMonitor(f"mon_{chan.name}", chan)
                self.monitors[chan.name] = mon
                parts.append(mon)
        self.sim = Simulator(max_settle_iterations=128, engine=engine)
        for part in parts:
            self.sim.add(part)
        self.sim.reset()

    # ------------------------------------------------------------------
    # stage functions
    # ------------------------------------------------------------------
    def _decode(self, token: FetchedToken, thread: int) -> DecodedToken:
        instr = isa.decode(token.word)
        a = self.regfile.read(thread, instr.rs1)
        if instr.format is isa.Format.I:
            b = instr.imm
        else:
            b = self.regfile.read(thread, instr.rs2)
        store_value = (
            self.regfile.read(thread, instr.rd)
            if instr.op is isa.Op.SW
            else 0
        )
        return DecodedToken(token.pc, instr, a, b, store_value)

    @staticmethod
    def _execute(token: DecodedToken) -> ExecutedToken:
        # One dict lookup to the opcode's straight-line specialization
        # (see _compile_execute_table); semantics pinned to
        # _execute_interp by a differential test over the full ISA.
        return _EXEC_FNS[token.instr.op](token)

    def _exec_latency(self, token: DecodedToken, _k: int) -> int:
        return self._mul_latency if token.instr.op is isa.Op.MUL else 1

    def _mem_access(self, token: ExecutedToken, thread: int) -> MemToken:
        value = token.value
        if token.instr.op is isa.Op.LW:
            value = self.dmem.read(thread, token.mem_addr)
        elif token.instr.op is isa.Op.SW:
            self.dmem.write(thread, token.mem_addr, token.store_value)
        return MemToken(token.pc, token.instr, value, token.next_pc,
                        token.halt)

    def _mem_latency(self, token: ExecutedToken, _k: int) -> int:
        return self._dmem_latency if isa.is_mem(token.instr.op) else 1

    # ------------------------------------------------------------------
    # program loading and execution
    # ------------------------------------------------------------------
    def load_program(self, thread: int, source: str | list[int],
                     base: int | None = None) -> int:
        """Assemble/load a program and arm the thread's PC at its base.

        Without an explicit ``base``, each thread gets a 4 KiB code
        segment at ``thread * 0x1000``.  Returns the base address.
        """
        if base is None:
            base = thread * 0x1000
        words = assemble(source, base=base) if isinstance(source, str) else source
        self.imem.load(words, base=base)
        self.pc_unit.set_start(thread, base)
        return base

    def run(self, max_cycles: int = 50_000) -> RunStats:
        """Run until every armed thread has halted.

        ``all_halted`` is pure transfer-derived state (alive flags only
        change when a retirement transfers on ``c_mo``), so the
        predicate declares its watches and the engine may fuse
        quiescent stretches instead of stepping them one by one.
        """
        pc_unit = self.pc_unit
        done = WatchedPredicate(
            lambda _s: pc_unit.all_halted,
            watches=(*self.c_mo.valid, *self.c_mo.ready),
        )
        self.sim.run(until=done, max_cycles=max_cycles)
        return RunStats(cycles=self.sim.cycle, retired=list(self.pc_unit.retired))

    def run_cycles(self, cycles: int) -> RunStats:
        self.sim.run(cycles=cycles)
        return RunStats(cycles=self.sim.cycle, retired=list(self.pc_unit.retired))

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def reg(self, thread: int, index: int) -> int:
        return self.regfile.read(thread, index)

    def mem_word(self, thread: int, addr: int) -> int:
        return self.dmem.read(thread, addr)

    # ------------------------------------------------------------------
    # area inventory for Table I
    # ------------------------------------------------------------------
    def area_components(self) -> list[Component]:
        """LE-counted parts; memories/register file excluded (Table I)."""
        return [
            self.pc_unit, self.meb_if, self.fetch, self.meb_id, self.decode,
            self.meb_ex, self.execute, self.meb_mem, self.mem,
            self.imem, self.dmem, self.regfile,
        ]

    def meb_components(self) -> list[Component]:
        return [self.meb_if, self.meb_id, self.meb_ex, self.meb_mem]
