"""Two-pass assembler for the processor ISA.

Syntax::

    ; comment                 # or '#'
    loop:                     ; label
        addi x1, x0, 10
        add  x3, x1, x2
        beq  x1, x0, done     ; label or numeric offset operand
        jal  x0, loop
    done:
        halt
        .word 0xDEADBEEF      ; raw data

Branch labels assemble to *word offsets* relative to the next pc
(pc-relative, like the hardware expects); ``jal`` labels assemble to
absolute word addresses.
"""

from __future__ import annotations

import re

from repro.apps.processor.isa import FORMATS, Format, Instruction, Op, encode

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_REG_RE = re.compile(r"^[xr](\d+)$", re.IGNORECASE)


class AssemblyError(Exception):
    """Raised with the offending line number and message."""

    def __init__(self, lineno: int, message: str):
        self.lineno = lineno
        super().__init__(f"line {lineno}: {message}")


def _parse_reg(tok: str, lineno: int) -> int:
    m = _REG_RE.match(tok)
    if not m:
        raise AssemblyError(lineno, f"expected register, got {tok!r}")
    reg = int(m.group(1))
    if reg >= 32:
        raise AssemblyError(lineno, f"register x{reg} out of range")
    return reg


def _parse_int(tok: str, lineno: int) -> int:
    try:
        return int(tok, 0)
    except ValueError as exc:
        raise AssemblyError(lineno, f"expected integer, got {tok!r}") from exc


def _tokenize(line: str) -> list[str]:
    line = re.split(r"[;#]", line, maxsplit=1)[0]
    return [t for t in re.split(r"[,\s]+", line.strip()) if t]


def assemble(text: str, base: int = 0) -> list[int]:
    """Assemble source text into a list of 32-bit words.

    ``base`` is the byte address of the first word (used for absolute
    jump-label resolution).
    """
    # Pass 1: label addresses.
    labels: dict[str, int] = {}
    records: list[tuple[int, list[str]]] = []  # (lineno, tokens)
    addr = base
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not stripped:
            continue
        while ":" in stripped:
            label, _colon, rest = stripped.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(lineno, f"bad label {label!r}")
            if label in labels:
                raise AssemblyError(lineno, f"duplicate label {label!r}")
            labels[label] = addr
            stripped = rest.strip()
        if not stripped:
            continue
        tokens = _tokenize(stripped)
        records.append((lineno, tokens))
        addr += 4

    # Pass 2: encode.
    words: list[int] = []
    addr = base
    for lineno, tokens in records:
        mnemonic = tokens[0].lower()
        args = tokens[1:]
        if mnemonic == ".word":
            if len(args) != 1:
                raise AssemblyError(lineno, ".word takes one value")
            words.append(_parse_int(args[0], lineno) & 0xFFFFFFFF)
            addr += 4
            continue
        try:
            op = Op[mnemonic.upper()]
        except KeyError as exc:
            raise AssemblyError(lineno, f"unknown mnemonic {mnemonic!r}") from exc
        instr = _encode_instruction(op, args, labels, addr, lineno)
        words.append(encode(instr))
        addr += 4
    return words


def _operand_value(tok: str, labels: dict[str, int], lineno: int,
                   pc_relative_to: int | None) -> int:
    """An immediate operand: integer literal or label."""
    if tok in labels:
        target = labels[tok]
        if pc_relative_to is not None:
            return (target - pc_relative_to) // 4
        return target // 4
    return _parse_int(tok, lineno)


def _encode_instruction(
    op: Op, args: list[str], labels: dict[str, int], addr: int, lineno: int
) -> Instruction:
    fmt = FORMATS[op]
    try:
        if fmt is Format.NONE:
            if args:
                raise AssemblyError(lineno, f"{op.name} takes no operands")
            return Instruction(op)
        if fmt is Format.R:
            if len(args) != 3:
                raise AssemblyError(lineno, f"{op.name} needs rd, rs1, rs2")
            return Instruction(
                op,
                rd=_parse_reg(args[0], lineno),
                rs1=_parse_reg(args[1], lineno),
                rs2=_parse_reg(args[2], lineno),
            )
        if fmt is Format.B:
            if len(args) != 3:
                raise AssemblyError(lineno, f"{op.name} needs rs1, rs2, target")
            return Instruction(
                op,
                rs1=_parse_reg(args[0], lineno),
                rs2=_parse_reg(args[1], lineno),
                imm=_operand_value(args[2], labels, lineno,
                                   pc_relative_to=addr + 4),
            )
        if op is Op.JAL:
            # jal rd, target — the target label resolves to an absolute
            # word address.
            if len(args) != 2:
                raise AssemblyError(lineno, "JAL needs rd, target")
            return Instruction(
                op,
                rd=_parse_reg(args[0], lineno),
                imm=_operand_value(args[1], labels, lineno,
                                   pc_relative_to=None),
            )
        # I-type
        if len(args) != 3:
            raise AssemblyError(lineno, f"{op.name} needs rd, rs1, imm")
        return Instruction(
            op,
            rd=_parse_reg(args[0], lineno),
            rs1=_parse_reg(args[1], lineno),
            imm=_operand_value(args[2], labels, lineno, pc_relative_to=None),
        )
    except ValueError as exc:
        raise AssemblyError(lineno, str(exc)) from exc


def disassemble(words: list[int]) -> list[str]:
    """Best-effort textual form of encoded words (for debugging dumps)."""
    from repro.apps.processor.isa import decode

    out = []
    for word in words:
        try:
            out.append(str(decode(word)))
        except ValueError:
            out.append(f".word {word:#010x}")
    return out
