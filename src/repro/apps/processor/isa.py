"""Instruction set of the multithreaded elastic processor (paper §V-B).

The paper builds on the iDEA soft processor's instruction set [10] — a
small in-order 32-bit RISC.  We define an ISA of the same class: 32
general registers (``x0`` hardwired to zero), ALU/shift/compare ops,
immediate forms, word load/store, conditional branches and jump-and-link,
plus ``HALT`` to retire a thread.

Encoding (32 bits)::

    R-type:  opcode[31:26] rd[25:21] rs1[20:16] rs2[15:11] zero[10:0]
    I-type:  opcode[31:26] rd[25:21] rs1[20:16] imm16[15:0]   (signed)
    B-type:  opcode[31:26] rs2[25:21] rs1[20:16] imm16[15:0]  (target/4)

Encode/decode are exact inverses (property-tested).
"""

from __future__ import annotations

import dataclasses
import enum

MASK32 = 0xFFFFFFFF
WORD = 4


class Format(enum.Enum):
    R = "R"
    I = "I"
    B = "B"
    NONE = "NONE"


class Op(enum.Enum):
    # R-type ALU
    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    SLL = 5
    SRL = 6
    SRA = 7
    SLT = 8
    SLTU = 9
    MUL = 10
    # I-type ALU
    ADDI = 16
    ANDI = 17
    ORI = 18
    XORI = 19
    SLTI = 20
    SLLI = 21
    SRLI = 22
    SRAI = 23
    LUI = 24
    # memory
    LW = 32
    SW = 33
    # control flow
    BEQ = 40
    BNE = 41
    BLT = 42
    BGE = 43
    JAL = 48
    JALR = 49
    # misc
    NOP = 56
    HALT = 57


FORMATS: dict[Op, Format] = {
    **{op: Format.R for op in (
        Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SRA,
        Op.SLT, Op.SLTU, Op.MUL,
    )},
    **{op: Format.I for op in (
        Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLLI, Op.SRLI,
        Op.SRAI, Op.LUI, Op.LW, Op.SW, Op.JAL, Op.JALR,
    )},
    **{op: Format.B for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE)},
    Op.NOP: Format.NONE,
    Op.HALT: Format.NONE,
}

N_REGS = 32


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for field, value in (("rd", self.rd), ("rs1", self.rs1),
                             ("rs2", self.rs2)):
            if not 0 <= value < N_REGS:
                raise ValueError(f"{field}={value} out of range")
        if not -(1 << 15) <= self.imm < (1 << 15):
            raise ValueError(f"imm={self.imm} does not fit in 16 bits")

    @property
    def format(self) -> Format:
        return FORMATS[self.op]

    def __str__(self) -> str:
        fmt = self.format
        if fmt is Format.R:
            return f"{self.op.name.lower()} x{self.rd}, x{self.rs1}, x{self.rs2}"
        if fmt is Format.I:
            return f"{self.op.name.lower()} x{self.rd}, x{self.rs1}, {self.imm}"
        if fmt is Format.B:
            return f"{self.op.name.lower()} x{self.rs1}, x{self.rs2}, {self.imm}"
        return self.op.name.lower()


def _to_u16(imm: int) -> int:
    return imm & 0xFFFF


def _from_u16(bits: int) -> int:
    return bits - 0x10000 if bits & 0x8000 else bits


def encode(instr: Instruction) -> int:
    """Encode to a 32-bit word."""
    word = instr.op.value << 26
    fmt = instr.format
    if fmt is Format.R:
        word |= instr.rd << 21 | instr.rs1 << 16 | instr.rs2 << 11
    elif fmt is Format.I:
        word |= instr.rd << 21 | instr.rs1 << 16 | _to_u16(instr.imm)
    elif fmt is Format.B:
        word |= instr.rs2 << 21 | instr.rs1 << 16 | _to_u16(instr.imm)
    return word & MASK32


#: Word -> Instruction memo.  Decoding is a pure function of the word
#: and Instruction is frozen, so fetched words (a loop body is decoded
#: once per trip) share one cached object across every engine.
_DECODE_CACHE: dict[int, Instruction] = {}


def decode(word: int) -> Instruction:
    """Decode a 32-bit word (inverse of :func:`encode`)."""
    cached = _DECODE_CACHE.get(word)
    if cached is not None:
        return cached
    opcode = (word >> 26) & 0x3F
    try:
        op = Op(opcode)
    except ValueError as exc:
        raise ValueError(f"illegal opcode {opcode} in word {word:#010x}") from exc
    fmt = FORMATS[op]
    if fmt is Format.R:
        instr = Instruction(op, rd=(word >> 21) & 31, rs1=(word >> 16) & 31,
                            rs2=(word >> 11) & 31)
    elif fmt is Format.I:
        instr = Instruction(op, rd=(word >> 21) & 31, rs1=(word >> 16) & 31,
                            imm=_from_u16(word & 0xFFFF))
    elif fmt is Format.B:
        instr = Instruction(op, rs2=(word >> 21) & 31, rs1=(word >> 16) & 31,
                            imm=_from_u16(word & 0xFFFF))
    else:
        instr = Instruction(op)
    if len(_DECODE_CACHE) < 65536:
        _DECODE_CACHE[word] = instr
    return instr


def _signed32(x: int) -> int:
    x &= MASK32
    return x - (1 << 32) if x & (1 << 31) else x


def alu(op: Op, a: int, b: int) -> int:
    """The ALU function for R/I-type operations (b is rs2 or imm)."""
    a &= MASK32
    b &= MASK32
    shift = b & 31
    if op in (Op.ADD, Op.ADDI):
        return (a + b) & MASK32
    if op is Op.SUB:
        return (a - b) & MASK32
    if op in (Op.AND, Op.ANDI):
        return a & b
    if op in (Op.OR, Op.ORI):
        return a | b
    if op in (Op.XOR, Op.XORI):
        return a ^ b
    if op in (Op.SLL, Op.SLLI):
        return (a << shift) & MASK32
    if op in (Op.SRL, Op.SRLI):
        return a >> shift
    if op in (Op.SRA, Op.SRAI):
        return _signed32(a) >> shift & MASK32 if shift else a
    if op in (Op.SLT, Op.SLTI):
        return 1 if _signed32(a) < _signed32(b) else 0
    if op is Op.SLTU:
        return 1 if a < b else 0
    if op is Op.MUL:
        return (a * b) & MASK32
    if op is Op.LUI:
        return (b << 16) & MASK32
    raise ValueError(f"{op} is not an ALU operation")


def branch_taken(op: Op, a: int, b: int) -> bool:
    """Condition evaluation for B-type operations."""
    if op is Op.BEQ:
        return (a & MASK32) == (b & MASK32)
    if op is Op.BNE:
        return (a & MASK32) != (b & MASK32)
    if op is Op.BLT:
        return _signed32(a) < _signed32(b)
    if op is Op.BGE:
        return _signed32(a) >= _signed32(b)
    raise ValueError(f"{op} is not a branch")


def is_branch(op: Op) -> bool:
    return FORMATS[op] is Format.B


def is_jump(op: Op) -> bool:
    return op in (Op.JAL, Op.JALR)


def is_mem(op: Op) -> bool:
    return op in (Op.LW, Op.SW)
