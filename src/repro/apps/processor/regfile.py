"""Per-thread architectural state: register files.

Paper §V-B: "Each thread sees a different copy of the register file and
has a private program counter."  The register file array holds one 32x32
bank per thread; like the paper's Table I accounting, its storage is
excluded from the LE totals ("the multithreaded register file ... [is]
not included").
"""

from __future__ import annotations

from repro.apps.processor.isa import MASK32, N_REGS
from repro.kernel.component import Component


class RegisterFileArray(Component):
    """One 32-register bank per thread; ``x0`` reads as zero everywhere."""

    def __init__(self, name: str, threads: int,
                 parent: Component | None = None):
        super().__init__(name, parent=parent)
        self.threads = threads
        self._banks: list[list[int]] = [
            [0] * N_REGS for _ in range(threads)
        ]

    def read(self, thread: int, reg: int) -> int:
        if reg == 0:
            return 0
        return self._banks[thread][reg]

    def write(self, thread: int, reg: int, value: int) -> None:
        if reg == 0:
            return  # x0 is hardwired to zero
        self._banks[thread][reg] = value & MASK32

    def dump(self, thread: int) -> list[int]:
        bank = list(self._banks[thread])
        bank[0] = 0
        return bank

    def reset(self) -> None:
        self._banks = [[0] * N_REGS for _ in range(self.threads)]

    @property
    def ram_bits(self) -> int:
        return self.threads * N_REGS * 32

    def area_items(self) -> list[tuple[str, int, int]]:
        return []  # block-RAM backed, excluded like the paper's Table I
