"""Golden-model ISA interpreter for differential testing.

Executes programs at the architectural level (no pipeline, no elasticity,
no timing) so the elastic processor can be checked instruction-for-
instruction against an independent implementation of the ISA semantics.
``tests/test_processor_differential.py`` drives both with random
hypothesis-generated programs and compares final register files, data
memory and retired-instruction counts.
"""

from __future__ import annotations

import dataclasses

from repro.apps.processor import isa
from repro.apps.processor.isa import Instruction, Op


class InterpreterError(Exception):
    """Illegal execution (bad fetch, unaligned access, runaway program)."""


@dataclasses.dataclass
class InterpState:
    """Architectural state of one hart."""

    regs: list[int]
    mem: dict[int, int]
    pc: int
    halted: bool = False
    retired: int = 0


class Interpreter:
    """Single-thread architectural interpreter of the processor ISA."""

    def __init__(self, program: dict[int, int] | list[int], base: int = 0):
        """``program``: words list loaded at ``base``, or an addr->word map."""
        if isinstance(program, dict):
            self._imem = dict(program)
        else:
            self._imem = {base + 4 * i: w for i, w in enumerate(program)}
        self.state = InterpState(regs=[0] * isa.N_REGS, mem={}, pc=base)

    # ------------------------------------------------------------------
    def _read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.state.regs[index]

    def _write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.state.regs[index] = value & isa.MASK32

    def _fetch(self, pc: int) -> Instruction:
        if pc % 4 != 0:
            raise InterpreterError(f"unaligned pc {pc:#x}")
        try:
            return isa.decode(self._imem[pc])
        except KeyError as exc:
            raise InterpreterError(f"fetch from unloaded pc {pc:#x}") from exc

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction."""
        st = self.state
        if st.halted:
            return
        instr = self._fetch(st.pc)
        op = instr.op
        next_pc = st.pc + 4
        a = self._read_reg(instr.rs1)

        if op is Op.HALT:
            st.halted = True
        elif op is Op.NOP:
            pass
        elif isa.is_branch(op):
            b = self._read_reg(instr.rs2)
            if isa.branch_taken(op, a, b):
                next_pc = st.pc + 4 + instr.imm * 4
        elif op is Op.JAL:
            self._write_reg(instr.rd, st.pc + 4)
            next_pc = instr.imm * 4
        elif op is Op.JALR:
            self._write_reg(instr.rd, st.pc + 4)
            next_pc = (a + instr.imm) & ~3 & isa.MASK32
        elif op is Op.LW:
            addr = (a + instr.imm) & isa.MASK32
            if addr % 4 != 0:
                raise InterpreterError(f"unaligned load at {addr:#x}")
            self._write_reg(instr.rd, st.mem.get(addr, 0))
        elif op is Op.SW:
            addr = (a + instr.imm) & isa.MASK32
            if addr % 4 != 0:
                raise InterpreterError(f"unaligned store at {addr:#x}")
            st.mem[addr] = self._read_reg(instr.rd)
        else:
            b = (
                instr.imm
                if instr.format is isa.Format.I
                else self._read_reg(instr.rs2)
            )
            self._write_reg(instr.rd, isa.alu(op, a, b))
        st.retired += 1
        st.pc = next_pc

    def run(self, max_steps: int = 100_000) -> InterpState:
        """Run until HALT (or raise after ``max_steps``)."""
        for _ in range(max_steps):
            if self.state.halted:
                return self.state
            self.step()
        raise InterpreterError(f"no HALT within {max_steps} steps")

    # ------------------------------------------------------------------
    def reg(self, index: int) -> int:
        return self._read_reg(index)

    def mem_word(self, addr: int) -> int:
        return self.state.mem.get(addr, 0)

    def regfile(self) -> list[int]:
        regs = list(self.state.regs)
        regs[0] = 0
        return regs
