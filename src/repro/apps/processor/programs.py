"""Sample workloads for the multithreaded elastic processor.

Each program comes with a pure-Python oracle so tests can check the
architectural state after execution.  The set deliberately exercises every
instruction class: ALU, shifts, multiply (long-latency execute), loads and
stores (variable-latency memory), branches, jumps, and halt.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class Program:
    """Assembly source plus an oracle on final architectural state.

    ``expect`` maps from parameters to the expected value; ``check`` says
    where to look ("reg", index) or ("mem", byte address).
    """

    name: str
    source: str
    check: tuple[str, int]
    expected: int


def sum_to_n(n: int) -> Program:
    """Sum 1..n by looping: result in x3 and mem[0]."""
    source = f"""
        addi x1, x0, {n}      ; counter
        addi x3, x0, 0        ; accumulator
    loop:
        beq  x1, x0, done
        add  x3, x3, x1
        addi x1, x1, -1
        jal  x0, loop
    done:
        sw   x3, x0, 0
        halt
    """
    return Program("sum_to_n", source, ("mem", 0), sum(range(1, n + 1)))


def fibonacci(k: int) -> Program:
    """Iterative Fibonacci: fib(k) in x4 (fib(0)=0, fib(1)=1)."""
    source = f"""
        addi x1, x0, {k}
        addi x3, x0, 0        ; fib(i)
        addi x4, x0, 1        ; fib(i+1)
    loop:
        beq  x1, x0, done
        add  x5, x3, x4
        add  x3, x0, x4
        add  x4, x0, x5
        addi x1, x1, -1
        jal  x0, loop
    done:
        add  x4, x0, x3
        halt
    """
    fib = [0, 1]
    for _ in range(max(0, k - 1)):
        fib.append(fib[-1] + fib[-2])
    return Program("fibonacci", source, ("reg", 4), fib[k] & 0xFFFFFFFF)


def gcd(a: int, b: int) -> Program:
    """Euclid by repeated subtraction: gcd in x1."""
    source = f"""
        addi x1, x0, {a}
        addi x2, x0, {b}
    loop:
        beq  x2, x0, done
        bge  x1, x2, reduce
        add  x5, x0, x1       ; swap
        add  x1, x0, x2
        add  x2, x0, x5
        jal  x0, loop
    reduce:
        sub  x1, x1, x2
        jal  x0, loop
    done:
        halt
    """
    return Program("gcd", source, ("reg", 1), math.gcd(a, b))


def memcpy(values: list[int], src_base: int = 0x100,
           dst_base: int = 0x200) -> tuple[Program, dict[int, int]]:
    """Copy ``len(values)`` words; returns the program and the initial
    data-memory image the caller must pre-seed."""
    n = len(values)
    source = f"""
        addi x1, x0, {src_base}
        addi x2, x0, {dst_base}
        addi x3, x0, {n}
    loop:
        beq  x3, x0, done
        lw   x4, x1, 0
        sw   x4, x2, 0
        addi x1, x1, 4
        addi x2, x2, 4
        addi x3, x3, -1
        jal  x0, loop
    done:
        halt
    """
    image = {src_base + 4 * i: v & 0xFFFFFFFF for i, v in enumerate(values)}
    program = Program(
        "memcpy", source, ("mem", dst_base + 4 * (n - 1)),
        values[-1] & 0xFFFFFFFF,
    )
    return program, image


def dot_product(xs: list[int], ys: list[int]) -> tuple[Program, dict[int, int]]:
    """Σ xs[i]*ys[i] via MUL (exercises the long-latency execute path)."""
    if len(xs) != len(ys):
        raise ValueError("vectors must have equal length")
    n = len(xs)
    x_base, y_base = 0x300, 0x400
    source = f"""
        addi x1, x0, {x_base}
        addi x2, x0, {y_base}
        addi x3, x0, {n}
        addi x4, x0, 0        ; accumulator
    loop:
        beq  x3, x0, done
        lw   x5, x1, 0
        lw   x6, x2, 0
        mul  x7, x5, x6
        add  x4, x4, x7
        addi x1, x1, 4
        addi x2, x2, 4
        addi x3, x3, -1
        jal  x0, loop
    done:
        sw   x4, x0, 16
        halt
    """
    image = {x_base + 4 * i: v & 0xFFFFFFFF for i, v in enumerate(xs)}
    image.update({y_base + 4 * i: v & 0xFFFFFFFF for i, v in enumerate(ys)})
    expected = sum(x * y for x, y in zip(xs, ys)) & 0xFFFFFFFF
    return Program("dot_product", source, ("mem", 16), expected), image


def shift_playground(value: int) -> Program:
    """Exercises every shift and bitwise op; result signature in x10."""
    source = f"""
        addi x1, x0, {value & 0x7FF}
        slli x2, x1, 3
        srli x3, x2, 1
        lui  x4, x0, 1
        or   x5, x3, x4
        xori x6, x5, 0x2A
        andi x7, x6, 0x3FF
        sub  x8, x6, x7
        sra  x9, x8, x1
        add  x10, x7, x9
        halt
    """
    v = value & 0x7FF
    x2 = (v << 3) & 0xFFFFFFFF
    x3 = x2 >> 1
    x4 = 1 << 16
    x5 = x3 | x4
    x6 = x5 ^ 0x2A
    x7 = x6 & 0x3FF
    x8 = (x6 - x7) & 0xFFFFFFFF

    def sra32(x, n):
        n &= 31
        s = x - (1 << 32) if x & (1 << 31) else x
        return (s >> n) & 0xFFFFFFFF

    x9 = sra32(x8, v)
    x10 = (x7 + x9) & 0xFFFFFFFF
    return Program("shift_playground", source, ("reg", 10), x10)


def spin(n: int) -> Program:
    """Busy loop of ~4n instructions; used for utilization experiments."""
    source = f"""
        addi x1, x0, {n}
    loop:
        beq  x1, x0, done
        addi x2, x2, 1
        addi x1, x1, -1
        jal  x0, loop
    done:
        halt
    """
    return Program("spin", source, ("reg", 2), n)


#: A ready-made mixed workload, one entry per typical thread.
def standard_mix() -> list[Program]:
    return [
        sum_to_n(10),
        fibonacci(12),
        gcd(126, 84),
        shift_playground(37),
        spin(15),
        sum_to_n(7),
        fibonacci(9),
        gcd(81, 27),
    ]
