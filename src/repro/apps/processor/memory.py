"""Instruction and data memories (variable-latency, RAM-excluded).

The instruction memory is a single shared word-addressed space (each
thread's program is loaded at its own base address); the data memory
gives every thread a private address space, keeping threads fully
independent as in the paper's processor where "each thread ... execute[s]
its code independently".  Both are consumed through variable-latency
elastic units, matching "the instruction and data memory ... are
considered variable latency units" (§V-B).
"""

from __future__ import annotations

from repro.apps.processor.isa import MASK32
from repro.kernel.component import Component
from repro.kernel.errors import SimulationError


def _check_aligned(addr: int, who: str) -> None:
    if addr % 4 != 0:
        raise SimulationError(f"{who}: unaligned word access at {addr:#x}")
    if addr < 0:
        raise SimulationError(f"{who}: negative address {addr:#x}")


class InstructionMemory(Component):
    """Shared read-only word memory holding every thread's program."""

    def __init__(self, name: str, parent: Component | None = None):
        super().__init__(name, parent=parent)
        self._words: dict[int, int] = {}

    def load(self, words: list[int], base: int = 0) -> None:
        _check_aligned(base, self.path)
        for i, word in enumerate(words):
            self._words[base + 4 * i] = word & MASK32

    def fetch(self, addr: int) -> int:
        _check_aligned(addr, self.path)
        try:
            return self._words[addr]
        except KeyError as exc:
            raise SimulationError(
                f"{self.path}: fetch from unloaded address {addr:#x}"
            ) from exc

    def clear(self) -> None:
        self._words.clear()

    @property
    def ram_bits(self) -> int:
        return len(self._words) * 32

    def area_items(self) -> list[tuple[str, int, int]]:
        return []  # block RAM, excluded from LE totals


class DataMemoryArray(Component):
    """Private word-addressed data memory per thread (zero-initialized)."""

    def __init__(self, name: str, threads: int,
                 parent: Component | None = None):
        super().__init__(name, parent=parent)
        self.threads = threads
        self._spaces: list[dict[int, int]] = [{} for _ in range(threads)]

    def read(self, thread: int, addr: int) -> int:
        _check_aligned(addr, self.path)
        return self._spaces[thread].get(addr, 0)

    def write(self, thread: int, addr: int, value: int) -> None:
        _check_aligned(addr, self.path)
        self._spaces[thread][addr] = value & MASK32

    def dump(self, thread: int) -> dict[int, int]:
        return dict(self._spaces[thread])

    def reset(self) -> None:
        self._spaces = [{} for _ in range(self.threads)]

    @property
    def ram_bits(self) -> int:
        return sum(len(s) for s in self._spaces) * 32

    def area_items(self) -> list[tuple[str, int, int]]:
        return []  # block RAM, excluded from LE totals
