"""Pipeline stage tokens and the sequenced (side-effecting) stage unit.

The pipeline circulates **one token per thread** around an elastic ring
(DESIGN.md §5: this removes intra-thread hazards by construction while
matching the paper's "all threads are eligible to move forward in the
pipeline as long as they contain a valid instruction").  Tokens morph as
they pass each stage:

``PCToken -> FetchedToken -> DecodedToken -> ExecutedToken -> MemToken``

:class:`MTSequencedUnit` complements
:class:`~repro.core.function.MTVariableLatencyUnit` for stages with side
effects (data-memory writes, register writeback): its ``fn`` runs exactly
once per accepted item, during the capture phase, where state mutation is
legal — never inside combinational evaluation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.apps.processor.isa import Instruction
from repro.core.mtchannel import MTChannel
from repro.elastic.function import LatencyPolicy
from repro.kernel.component import Component
from repro.kernel.errors import SimulationError
from repro.kernel.values import X, as_bool, state_changed


# ----------------------------------------------------------------------
# stage payloads
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PCToken:
    """Fetch request: the thread's program counter."""

    pc: int

    WIDTH = 32


@dataclasses.dataclass(frozen=True)
class FetchedToken:
    """Fetch response: pc + raw instruction word."""

    pc: int
    word: int

    WIDTH = 64


@dataclasses.dataclass(frozen=True)
class DecodedToken:
    """Decoded instruction with register operands read."""

    pc: int
    instr: Instruction
    a: int          # rs1 value
    b: int          # rs2 value or immediate, per instruction format
    store_value: int  # value to store for SW (rd-field register)

    WIDTH = 32 + 32 + 96  # pc + operands + decoded fields


@dataclasses.dataclass(frozen=True)
class ExecutedToken:
    """Execute results: ALU value, branch decision, memory request."""

    pc: int
    instr: Instruction
    value: int          # ALU result / link value
    next_pc: int        # resolved next program counter
    mem_addr: int | None
    store_value: int
    halt: bool

    WIDTH = 32 + 32 + 32 + 32 + 8


@dataclasses.dataclass(frozen=True)
class MemToken:
    """Memory stage output: final writeback value."""

    pc: int
    instr: Instruction
    value: int
    next_pc: int
    halt: bool

    WIDTH = 32 + 32 + 32 + 8


# ----------------------------------------------------------------------
# sequenced unit
# ----------------------------------------------------------------------

class MTSequencedUnit(Component):
    """Variable-latency MT unit whose ``fn(data, thread)`` may mutate state.

    Same external timing contract as
    :class:`~repro.core.function.MTVariableLatencyUnit` (accept at *t*,
    result valid from *t+L*), but the function is evaluated exactly once,
    at acceptance, inside the capture phase.
    """

    def __init__(
        self,
        name: str,
        inp: MTChannel,
        out: MTChannel,
        fn: Callable[[Any, int], Any],
        latency: LatencyPolicy = 1,
        area_luts: int = 0,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if inp.threads != out.threads:
            raise SimulationError(f"{name}: thread-count mismatch")
        self.threads = inp.threads
        self.inp = inp
        self.out = out
        self.fn = fn
        self._latency_policy = latency
        self._area_luts = int(area_luts)
        inp.connect_consumer(self)
        out.connect_producer(self)
        # Acceptance bypasses through the owner's downstream ready.
        self.declare_reads(out.ready)
        self._busy = False
        self._owner: int | None = None
        self._remaining = 0
        self._result: Any = X
        self._accepted = 0
        self._next: tuple[bool, int | None, int, Any, int] | None = None

    def _latency_for(self, data: Any) -> int:
        policy = self._latency_policy
        lat = policy(data, self._accepted) if callable(policy) else policy
        if lat < 1:
            raise SimulationError(f"{self.path}: latency must be >= 1")
        return int(lat)

    @property
    def done(self) -> bool:
        return self._busy and self._remaining == 0

    def combinational(self) -> None:
        draining = self.done and as_bool(self.out.ready[self._owner].value)
        accepting = (not self._busy) or draining
        for t in range(self.threads):
            self.inp.ready[t].set(accepting)
            self.out.valid[t].set(self.done and self._owner == t)
        self.out.data.set(self._result if self.done else X)

    def capture(self) -> None:
        busy, owner = self._busy, self._owner
        remaining, result = self._remaining, self._result
        accepted = self._accepted
        if self.done and as_bool(self.out.ready[self._owner].value):
            busy, owner, result = False, None, X
        if not busy:
            t = self.inp.transfer_thread()
            if t is not None:
                data = self.inp.data.value
                remaining = self._latency_for(data) - 1
                result = self.fn(data, t)  # the one-and-only evaluation
                busy, owner = True, t
                accepted += 1
        elif remaining > 0:
            remaining -= 1
        self._next = (busy, owner, remaining, result, accepted)

    def commit(self) -> bool:
        if self._next is None:
            return False
        changed = state_changed(
            (self._busy, self._owner, self._remaining, self._result),
            self._next[:4],
        )
        (self._busy, self._owner, self._remaining, self._result,
         self._accepted) = self._next
        self._next = None
        return changed

    def reset(self) -> None:
        self._busy = False
        self._owner = None
        self._remaining = 0
        self._result = X
        self._accepted = 0
        self._next = None

    def area_items(self) -> list[tuple[str, int, int]]:
        import math

        width = self.out.width
        owner_bits = max(1, math.ceil(math.log2(max(2, self.threads))))
        items: list[tuple[str, int, int]] = [
            ("ff", 1, width),
            ("ff", 1, 4 + owner_bits),
            ("lut", 4 + self.threads, 1),
        ]
        if self._area_luts:
            items.append(("lut", self._area_luts, 1))
        return items
