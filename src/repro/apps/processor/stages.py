"""Pipeline stage tokens and the sequenced (side-effecting) stage unit.

The pipeline circulates **one token per thread** around an elastic ring
(DESIGN.md §5: this removes intra-thread hazards by construction while
matching the paper's "all threads are eligible to move forward in the
pipeline as long as they contain a valid instruction").  Tokens morph as
they pass each stage:

``PCToken -> FetchedToken -> DecodedToken -> ExecutedToken -> MemToken``

:class:`MTSequencedUnit` complements
:class:`~repro.core.function.MTVariableLatencyUnit` for stages with side
effects (data-memory writes, register writeback): its ``fn`` runs exactly
once per accepted item, during the capture phase, where state mutation is
legal — never inside combinational evaluation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.apps.processor.isa import Instruction
from repro.core.function import MTVariableLatencyUnit
from repro.core.mtchannel import MTChannel
from repro.elastic.function import LatencyPolicy
from repro.kernel.component import Component


# ----------------------------------------------------------------------
# stage payloads
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PCToken:
    """Fetch request: the thread's program counter."""

    pc: int

    WIDTH = 32


@dataclasses.dataclass(frozen=True)
class FetchedToken:
    """Fetch response: pc + raw instruction word."""

    pc: int
    word: int

    WIDTH = 64


@dataclasses.dataclass(frozen=True)
class DecodedToken:
    """Decoded instruction with register operands read."""

    pc: int
    instr: Instruction
    a: int          # rs1 value
    b: int          # rs2 value or immediate, per instruction format
    store_value: int  # value to store for SW (rd-field register)

    WIDTH = 32 + 32 + 96  # pc + operands + decoded fields


@dataclasses.dataclass(frozen=True)
class ExecutedToken:
    """Execute results: ALU value, branch decision, memory request."""

    pc: int
    instr: Instruction
    value: int          # ALU result / link value
    next_pc: int        # resolved next program counter
    mem_addr: int | None
    store_value: int
    halt: bool

    WIDTH = 32 + 32 + 32 + 32 + 8


@dataclasses.dataclass(frozen=True)
class MemToken:
    """Memory stage output: final writeback value."""

    pc: int
    instr: Instruction
    value: int
    next_pc: int
    halt: bool

    WIDTH = 32 + 32 + 32 + 8


# ----------------------------------------------------------------------
# sequenced unit
# ----------------------------------------------------------------------

class MTSequencedUnit(MTVariableLatencyUnit):
    """Variable-latency MT unit whose ``fn(data, thread)`` may mutate state.

    Same external timing contract as
    :class:`~repro.core.function.MTVariableLatencyUnit` (accept at *t*,
    result valid from *t+L*), but the function also receives the
    accepting thread index and runs exactly once per accepted item,
    during the capture phase, where state mutation is legal — never
    inside combinational evaluation.  It inherits the base unit's whole
    slot compilation: the settle handshake is a ``compile_comb`` slice
    step and the capture/commit pair a delta-gated
    :class:`~repro.kernel.slots.SeqPlan` over the re-homed
    busy/owner/remaining/result block.
    """

    _fn_takes_thread = True

    def __init__(
        self,
        name: str,
        inp: MTChannel,
        out: MTChannel,
        fn: Callable[[Any, int], Any],
        latency: LatencyPolicy = 1,
        area_luts: int = 0,
        parent: Component | None = None,
    ):
        super().__init__(name, inp, out, fn, latency=latency,
                         area_luts=area_luts, parent=parent)
