"""Multithreaded pipelined elastic processor (paper §V-B)."""

from repro.apps.processor.assembler import AssemblyError, assemble, disassemble
from repro.apps.processor.core import PCUnit, Processor, RunStats
from repro.apps.processor.isa import (
    Format,
    Instruction,
    Op,
    alu,
    branch_taken,
    decode,
    encode,
)
from repro.apps.processor.memory import DataMemoryArray, InstructionMemory
from repro.apps.processor.regfile import RegisterFileArray
from repro.apps.processor.stages import (
    DecodedToken,
    ExecutedToken,
    FetchedToken,
    MemToken,
    MTSequencedUnit,
    PCToken,
)
from repro.apps.processor import programs

__all__ = [
    "AssemblyError",
    "DataMemoryArray",
    "DecodedToken",
    "ExecutedToken",
    "FetchedToken",
    "Format",
    "Instruction",
    "InstructionMemory",
    "MTSequencedUnit",
    "MemToken",
    "Op",
    "PCToken",
    "PCUnit",
    "Processor",
    "RegisterFileArray",
    "RunStats",
    "alu",
    "assemble",
    "branch_taken",
    "decode",
    "disassemble",
    "encode",
    "programs",
]
