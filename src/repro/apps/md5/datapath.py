"""The MD5 round datapath and its supporting stores.

* :class:`MD5Token` — the payload circulating through the elastic loop:
  the 128-bit working state, the token's round index, and a reference
  into the message store (the 512-bit block itself stays in a RAM-like
  store, mirroring FPGA practice where block RAM holds the message and
  only the working state travels through pipeline buffers).
* :class:`MessageStore` — per-(thread, block) storage of message words.
* :func:`round_logic` — the combinational function applied per pass:
  16 unrolled MD5 steps of the token's current round.
* :func:`round_datapath_luts` — the LUT estimate for the unrolled round,
  built from the primitive estimators of :mod:`repro.cost.model` and used
  by the Table I benchmark.

A faithfulness check: the round applied must equal the circuit's global
round counter (maintained by the barrier), exactly as in the paper where
the barrier release "allow[s] the round counter to be incremented"; a
mismatch raises immediately.
"""

from __future__ import annotations

import dataclasses

from repro.apps.md5 import reference as ref
from repro.cost.model import adder_luts, logic_unit_luts, mux_tree_luts
from repro.kernel.component import Component
from repro.kernel.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class MD5Token:
    """Payload on the MD5 loop channels.

    ``state`` is the working (a, b, c, d); ``round_idx`` counts completed
    round passes (0..4); ``block_ref`` is the message-store slot;
    ``step_idx`` is the intra-round progress (non-zero only in the
    pipelined-round variant, where a round is split across stages).
    """

    state: tuple[int, int, int, int]
    round_idx: int
    block_ref: int
    step_idx: int = 0

    @property
    def done(self) -> bool:
        return self.round_idx >= ref.N_ROUNDS

    #: Channel width in bits: 4x32 working state + 3-bit round + 9-bit
    #: ref + 4-bit step.
    WIDTH = 128 + 3 + 9 + 4


class MessageStore(Component):
    """Per-thread block storage (modelled as RAM, excluded from LE count).

    Slot addressing is ``(thread, block_ref)``; the driver writes blocks
    before injecting the corresponding token, the round logic reads them
    combinationally.  Like the paper's Table I accounting for memories
    ("the number of block RAMs ... are not included"), :meth:`area_items`
    reports nothing — the RAM bits are tracked separately in
    :attr:`ram_bits`.
    """

    def __init__(self, name: str, threads: int,
                 parent: Component | None = None):
        super().__init__(name, parent=parent)
        self.threads = threads
        self._blocks: dict[tuple[int, int], tuple[int, ...]] = {}

    def write(self, thread: int, block_ref: int, block: tuple[int, ...]) -> None:
        if len(block) != 16:
            raise ValueError("an MD5 block is 16 words")
        self._blocks[(thread, block_ref)] = tuple(block)

    def read(self, thread: int, block_ref: int) -> tuple[int, ...]:
        try:
            return self._blocks[(thread, block_ref)]
        except KeyError as exc:
            raise SimulationError(
                f"{self.path}: no block at (thread={thread}, "
                f"ref={block_ref})"
            ) from exc

    def clear(self) -> None:
        self._blocks.clear()

    @property
    def ram_bits(self) -> int:
        return len(self._blocks) * 512

    def area_items(self) -> list[tuple[str, int, int]]:
        return []  # block RAM, excluded like the paper's memories


# ----------------------------------------------------------------------
# compiled round steps
# ----------------------------------------------------------------------
# One settled cycle of the unrolled datapath applies up to 16 MD5 steps
# to the active thread's token; the straightforward implementation pays
# ~5 Python calls per step (md5_step -> round_function, message_index,
# rotl32, table indexing).  Because the per-round configuration (boolean
# function, message schedule, rotation amounts, additive constants) is
# static, the whole slice can instead be code-generated once per
# (round, step-window) into a single straight-line function with every
# constant folded in — the software analogue of the paper's unrolled
# single-cycle round, and the "batch the per-thread fn calls" lever: a
# thread's pass through the datapath is now ONE call instead of ~80.
# The generated arithmetic mirrors reference.md5_step expression for
# expression, so results stay bit-identical to the reference (which the
# MD5 tests check against hashlib).

_ROUND_F = (
    "(({b} & {c}) | (~{b} & {d} & {M}))",          # F
    "(({d} & {b}) | (~{d} & {c} & {M}))",          # G
    "({b} ^ {c} ^ {d})",                           # H
    "({c} ^ ({b} | (~{d} & {M})))",                # I
)

_STEP_FNS: dict[tuple[int, int, int], object] = {}


def compiled_round_steps(round_idx: int, start_step: int, n_steps: int):
    """``fn(state, block) -> state`` applying the given step window.

    Generated on first use and cached; behaviourally identical to
    folding :func:`repro.apps.md5.reference.md5_step` over
    ``range(start_step, start_step + n_steps)``.
    """
    key = (round_idx, start_step, n_steps)
    fn = _STEP_FNS.get(key)
    if fn is None:
        mask = ref.MASK32
        needed = sorted(
            {
                ref.message_index(round_idx, step)
                for step in range(start_step, start_step + n_steps)
            }
        )
        lines = ["def _steps(state, block):", "    a, b, c, d = state"]
        lines += [f"    m{g} = block[{g}]" for g in needed]
        # Role rotation without per-step tuple assignment: after each
        # step the working registers are (d, new_b, b, c); track the
        # names statically and introduce one fresh temporary per step.
        na, nb, nc, nd = "a", "b", "c", "d"
        for step in range(start_step, start_step + n_steps):
            i = round_idx * ref.STEPS_PER_ROUND + step
            g = ref.message_index(round_idx, step)
            s = ref.S[i]
            f_expr = _ROUND_F[round_idx].format(b=nb, c=nc, d=nd, M=mask)
            x = f"x{step}"
            t = f"t{step}"
            lines.append(
                f"    {x} = ({na} + {f_expr} + {ref.K[i]} + m{g}) & {mask}"
            )
            lines.append(
                f"    {t} = ({nb} + ((({x} << {s}) | ({x} >> {32 - s}))"
                f" & {mask})) & {mask}"
            )
            na, nb, nc, nd = nd, t, nb, nc
        lines.append(f"    return ({na}, {nb}, {nc}, {nd})")
        ns: dict[str, object] = {}
        exec("\n".join(lines), ns)  # noqa: S102 - trusted codegen
        fn = _STEP_FNS[key] = ns["_steps"]
    return fn


def round_logic(
    token: MD5Token,
    thread: int,
    store: MessageStore,
    expected_round: int | None = None,
) -> MD5Token:
    """One pass through the unrolled 16-step round datapath.

    ``expected_round`` is the circuit's global round counter; passing a
    token whose own round differs means the barrier synchronization has
    been violated.
    """
    if token.done:
        raise SimulationError(
            f"finished token (round {token.round_idx}) re-entered the "
            "round datapath"
        )
    if expected_round is not None and token.round_idx != expected_round % ref.N_ROUNDS:
        raise SimulationError(
            f"round desynchronization: token in round {token.round_idx}, "
            f"global counter at {expected_round % ref.N_ROUNDS} "
            "(barrier invariant broken)"
        )
    block = store.read(thread, token.block_ref)
    steps = compiled_round_steps(token.round_idx, 0, ref.STEPS_PER_ROUND)
    state = steps(token.state, block)
    return MD5Token(state, token.round_idx + 1, token.block_ref)


def partial_round_logic(
    token: MD5Token,
    thread: int,
    store: MessageStore,
    n_steps: int,
    expected_round: int | None = None,
) -> MD5Token:
    """A pipelined slice of the round datapath: ``n_steps`` MD5 steps.

    The paper notes the unrolled steps "could have been pipelined with
    minimum changes due to elasticity" (§V-A); this is that variant.  A
    stage starting a new round (``step_idx == 0``) performs the same
    barrier-synchronization check as :func:`round_logic`; completing the
    16th step advances ``round_idx`` and resets ``step_idx``.
    """
    if token.done:
        raise SimulationError("finished token re-entered the round datapath")
    if token.step_idx % n_steps != 0:
        raise SimulationError(
            f"token step {token.step_idx} misaligned with stage width "
            f"{n_steps}"
        )
    if (
        expected_round is not None
        and token.step_idx == 0
        and token.round_idx != expected_round % ref.N_ROUNDS
    ):
        raise SimulationError(
            f"round desynchronization: token in round {token.round_idx}, "
            f"global counter at {expected_round % ref.N_ROUNDS}"
        )
    block = store.read(thread, token.block_ref)
    steps = compiled_round_steps(token.round_idx, token.step_idx, n_steps)
    state = steps(token.state, block)
    next_step = token.step_idx + n_steps
    if next_step >= ref.STEPS_PER_ROUND:
        return MD5Token(state, token.round_idx + 1, token.block_ref, 0)
    return MD5Token(state, token.round_idx, token.block_ref, next_step)


def step_luts() -> int:
    """LE estimate for one MD5 step of the unrolled round.

    Per step: the boolean round function on 32 bits, a 3-operand adder
    chain (a + f + K[i] + M[g] — K is a constant folded into the adder
    tree), the b-addend adder, and the per-round selection muxes for the
    round function output and the message word (4:1 each, since each
    unrolled step position serves all four rounds).  Rotations are
    constant per (round, step) and cost only routing, but the per-round
    variation needs a 4:1 mux on the rotated value.
    """
    func = logic_unit_luts(32)               # F/G/H/I on 32 bits
    adders = 3 * adder_luts(32)              # a+f, +M[g] (+K folded), b+rot
    func_mux = mux_tree_luts(4, 32)          # select among F/G/H/I
    msg_mux = mux_tree_luts(4, 32)           # per-round message word pick
    rot_mux = mux_tree_luts(4, 32)           # per-round rotation amount
    return func + adders + func_mux + msg_mux + rot_mux


def round_datapath_luts() -> int:
    """LUTs of the full 16-step unrolled round (paper §V-A datapath)."""
    return ref.STEPS_PER_ROUND * step_luts()
