"""From-scratch MD5 (RFC 1321) — the functional reference and the shared
constant tables used by the hardware datapath.

The elastic MD5 circuit (:mod:`repro.apps.md5.circuit`) executes exactly
the round function exposed here (:func:`md5_round`), so a digest produced
by the circuit is checked bit-for-bit against :func:`md5_hex` — and this
reference itself is checked against :mod:`hashlib` in the tests.

The algorithm processes 512-bit blocks through 4 rounds of 16 steps; each
round uses a different boolean function, message-word schedule and shift
table, which is why the paper's multithreaded implementation needs the
round-synchronizing barrier ("MD5 requires a different configuration for
each round, all threads need to synchronize before moving to the next
round", §V-A).
"""

from __future__ import annotations

import math
import struct

MASK32 = 0xFFFFFFFF

#: Initial hash state (A, B, C, D).
IV: tuple[int, int, int, int] = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)

#: Per-step additive constants: K[i] = floor(abs(sin(i+1)) * 2^32).
K: tuple[int, ...] = tuple(
    int(abs(math.sin(i + 1)) * (1 << 32)) & MASK32 for i in range(64)
)

#: Per-step left-rotation amounts.
S: tuple[int, ...] = (
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
)

N_ROUNDS = 4
STEPS_PER_ROUND = 16


def rotl32(x: int, n: int) -> int:
    """32-bit left rotation."""
    x &= MASK32
    return ((x << n) | (x >> (32 - n))) & MASK32


def round_function(round_idx: int, b: int, c: int, d: int) -> int:
    """The boolean mixing function of each round (F, G, H, I)."""
    if round_idx == 0:
        return (b & c) | (~b & d & MASK32)
    if round_idx == 1:
        return (d & b) | (~d & c & MASK32)
    if round_idx == 2:
        return b ^ c ^ d
    if round_idx == 3:
        return c ^ (b | (~d & MASK32))
    raise ValueError(f"round index {round_idx} out of range")


def message_index(round_idx: int, step: int) -> int:
    """Which message word feeds step *step* of round *round_idx*."""
    if round_idx == 0:
        return step
    if round_idx == 1:
        return (5 * step + 1) % 16
    if round_idx == 2:
        return (3 * step + 5) % 16
    if round_idx == 3:
        return (7 * step) % 16
    raise ValueError(f"round index {round_idx} out of range")


def md5_step(
    state: tuple[int, int, int, int],
    block: tuple[int, ...],
    round_idx: int,
    step: int,
) -> tuple[int, int, int, int]:
    """One of the 64 MD5 steps on working state (a, b, c, d)."""
    a, b, c, d = state
    i = round_idx * STEPS_PER_ROUND + step
    f = round_function(round_idx, b, c, d)
    g = message_index(round_idx, step)
    rotated = rotl32((a + f + K[i] + block[g]) & MASK32, S[i])
    return (d, (b + rotated) & MASK32, b, c)


def md5_round(
    state: tuple[int, int, int, int],
    block: tuple[int, ...],
    round_idx: int,
) -> tuple[int, int, int, int]:
    """All 16 steps of one round — the paper's single-cycle unrolled
    datapath (§V-A: "the 16 steps of each round are fully unrolled and
    implemented in a single cycle")."""
    for step in range(STEPS_PER_ROUND):
        state = md5_step(state, block, round_idx, step)
    return state


def process_block(
    h: tuple[int, int, int, int], block: tuple[int, ...]
) -> tuple[int, int, int, int]:
    """Run all 4 rounds on one block and apply the Davies–Meyer add."""
    state = h
    for round_idx in range(N_ROUNDS):
        state = md5_round(state, block, round_idx)
    return tuple((hv + sv) & MASK32 for hv, sv in zip(h, state))


def pad_message(data: bytes) -> bytes:
    """RFC 1321 padding: 0x80, zeros, 64-bit little-endian bit length."""
    length_bits = (len(data) * 8) & 0xFFFFFFFFFFFFFFFF
    padded = data + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack("<Q", length_bits)
    return padded


def message_blocks(data: bytes) -> list[tuple[int, ...]]:
    """Split a padded message into 16-word little-endian blocks."""
    padded = pad_message(data)
    blocks = []
    for off in range(0, len(padded), 64):
        blocks.append(struct.unpack("<16I", padded[off : off + 64]))
    return blocks


def digest_bytes(h: tuple[int, int, int, int]) -> bytes:
    return struct.pack("<4I", *h)


def md5_digest(data: bytes) -> bytes:
    """MD5 digest of *data* as 16 raw bytes."""
    h = IV
    for block in message_blocks(data):
        h = process_block(h, block)
    return digest_bytes(h)


def md5_hex(data: bytes) -> str:
    """MD5 digest of *data* as the usual 32-char hex string."""
    return md5_digest(data).hex()
