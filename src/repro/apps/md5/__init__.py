"""MD5 design example: reference algorithm, elastic circuit, driver."""

from repro.apps.md5.circuit import MD5Circuit, MD5Hasher
from repro.apps.md5.datapath import (
    MD5Token,
    MessageStore,
    round_datapath_luts,
    round_logic,
    step_luts,
)
from repro.apps.md5.reference import (
    IV,
    K,
    N_ROUNDS,
    S,
    STEPS_PER_ROUND,
    md5_digest,
    md5_hex,
    md5_round,
    md5_step,
    message_blocks,
    pad_message,
    process_block,
    rotl32,
)

__all__ = [
    "IV",
    "K",
    "MD5Circuit",
    "MD5Hasher",
    "MD5Token",
    "MessageStore",
    "N_ROUNDS",
    "S",
    "STEPS_PER_ROUND",
    "md5_digest",
    "md5_hex",
    "md5_round",
    "md5_step",
    "message_blocks",
    "pad_message",
    "process_block",
    "rotl32",
    "round_datapath_luts",
    "round_logic",
    "step_luts",
]
