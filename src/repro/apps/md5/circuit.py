"""The multithreaded elastic MD5 circuit (paper §V-A).

Architecture — a four-trip elastic loop around the unrolled 16-step round
datapath, shared by all threads:

::

    new blocks ──► M-Merge ──► MEB(in) ──► round datapath ──► MEB(out)
                      ▲                                          │
                      │                                       Barrier
                      │                                          │
                      └────────── recirculate ◄── M-Branch ◄─────┘
                                                      │
                                                      └──► digests out

Each thread's block makes four passes (one per MD5 round); the barrier
after the output buffer blocks the flow until every thread has finished
the current round, and its release advances the global round counter —
"when all threads have been processed and reached the barrier, the data
flow is released, allowing the round counter to be incremented".  The
round datapath asserts that every token it processes agrees with the
global counter, so a barrier bug fails loudly.

:class:`MD5Hasher` is the software driver: it splits messages into padded
blocks, runs one *wave* (one block per thread, shorter threads padded
with dummy blocks so the barrier never starves — see DESIGN.md), applies
the Davies–Meyer accumulation between blocks, and returns standard hex
digests.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.md5 import reference as ref
from repro.apps.md5.datapath import (
    MD5Token,
    MessageStore,
    round_datapath_luts,
    round_logic,
)
from repro.core import (
    Barrier,
    FullMEB,
    GrantPolicy,
    MBranch,
    MMerge,
    MTChannel,
    MTContextFunction,
    MTMonitor,
    MTSink,
    MTSource,
    ReducedMEB,
)
from repro.kernel import Component, Simulator
from repro.kernel.errors import SimulationError

MEB_KINDS = {"full": FullMEB, "reduced": ReducedMEB}


class MD5Circuit:
    """The elastic loop: merge, MEBs, round logic, barrier, branch.

    ``round_stages`` splits the 16-step round datapath into that many
    pipeline stages separated by MEBs (the paper's remark that the steps
    "could have been pipelined with minimum changes due to elasticity");
    1 (default) is the paper's single-cycle unrolled round.
    """

    def __init__(
        self,
        threads: int = 8,
        meb: str = "reduced",
        policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
        round_stages: int = 1,
        engine: str | None = None,
    ):
        if meb not in MEB_KINDS:
            raise ValueError(f"meb must be one of {sorted(MEB_KINDS)}")
        from repro.apps.md5.reference import STEPS_PER_ROUND

        if round_stages < 1 or STEPS_PER_ROUND % round_stages != 0:
            raise ValueError(
                f"round_stages must divide {STEPS_PER_ROUND}, got "
                f"{round_stages}"
            )
        self.threads = threads
        self.meb_kind = meb
        self.round_stages = round_stages
        self.steps_per_stage = STEPS_PER_ROUND // round_stages
        width = MD5Token.WIDTH
        self.store = MessageStore("msg_store", threads)
        self._round_releases = 0
        self._stage_caches: list[list] = []

        self.c_new = MTChannel("c_new", threads, width)
        self.c_loop = MTChannel("c_loop", threads, width)
        self.c_bar = MTChannel("c_bar", threads, width)
        self.c_rec = MTChannel("c_rec", threads, width)
        self.c_out = MTChannel("c_out", threads, width)

        self.source = MTSource(
            "inject", self.c_new, items=[[] for _ in range(threads)],
            policy=policy,
        )
        self.merge = MMerge("merge", [self.c_new, self.c_rec], self.c_loop)
        meb_cls = MEB_KINDS[meb]

        # meb_in -> stage0 -> meb -> stage1 -> ... -> stageN-1 -> meb_out
        self.mebs: list = []
        self.stages: list[MTContextFunction] = []
        inner_channels: list[MTChannel] = []
        stage_luts = round_datapath_luts() // round_stages
        upstream = self.c_loop
        for k in range(round_stages):
            c_in = MTChannel(f"c_s{k}_in", threads, width)
            inner_channels.append(c_in)
            meb_k = meb_cls(f"meb_{k}", upstream, c_in, policy=policy)
            self.mebs.append(meb_k)
            c_out = MTChannel(f"c_s{k}_out", threads, width)
            inner_channels.append(c_out)
            # pure=True: the stage function reads the message store and
            # the global round counter, but both are explicitly
            # invalidated below whenever they change (_on_release,
            # run_wave), so the settle engine may skip idle stages.
            stage = MTContextFunction(
                f"round_stage{k}", c_in, c_out,
                fn=self._make_stage_fn(k), area_luts=stage_luts,
                pure=True,
            )
            self.stages.append(stage)
            upstream = c_out
        self.meb_out = meb_cls("meb_out", upstream, self.c_bar,
                               policy=policy)
        self.mebs.append(self.meb_out)
        self.meb_in = self.mebs[0]
        self._inner_channels = inner_channels

        self.barrier = Barrier("round_barrier", self.c_bar, self.c_out,
                               on_release=self._on_release)
        self.branch = MBranch(
            "done_branch", self.c_out, [self.c_rec, self.c_out_final()],
            selector=lambda tok: 1 if tok.done else 0,
        )
        self.sink = MTSink("digest_out", self._c_final)
        self.out_monitor = MTMonitor("out_mon", self._c_final)
        self.loop_monitor = MTMonitor("loop_mon", self.c_loop)

        self.sim = Simulator(max_settle_iterations=128, engine=engine)
        for comp in (
            self.c_new, self.c_loop, *inner_channels, self.c_bar,
            self.c_rec, self._c_final, self.c_out, self.store, self.source,
            self.merge, *self.mebs, *self.stages,
            self.barrier, self.branch, self.sink, self.out_monitor,
            self.loop_monitor,
        ):
            self.sim.add(comp)
        # The global round counter lives on the circuit, outside the
        # component tree, but is simulated state (every stage function
        # reads it): register it with the snapshot layer so
        # snapshot/restore/fork rewind it together with the barrier.
        # Restoring it is exactly a round-counter change, so the
        # release handler doubles as the load hook.
        self.sim.add_snapshot_hook(
            lambda: self._round_releases, self._on_release
        )
        self.sim.reset()

    def _make_stage_fn(self, stage_index: int):
        expected_step = stage_index * self.steps_per_stage
        # One-entry memo keyed on (token identity, thread): a stalled
        # token is re-presented unchanged across settle re-evaluations,
        # so the unrolled steps only run once per actual pass.  Sound
        # under the same contract as pure=True — the caches are cleared
        # at every point the closed-over context (round counter, message
        # store) changes, alongside the stage invalidate() calls.
        cache: list = [None, None, None]
        self._stage_caches.append(cache)

        def stage_fn(token: MD5Token, thread: int) -> MD5Token:
            if token is cache[0] and thread == cache[1]:
                return cache[2]
            if token.step_idx != expected_step:
                raise SimulationError(
                    f"stage {stage_index} received token at step "
                    f"{token.step_idx}, expected {expected_step}"
                )
            from repro.apps.md5.datapath import partial_round_logic

            result = partial_round_logic(
                token, thread, self.store, self.steps_per_stage,
                expected_round=self._round_releases,
            )
            cache[0], cache[1], cache[2] = token, thread, result
            return result

        return stage_fn

    def _clear_stage_caches(self) -> None:
        for cache in self._stage_caches:
            cache[0] = cache[1] = cache[2] = None

    def c_out_final(self) -> MTChannel:
        if not hasattr(self, "_c_final"):
            self._c_final = MTChannel("c_final", self.threads,
                                      MD5Token.WIDTH)
        return self._c_final

    # ------------------------------------------------------------------
    # global round counter (driven by the barrier)
    # ------------------------------------------------------------------
    def _on_release(self, releases: int) -> None:
        self._round_releases = releases
        # The round counter is context for every stage function: force
        # the stages through the next settle even though their channel
        # inputs did not change.
        self._clear_stage_caches()
        for stage in self.stages:
            stage.invalidate()

    @property
    def round_counter(self) -> int:
        """Completed round passes; the active round is ``counter % 4``."""
        return self._round_releases

    def _apply_round(self, token: MD5Token, thread: int) -> MD5Token:
        return round_logic(
            token, thread, self.store,
            expected_round=self._round_releases,
        )

    # ------------------------------------------------------------------
    # area inventory for the Table I benchmark
    # ------------------------------------------------------------------
    def area_components(self) -> list[Component]:
        """Everything counted in LEs (memories excluded, as in Table I)."""
        return [
            self.merge, *self.mebs, *self.stages,
            self.barrier, self.branch, self.store,
        ]

    def meb_components(self) -> list[Component]:
        return list(self.mebs)

    # ------------------------------------------------------------------
    # wave execution
    # ------------------------------------------------------------------
    def run_wave(
        self,
        h_states: Sequence[tuple[int, int, int, int]],
        blocks: Sequence[tuple[int, ...]],
        wave_ref: int,
        max_cycles: int = 2000,
    ) -> list[tuple[int, int, int, int]]:
        """Process one block per thread through four rounds.

        Returns the raw (pre-accumulation) final working state per
        thread; the caller applies the Davies–Meyer add against its own
        ``h_states``.
        """
        if len(h_states) != self.threads or len(blocks) != self.threads:
            raise ValueError("need one h-state and one block per thread")
        if self.round_counter % ref.N_ROUNDS != 0:
            raise SimulationError(
                "wave injected mid-round: previous wave incomplete"
            )
        base_count = self.sink.count
        for t in range(self.threads):
            self.store.write(t, wave_ref, blocks[t])
            self.source.push(
                t, MD5Token(tuple(h_states[t]), 0, wave_ref)
            )
        self._clear_stage_caches()
        for stage in self.stages:
            stage.invalidate()  # new message-store contents
        self.sim.run(
            until=lambda _s: self.sink.count == base_count + self.threads,
            max_cycles=max_cycles,
        )
        results: list[tuple[int, int, int, int] | None] = [None] * self.threads
        for _cycle, t, token in self.sink.received[base_count:]:
            results[t] = token.state
        if any(r is None for r in results):  # pragma: no cover - guarded by run
            raise SimulationError("wave finished with missing results")
        return results  # type: ignore[return-value]


class MD5Hasher:
    """Software driver hashing arbitrary byte strings on the circuit."""

    #: Dummy block content for threads shorter than the longest message.
    _DUMMY_BLOCK = tuple([0] * 16)

    def __init__(self, threads: int = 8, meb: str = "reduced",
                 round_stages: int = 1, engine: str | None = None):
        self.circuit = MD5Circuit(threads=threads, meb=meb,
                                  round_stages=round_stages, engine=engine)
        self.threads = threads
        self._wave_ref = 0

    def hash_batch(self, messages: Sequence[bytes]) -> list[str]:
        """Digest up to ``threads`` messages concurrently (one per thread).

        Shorter threads ride along on dummy blocks so the round barrier —
        which waits for *every* thread — never starves; their dummy
        results are discarded.
        """
        if len(messages) > self.threads:
            raise ValueError(
                f"batch of {len(messages)} exceeds {self.threads} threads"
            )
        per_thread_blocks = [
            ref.message_blocks(m) for m in messages
        ] + [[] for _ in range(self.threads - len(messages))]
        n_waves = max(len(b) for b in per_thread_blocks)
        h: list[tuple[int, int, int, int]] = [ref.IV] * self.threads
        for wave in range(n_waves):
            blocks = []
            live = []
            for t in range(self.threads):
                if wave < len(per_thread_blocks[t]):
                    blocks.append(per_thread_blocks[t][wave])
                    live.append(True)
                else:
                    blocks.append(self._DUMMY_BLOCK)
                    live.append(False)
            finals = self.circuit.run_wave(h, blocks, self._wave_ref)
            self._wave_ref += 1
            for t in range(self.threads):
                if live[t]:
                    h[t] = tuple(
                        (hv + sv) & ref.MASK32
                        for hv, sv in zip(h[t], finals[t])
                    )
        return [
            ref.digest_bytes(h[t]).hex() for t in range(len(messages))
        ]

    def hash_messages(self, messages: Sequence[bytes]) -> list[str]:
        """Digest any number of messages, batching by thread count."""
        out: list[str] = []
        for start in range(0, len(messages), self.threads):
            out.extend(self.hash_batch(messages[start : start + self.threads]))
        return out
