"""Design examples built on the multithreaded elastic primitives."""
