"""Generic directed-graph algorithms shared across the package.

Two consumers need the same machinery on very different graphs:

* :mod:`repro.kernel.engine` builds a component-level dependency graph
  (who combinationally reads whose outputs) and needs its strongly
  connected components in topological order to schedule evaluation;
* :mod:`repro.netlist.validate` checks a dataflow IR for bufferless
  cycles, which is exactly "does the storage-stripped graph contain a
  non-trivial SCC or a self-loop".

Nodes are integers ``0..n-1``; the graph is an adjacency list
``succ[i] -> iterable of successors``.  Everything here is iterative
(no recursion) so component graphs of arbitrary depth cannot hit the
interpreter's recursion limit.
"""

from __future__ import annotations

from typing import Sequence


def strongly_connected_components(
    succ: Sequence[Sequence[int]],
) -> list[list[int]]:
    """Tarjan's algorithm, iteratively.

    Returns the SCCs in **reverse topological order** of the
    condensation: every edge between two distinct SCCs points from a
    later list entry to an earlier one.  Node order within each SCC is
    ascending, so the output is deterministic for a given graph.
    """
    n = len(succ)
    index_of = [-1] * n       # discovery index, -1 = unvisited
    lowlink = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each work entry is (node, iterator position into succ[node]).
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            adjacent = succ[node]
            for i in range(pos, len(adjacent)):
                nxt = adjacent[i]
                if index_of[nxt] == -1:
                    work[-1] = (node, i + 1)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if on_stack[nxt] and index_of[nxt] < lowlink[node]:
                    lowlink[node] = index_of[nxt]
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                scc: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc.append(member)
                    if member == node:
                        break
                scc.sort()
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return sccs


def condensation_order(
    succ: Sequence[Sequence[int]],
) -> list[list[int]]:
    """SCCs in **forward topological order** (writers before readers)."""
    return list(reversed(strongly_connected_components(succ)))


def cyclic_nodes(succ: Sequence[Sequence[int]]) -> list[int]:
    """Nodes that lie on at least one directed cycle.

    A node is cyclic when its SCC has more than one member, or when it
    carries a self-loop.  Returned in ascending order.
    """
    out: set[int] = set()
    for scc in strongly_connected_components(succ):
        if len(scc) > 1:
            out.update(scc)
        else:
            node = scc[0]
            if node in succ[node]:
                out.add(node)
    return sorted(out)
