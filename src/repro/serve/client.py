"""A stdlib-only client for the campaign service HTTP API.

The tests, the load benchmark (``benchmarks/bench_service.py``) and the
CI smoke job all talk to the server through this one wrapper, so the
client-visible contract is exercised end to end everywhere it is used.

The client retries transient failures — connection errors, timeouts
and 5xx responses — with exponential backoff + jitter (``retries=`` /
``backoff_s=`` constructor knobs).  Idempotent GETs are trivially safe
to retry; ``submit`` is too, because result-store dedup makes a
double-accepted campaign free (the rerun answers from the store).
``cancel`` is deliberately not retried.  Structured 4xx errors
(:class:`ServiceError` with a spec/quota body) are never retried —
they are answers, not failures.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping


class ServiceError(RuntimeError):
    """A non-2xx response from the campaign service.

    ``status`` is the HTTP status code; ``payload`` the decoded JSON
    body (the structured ``{path, field, reason}`` spec error for 400s,
    the ``{kind, reason, limit, actual}`` quota error for 429s).
    """

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload}")


class ServiceClient:
    """Minimal JSON-over-HTTP client for one service base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.1,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s

    def _retrying(self, call: Callable[[], Any]) -> Any:
        """Run *call*, retrying transient failures with backoff.

        Retryable: 5xx :class:`ServiceError`, connection-level
        ``OSError`` (``urllib.error.URLError`` included) and socket
        timeouts.  4xx errors re-raise immediately — they are the
        service's answer, not a transport fault.  Backoff doubles per
        attempt with multiplicative jitter (0.5x-1.5x) so a thundering
        herd of clients decorrelates.
        """
        attempt = 0
        while True:
            try:
                return call()
            except ServiceError as exc:
                if exc.status < 500 or attempt >= self.retries:
                    raise
            except (TimeoutError, OSError):
                if attempt >= self.retries:
                    raise
            attempt += 1
            time.sleep(
                self.backoff_s
                * (2 ** (attempt - 1))
                * (0.5 + random.random())
            )

    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> Any:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except Exception:
                payload = {"error": {"reason": str(exc)}}
            raise ServiceError(exc.code, payload) from None

    # -- the API --------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._retrying(lambda: self._request("GET", "/healthz"))

    def families(self) -> dict[str, Any]:
        return self._retrying(lambda: self._request("GET", "/families"))

    def submit(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """POST a campaign spec (the JSON/TOML structure); returns the
        job status snapshot (its ``id`` is the job handle).

        Retried on transient failures like the GETs: a duplicate
        acceptance costs nothing (dedup) and a lost-response resubmit
        beats a lost campaign.
        """
        return self._retrying(
            lambda: self._request("POST", "/campaigns", body=spec)
        )

    def campaigns(self) -> list[dict[str, Any]]:
        return self._retrying(
            lambda: self._request("GET", "/campaigns")["campaigns"]
        )

    def status(self, job_id: str) -> dict[str, Any]:
        return self._retrying(
            lambda: self._request("GET", f"/campaigns/{job_id}")
        )

    def report(self, job_id: str, wait: float = 0) -> dict[str, Any]:
        path = f"/campaigns/{job_id}/report"
        if wait:
            path += f"?wait={wait}"
        return self._retrying(lambda: self._request("GET", path))

    def cancel(self, job_id: str) -> dict[str, Any]:
        # Not retried: a lost response leaves cancellation state
        # ambiguous, and re-POSTing can race job completion.
        return self._request("POST", f"/campaigns/{job_id}/cancel")

    def metrics(self) -> str:
        """``GET /metrics``: the Prometheus text exposition, verbatim."""

        def fetch() -> str:
            request = urllib.request.Request(
                f"{self.base_url}/metrics", method="GET"
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return response.read().decode("utf-8")
            except urllib.error.HTTPError as exc:
                raise ServiceError(exc.code, exc.read().decode()) from None

        return self._retrying(fetch)

    def trace(self, job_id: str) -> list[dict[str, Any]]:
        """``GET /campaigns/<id>/trace``: the merged span list."""

        def fetch() -> list[dict[str, Any]]:
            request = urllib.request.Request(
                f"{self.base_url}/campaigns/{job_id}/trace", method="GET"
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return [
                        json.loads(line)
                        for line in response.read().splitlines()
                        if line.strip()
                    ]
            except urllib.error.HTTPError as exc:
                try:
                    payload = json.loads(exc.read())
                except Exception:
                    payload = {"error": {"reason": str(exc)}}
                raise ServiceError(exc.code, payload) from None

        return self._retrying(fetch)

    def events(self, job_id: str, timeout: float | None = None):
        """``GET /campaigns/<id>/events``: yield progress events live.

        A generator over the server's NDJSON stream; ends after the
        terminal ``{"event": "job", "state": ...}`` event (the server
        closes the connection).  *timeout* is the socket timeout for
        the whole stream (defaults to the client timeout) — size it to
        the campaign, not to the inter-event gap.  Only establishing
        the stream is retried; a drop mid-stream surfaces to the caller
        (reconnecting replays the full event log from seq 0).
        """
        stream_timeout = timeout if timeout is not None else self.timeout

        def open_stream():
            request = urllib.request.Request(
                f"{self.base_url}/campaigns/{job_id}/events", method="GET"
            )
            try:
                return urllib.request.urlopen(
                    request, timeout=stream_timeout
                )
            except urllib.error.HTTPError as exc:
                try:
                    payload = json.loads(exc.read())
                except Exception:
                    payload = {"error": {"reason": str(exc)}}
                raise ServiceError(exc.code, payload) from None

        response = self._retrying(open_stream)
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    # -- conveniences ---------------------------------------------------

    def run(
        self, spec: Mapping[str, Any], timeout: float = 300.0
    ) -> dict[str, Any]:
        """Submit and block until the report is ready (polling + wait)."""
        job_id = self.submit(spec)["id"]
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not finished")
            try:
                return self.report(job_id, wait=min(remaining, 10.0))
            except ServiceError as exc:
                if exc.status != 409:
                    raise

    def wait_ready(self, timeout: float = 30.0) -> dict[str, Any]:
        """Poll ``/healthz`` until the server answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ServiceError, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
