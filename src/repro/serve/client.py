"""A stdlib-only client for the campaign service HTTP API.

The tests, the load benchmark (``benchmarks/bench_service.py``) and the
CI smoke job all talk to the server through this one wrapper, so the
client-visible contract is exercised end to end everywhere it is used.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping


class ServiceError(RuntimeError):
    """A non-2xx response from the campaign service.

    ``status`` is the HTTP status code; ``payload`` the decoded JSON
    body (the structured ``{path, field, reason}`` spec error for 400s).
    """

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload}")


class ServiceClient:
    """Minimal JSON-over-HTTP client for one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> Any:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except Exception:
                payload = {"error": {"reason": str(exc)}}
            raise ServiceError(exc.code, payload) from None

    # -- the API --------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def families(self) -> dict[str, Any]:
        return self._request("GET", "/families")

    def submit(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """POST a campaign spec (the JSON/TOML structure); returns the
        job status snapshot (its ``id`` is the job handle)."""
        return self._request("POST", "/campaigns", body=spec)

    def campaigns(self) -> list[dict[str, Any]]:
        return self._request("GET", "/campaigns")["campaigns"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/campaigns/{job_id}")

    def report(self, job_id: str, wait: float = 0) -> dict[str, Any]:
        path = f"/campaigns/{job_id}/report"
        if wait:
            path += f"?wait={wait}"
        return self._request("GET", path)

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/campaigns/{job_id}/cancel")

    def metrics(self) -> str:
        """``GET /metrics``: the Prometheus text exposition, verbatim."""
        request = urllib.request.Request(
            f"{self.base_url}/metrics", method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, exc.read().decode()) from None

    def trace(self, job_id: str) -> list[dict[str, Any]]:
        """``GET /campaigns/<id>/trace``: the merged span list."""
        request = urllib.request.Request(
            f"{self.base_url}/campaigns/{job_id}/trace", method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return [
                    json.loads(line)
                    for line in response.read().splitlines()
                    if line.strip()
                ]
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except Exception:
                payload = {"error": {"reason": str(exc)}}
            raise ServiceError(exc.code, payload) from None

    def events(self, job_id: str, timeout: float | None = None):
        """``GET /campaigns/<id>/events``: yield progress events live.

        A generator over the server's NDJSON stream; ends after the
        terminal ``{"event": "job", "state": ...}`` event (the server
        closes the connection).  *timeout* is the socket timeout for
        the whole stream (defaults to the client timeout) — size it to
        the campaign, not to the inter-event gap.
        """
        request = urllib.request.Request(
            f"{self.base_url}/campaigns/{job_id}/events", method="GET"
        )
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else self.timeout
            )
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except Exception:
                payload = {"error": {"reason": str(exc)}}
            raise ServiceError(exc.code, payload) from None
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    # -- conveniences ---------------------------------------------------

    def run(
        self, spec: Mapping[str, Any], timeout: float = 300.0
    ) -> dict[str, Any]:
        """Submit and block until the report is ready (polling + wait)."""
        job_id = self.submit(spec)["id"]
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not finished")
            try:
                return self.report(job_id, wait=min(remaining, 10.0))
            except ServiceError as exc:
                if exc.status != 409:
                    raise

    def wait_ready(self, timeout: float = 30.0) -> dict[str, Any]:
        """Poll ``/healthz`` until the server answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ServiceError, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
