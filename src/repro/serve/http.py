"""The HTTP/JSON front end: stdlib ``http.server`` over a JobService.

Transport only — every route is a thin translation between HTTP and
the :mod:`repro.sweep.jobs` API, so the CLI and the server can never
disagree about behaviour.  Spec validation errors surface as HTTP 400
with the :meth:`repro.sweep.spec.SpecError.to_dict` body — the same
``{path, field, reason}`` structure the CLI renders as text — and
admission-control rejections as HTTP 429 with the
:meth:`repro.sweep.jobs.QuotaError.to_dict` body.

The server is a ``ThreadingHTTPServer``: request threads only enqueue
jobs and read status snapshots; all simulation happens in the
service's dispatcher/worker processes.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.sweep.jobs import JobService, QuotaError
from repro.sweep.registry import registry_payload
from repro.sweep.spec import SpecError

#: Longest a ``?wait=`` report request may block, seconds.
MAX_WAIT_S = 300.0

#: Longest an ``/events`` stream waits between events, seconds.
EVENTS_TIMEOUT_S = 300.0

_CAMPAIGN_ROUTE = re.compile(
    r"^/campaigns/(?P<job_id>[\w.\-]+)"
    r"(?P<rest>/report|/cancel|/trace|/events)?$"
)


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's JobService."""

    server_version = "repro-serve/1.0"
    #: Set by :func:`make_server` on the handler subclass.
    service: JobService = None
    quiet: bool = True

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, reason: str, **extra: Any) -> None:
        self._send_json(status, {"error": {"reason": reason, **extra}})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw)

    def _split_query(self) -> tuple[str, dict[str, str]]:
        path, _, query = self.path.partition("?")
        params: dict[str, str] = {}
        for part in query.split("&"):
            if part:
                key, _, value = part.partition("=")
                params[key] = value
        return path, params

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:
        path, params = self._split_query()
        if path == "/healthz":
            stats = self.service.stats()
            stats["status"] = "ok"
            return self._send_json(200, stats)
        if path == "/metrics":
            body = self.service.render_metrics().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", MetricsRegistry.CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return None
        if path == "/families":
            return self._send_json(200, registry_payload())
        if path == "/campaigns":
            return self._send_json(
                200, {"campaigns": self.service.list_jobs()}
            )
        match = _CAMPAIGN_ROUTE.match(path)
        if match and match.group("rest") in (
            None, "/report", "/trace", "/events",
        ):
            job_id = match.group("job_id")
            try:
                status = self.service.status(job_id)
            except KeyError:
                return self._error(404, f"unknown job id {job_id!r}")
            rest = match.group("rest")
            if rest is None:
                return self._send_json(200, status)
            if rest == "/report":
                return self._report(job_id, status, params)
            if rest == "/trace":
                return self._trace(job_id)
            return self._events(job_id)
        return self._error(404, f"no such route: GET {path}")

    def _trace(self, job_id: str) -> None:
        """The job's merged span list as newline-delimited JSON."""
        spans = self.service.trace(job_id)
        body = b"".join(
            json.dumps(span, default=str).encode("utf-8") + b"\n"
            for span in spans
        )
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _events(self, job_id: str) -> None:
        """Stream progress events as NDJSON until the job terminates.

        No ``Content-Length``: the response body is delimited by
        connection close (this handler speaks HTTP/1.0 by default), so
        plain ``urllib`` / ``curl -N`` consumers read line-by-line
        until EOF.  Each line is one JSON event; the terminal
        ``{"event": "job", "state": ...}`` line ends the stream.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for event in self.service.events(
                job_id, timeout=EVENTS_TIMEOUT_S
            ):
                self.wfile.write(
                    json.dumps(event, default=str).encode("utf-8") + b"\n"
                )
                self.wfile.flush()
        except (BrokenPipeError, ConnectionError):  # client went away
            pass
        except TimeoutError:
            pass  # idle too long: close the stream, client may reconnect

    def _report(
        self, job_id: str, status: dict[str, Any], params: dict[str, str]
    ) -> None:
        wait = min(float(params.get("wait", 0) or 0), MAX_WAIT_S)
        job = self.service.job(job_id)
        if wait and not job.done_event.is_set():
            job.done_event.wait(wait)
        if job.report is None:
            return self._error(
                409,
                f"job {job_id} has no report yet "
                f"(state {job.state!r}; poll or pass ?wait=seconds)",
                state=job.state,
            )
        return self._send_json(200, job.report)

    def do_POST(self) -> None:
        path, _params = self._split_query()
        if path == "/campaigns":
            try:
                data = self._read_body()
            except ValueError as exc:
                return self._error(400, f"invalid JSON body: {exc}")
            try:
                job_id = self.service.submit(data)
            except SpecError as exc:
                return self._send_json(400, {"error": exc.to_dict()})
            except QuotaError as exc:
                return self._send_json(429, {"error": exc.to_dict()})
            return self._send_json(201, self.service.status(job_id))
        match = _CAMPAIGN_ROUTE.match(path)
        if match and match.group("rest") == "/cancel":
            job_id = match.group("job_id")
            try:
                cancelled = self.service.cancel(job_id)
            except KeyError:
                return self._error(404, f"unknown job id {job_id!r}")
            payload = self.service.status(job_id)
            payload["cancelled"] = cancelled
            return self._send_json(200, payload)
        return self._error(404, f"no such route: POST {path}")


def make_server(
    service: JobService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Bind a campaign-service HTTP server (``port=0`` picks a free one).

    The caller owns both lifecycles: ``serve_forever()`` /
    ``shutdown()`` for the HTTP side, ``service.close()`` for the
    workers.
    """
    handler = type(
        "BoundServiceHandler",
        (ServiceHandler,),
        {"service": service, "quiet": quiet},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
