"""CLI for the campaign service: ``python -m repro.serve``.

Starts the HTTP front end over a long-running
:class:`repro.sweep.jobs.JobService`:

* ``--workers N`` — persistent worker-pool size (0 = inline execution
  in the dispatcher thread; designs stay cached either way).
* ``--store PATH`` — persist the result store as append-only JSONL at
  PATH, so dedup survives restarts.  ``--memory-store`` keeps
  memoization in RAM only; the default is no dedup at all.
* ``--engine E`` — settle-engine override applied to every job.
* ``--host/--port`` — bind address (``--port 0`` picks a free port;
  the chosen one is printed on stdout).
* ``--retries N`` / ``--timeout-s S`` — default retry budget for
  retryable scenario failures and the deadline of last resort (see
  ``docs/service.md`` "Reliability").
* ``--max-queued-jobs N`` / ``--max-scenarios-per-job N`` — admission
  quotas; over-limit submissions get HTTP 429.

The process runs until SIGINT/SIGTERM and **drains gracefully**: new
submissions are rejected, accepted jobs finish (established event
streams keep delivering until their terminal line), the store is
flushed, then the workers shut down.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.serve.http import make_server
from repro.sweep.jobs import JobService


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running campaign service over repro.sweep.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8035,
                        help="bind port; 0 picks a free one (default: 8035)")
    parser.add_argument("--workers", type=int, default=2,
                        help="persistent worker processes; 0 = inline "
                             "(default: 2)")
    parser.add_argument("--engine", default=None,
                        help="settle engine override for every job")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="persist the dedup result store as JSONL "
                             "at PATH")
    parser.add_argument("--memory-store", action="store_true",
                        help="in-memory dedup store (no persistence)")
    parser.add_argument("--retries", type=int, default=1,
                        help="default retry budget for retryable scenario "
                             "failures (worker death, deadline); "
                             "spec/submit values override (default: 1)")
    parser.add_argument("--timeout-s", type=float, default=None,
                        metavar="S",
                        help="fallback per-scenario deadline in seconds "
                             "when neither the spec nor duration history "
                             "provides one (default: none)")
    parser.add_argument("--max-queued-jobs", type=int, default=None,
                        metavar="N",
                        help="reject submissions (HTTP 429) once N jobs "
                             "are queued (default: unlimited)")
    parser.add_argument("--max-scenarios-per-job", type=int, default=None,
                        metavar="N",
                        help="reject campaigns expanding past N scenarios "
                             "(HTTP 429; default: unlimited)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    args = parser.parse_args(argv)

    store = args.store if args.store else (True if args.memory_store else None)
    service = JobService(
        workers=args.workers, engine=args.engine, store=store,
        retries=args.retries, default_timeout_s=args.timeout_s,
        max_queued_jobs=args.max_queued_jobs,
        max_scenarios_per_job=args.max_scenarios_per_job,
    )
    server = make_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[:2]
    mode = f"{args.workers} worker(s)" if args.workers else "inline"
    dedup = (
        f"store={args.store}" if args.store
        else ("store=memory" if args.memory_store else "store=off")
    )
    print(
        f"repro.serve listening on http://{host}:{port} "
        f"({mode}, {dedup})",
        flush=True,
    )

    # SIGTERM/SIGINT start the drain.  server.shutdown() must not run
    # on the thread executing serve_forever() (it would deadlock), and
    # a signal handler runs exactly there — so hand it to a thread.
    def request_stop(_signum, _frame) -> None:
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, request_stop)
        except ValueError:  # not the main thread (embedded/tests)
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        server.shutdown()
        # Accepting is stopped but established connections (event
        # streams) still run on their daemon threads: drain the
        # service — finish accepted jobs, flush the store, let streams
        # deliver terminal lines — before tearing the sockets down.
        drained = service.shutdown(drain=True)
        server.server_close()
        if drained is not None:
            print(
                f"repro.serve stopped (drained in {drained:.2f}s)",
                flush=True,
            )
        else:
            print("repro.serve stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
