"""CLI for the campaign service: ``python -m repro.serve``.

Starts the HTTP front end over a long-running
:class:`repro.sweep.jobs.JobService`:

* ``--workers N`` — persistent worker-pool size (0 = inline execution
  in the dispatcher thread; designs stay cached either way).
* ``--store PATH`` — persist the result store as append-only JSONL at
  PATH, so dedup survives restarts.  ``--memory-store`` keeps
  memoization in RAM only; the default is no dedup at all.
* ``--engine E`` — settle-engine override applied to every job.
* ``--host/--port`` — bind address (``--port 0`` picks a free port;
  the chosen one is printed on stdout).

The process runs until SIGINT/SIGTERM and drains cleanly: the HTTP
server stops accepting, then the job service shuts its workers down.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.http import make_server
from repro.sweep.jobs import JobService


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running campaign service over repro.sweep.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8035,
                        help="bind port; 0 picks a free one (default: 8035)")
    parser.add_argument("--workers", type=int, default=2,
                        help="persistent worker processes; 0 = inline "
                             "(default: 2)")
    parser.add_argument("--engine", default=None,
                        help="settle engine override for every job")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="persist the dedup result store as JSONL "
                             "at PATH")
    parser.add_argument("--memory-store", action="store_true",
                        help="in-memory dedup store (no persistence)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    args = parser.parse_args(argv)

    store = args.store if args.store else (True if args.memory_store else None)
    service = JobService(
        workers=args.workers, engine=args.engine, store=store
    )
    server = make_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[:2]
    mode = f"{args.workers} worker(s)" if args.workers else "inline"
    dedup = (
        f"store={args.store}" if args.store
        else ("store=memory" if args.memory_store else "store=off")
    )
    print(
        f"repro.serve listening on http://{host}:{port} "
        f"({mode}, {dedup})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        print("repro.serve stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
