"""The campaign service: ``repro.sweep`` behind a long-running HTTP API.

``python -m repro.serve`` starts a stdlib-only HTTP/JSON front end over
a :class:`repro.sweep.jobs.JobService` — an async job queue, a
persistent worker pool with cross-job design-cache affinity, and a
persisted result store that answers repeated scenarios from memory
instead of re-simulating them.

Endpoints (see ``docs/service.md`` for the full reference):

========================================  ==================================
``POST /campaigns``                       submit a campaign spec (JSON body)
``GET /campaigns``                        list jobs
``GET /campaigns/<id>``                   job status
``GET /campaigns/<id>/report``            aggregated report (``?wait=S``)
``POST /campaigns/<id>/cancel``           cancel a job
``GET /families``                         the design-family registry
``GET /healthz``                          queue depth, workers, cache rates
========================================  ==================================

:class:`repro.serve.client.ServiceClient` is the matching stdlib-only
client used by the tests, the load benchmark and the CI smoke job.
"""

from repro.serve.client import ServiceClient, ServiceError
from repro.serve.http import make_server

__all__ = ["ServiceClient", "ServiceError", "make_server"]
