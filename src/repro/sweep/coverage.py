"""Structural-state coverage maps over the columnar kernel stores.

The grids of a classic campaign sample the handshake-state space at
fixed points; the fuzzer (:mod:`repro.sweep.fuzz`) instead *steers*
stimulus toward states the grids never reach.  Steering needs a cheap,
deterministic notion of "state": this module defines it as a tuple of
per-component **structural signatures** read straight off the slot
blocks every sequential component already keeps columnar —

========================  ==============================================
component                 signature (and enumerable state space)
========================  ==============================================
``FullMEB``               per-thread queue occupancies, each 0..SLOTS —
                          ``(SLOTS+1)^S`` patterns
``ReducedMEB``            per-thread EMPTY/HALF/FULL states with the
                          ≤ 1 FULL invariant — ``2^S + S·2^(S-1)`` legal
                          vectors
``Barrier``               per-thread IDLE/WAIT/FREE FSM states plus the
                          global ``go`` bit — bounded by ``2·3^S``
``MTVariableLatencyUnit`` ``(busy, owner)`` — idle or owned by one of S
                          threads, ``S + 1`` states
========================  ==============================================

Because every one of these blocks is slot-backed (re-homed into the
:class:`~repro.kernel.slots.SeqStore` under the compiled engine, a
private list otherwise — read through the same ``(_sstore, _sq)``
indirection either way), observation is a handful of list reads per
cycle, not per-component introspection.  A :class:`CoverageMap`
registers as a simulator observer (fired after every settle phase;
observers disable settle+tick fusion, which is semantics-preserving —
the engines stay cycle-identical) and accumulates:

* **local coverage** — per component, the set of signatures seen, with
  the enumerable space above as denominator (:attr:`coverage_pct`);
* **joint coverage** — the set of whole-design signature tuples
  (:attr:`new_states`), the fuzzer's novelty signal;
* a canonical :meth:`digest` over the joint set, so two runs can be
  compared bit-for-bit across worker counts and engines.

Everything here is deterministic given the stimulus: sets are hashed
into sorted canonical forms before export and no wall-clock or id()
values leak into the summaries.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Callable

from repro.core.barrier import Barrier
from repro.core.function import MTVariableLatencyUnit
from repro.core.meb import FullMEB, ReducedMEB
from repro.kernel.simulator import Simulator


@dataclasses.dataclass(frozen=True)
class Probe:
    """One observed component: a signature reader plus its state space."""

    path: str
    kind: str
    extract: Callable[[], tuple]
    space: int


def _probe_full_meb(comp: FullMEB) -> Probe:
    threads = comp.threads
    rng = range(threads)

    def extract() -> tuple:
        sstore, base = comp._sstore, comp._sq
        return tuple(len(sstore[base + t]) for t in rng)

    return Probe(
        path=comp.path,
        kind="full_meb",
        extract=extract,
        space=(comp.SLOTS_PER_THREAD + 1) ** threads,
    )


def _probe_reduced_meb(comp: ReducedMEB) -> Probe:
    threads = comp.threads
    rng = range(threads)

    def extract() -> tuple:
        sstore, base = comp._sstore, comp._sq + threads
        return tuple(sstore[base + t] for t in rng)

    # EMPTY/HALF per thread freely, at most one thread FULL (the MEB's
    # own post-commit invariant): 2^S no-FULL vectors plus S·2^(S-1)
    # one-FULL vectors.
    space = 2**threads + threads * 2 ** (threads - 1)
    return Probe(
        path=comp.path, kind="reduced_meb", extract=extract, space=space
    )


def _probe_barrier(comp: Barrier) -> Probe:
    threads = comp.threads
    rng = range(threads)

    def extract() -> tuple:
        sstore, base = comp._sstore, comp._sq
        fsm = tuple(sstore[base + t] for t in rng)
        return fsm + (sstore[base + threads + 1],)

    # Upper bound: IDLE/WAIT/FREE per thread × the go bit (the arrival
    # counter is a function of the FSM vector).
    return Probe(
        path=comp.path,
        kind="barrier",
        extract=extract,
        space=2 * 3**threads,
    )


def _probe_vl_unit(comp: MTVariableLatencyUnit) -> Probe:
    def extract() -> tuple:
        sstore, base = comp._sstore, comp._sq
        return (sstore[base], sstore[base + 1])

    # Idle, or busy on behalf of exactly one of S threads.
    return Probe(
        path=comp.path,
        kind="vl_unit",
        extract=extract,
        space=comp.threads + 1,
    )


#: Component classes with a structural-signature probe.  Subclasses
#: inherit their base's probe (fault injectors keep the same storage
#: layout), most-derived match first.
_PROBE_FACTORIES: tuple[tuple[type, Callable[[Any], Probe]], ...] = (
    (FullMEB, _probe_full_meb),
    (ReducedMEB, _probe_reduced_meb),
    (Barrier, _probe_barrier),
    (MTVariableLatencyUnit, _probe_vl_unit),
)


def structural_probes(sim: Simulator) -> list[Probe]:
    """Build signature probes for every probeable component of *sim*.

    Deterministically ordered by component path, so the joint-signature
    tuples (and their digest) are reproducible across processes.
    """
    probes: list[Probe] = []
    for comp in sim.components:
        for cls, factory in _PROBE_FACTORIES:
            if isinstance(comp, cls):
                probes.append(factory(comp))
                break
    probes.sort(key=lambda p: p.path)
    return probes


class CoverageMap:
    """Accumulates structural-state coverage for one simulator.

    Use as a context-managed observer around a measurement window::

        cov = CoverageMap(sim)
        cov.attach()          # registers the per-cycle observer
        ... drive stimulus (forks included — observers survive rewind)
        cov.detach()          # ALWAYS detach: reusable designs keep
                              # their simulator across scenarios

    The map never mutates the simulation; it only reads the slot-backed
    state blocks after each settle.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self.probes = structural_probes(sim)
        self.local: list[set] = [set() for _ in self.probes]
        self.joint: set[tuple] = set()
        self._extractors = [p.extract for p in self.probes]
        self._attached = False

    # -- observation ----------------------------------------------------

    def observe(self, _sim: Simulator | None = None) -> None:
        """Record the current joint structural signature (one pass)."""
        sig = tuple(extract() for extract in self._extractors)
        for local, part in zip(self.local, sig):
            local.add(part)
        self.joint.add(sig)

    def attach(self) -> "CoverageMap":
        """Start observing every settled cycle (records the now-state too)."""
        if not self._attached:
            self._sim.add_observer(self.observe)
            self._attached = True
            self.observe()
        return self

    def detach(self) -> None:
        """Stop observing (re-enables settle+tick fusion for the sim)."""
        if self._attached:
            self._sim.remove_observer(self.observe)
            self._attached = False

    # -- accounting -----------------------------------------------------

    @property
    def space(self) -> int:
        """Total enumerable signature space across all probes."""
        return sum(p.space for p in self.probes)

    @property
    def covered(self) -> int:
        """Distinct local signatures seen, summed across probes."""
        return sum(len(s) for s in self.local)

    @property
    def coverage_pct(self) -> float:
        """Local coverage as a percentage of the enumerable space."""
        space = self.space
        if not space:
            return 0.0
        return round(100.0 * self.covered / space, 4)

    @property
    def new_states(self) -> int:
        """Distinct *joint* (whole-design) signatures seen."""
        return len(self.joint)

    def local_counts(self) -> dict[str, int]:
        """Per-component signature counts, keyed by component path."""
        return {
            probe.path: len(local)
            for probe, local in zip(self.probes, self.local)
        }

    def digest(self) -> str:
        """Canonical SHA-256 over the sorted joint signature set.

        Signatures contain only ints, bools, strings and ``None``, so
        ``repr`` is a stable canonical form; sorting removes any
        visit-order dependence.  Two runs with equal digests saw exactly
        the same set of structural states.
        """
        payload = "\n".join(sorted(repr(sig) for sig in self.joint))
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> dict[str, Any]:
        """JSON-safe coverage summary (the metrics-row building block)."""
        return {
            "coverage_pct": self.coverage_pct,
            "new_states": self.new_states,
            "signatures_covered": self.covered,
            "signature_space": self.space,
            "coverage_digest": self.digest(),
            "per_component": self.local_counts(),
        }
