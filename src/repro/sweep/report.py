"""Campaign aggregation: one JSON structure, one markdown table.

:func:`aggregate` folds the runner's per-scenario rows together with
the campaign metadata into a single JSON-serializable report — the
artifact CI uploads and the regression-diffable record of a campaign.
:func:`render_markdown` turns the same structure into a human-readable
summary: campaign header, per-family tables of throughput/cost numbers,
and a failure section quoting each error.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Any, Mapping, Sequence

from repro.sweep.spec import CampaignSpec


def aggregate(
    spec: CampaignSpec,
    rows: Sequence[Mapping[str, Any]],
    engine: str | None,
    workers: int,
    elapsed_s: float,
) -> dict[str, Any]:
    """Fold scenario rows into the campaign report structure."""
    ok = [r for r in rows if r.get("status") == "ok"]
    failed = [r for r in rows if r.get("status") != "ok"]
    families: dict[str, dict[str, Any]] = {}
    for row in rows:
        fam = families.setdefault(
            row["family"], {"scenarios": 0, "ok": 0, "failed": 0}
        )
        fam["scenarios"] += 1
        fam["ok" if row.get("status") == "ok" else "failed"] += 1
    summary: dict[str, Any] = {
        "scenarios": len(rows),
        "ok": len(ok),
        "failed": len(failed),
        "families": families,
        "elapsed_s": round(elapsed_s, 3),
    }
    cycles = [
        r["metrics"]["cycles"]
        for r in ok
        if isinstance(r.get("metrics", {}).get("cycles"), int)
    ]
    if cycles:
        summary["total_cycles"] = sum(cycles)
    # Coverage-bearing rows (the fuzz family) fold into campaign-level
    # coverage; fault-oracle rows fold into a pass rate.  Both are
    # deterministic functions of the rows, so they survive the
    # canonical-report comparison and gate in CI like throughput.
    covered = [
        r["metrics"]
        for r in ok
        if isinstance(r.get("metrics", {}).get("coverage_pct"), (int, float))
    ]
    if covered:
        summary["coverage_pct"] = round(
            sum(m["coverage_pct"] for m in covered) / len(covered), 4
        )
        summary["new_states"] = sum(
            int(m.get("new_states", 0)) for m in covered
        )
    oracles = [
        r["metrics"] for r in ok if "oracle_ok" in r.get("metrics", {})
    ]
    if oracles:
        passed = sum(1 for m in oracles if m["oracle_ok"])
        summary["faults_survived"] = sum(
            int(m.get("faults_survived", 0)) for m in oracles
        )
        summary["fault_oracles"] = {
            "scenarios": len(oracles),
            "passed": passed,
            "pass_rate": round(passed / len(oracles), 4),
        }
    return {
        "campaign": {
            "name": spec.name,
            "seed": spec.seed,
            "engine": engine,
            "workers": workers,
        },
        "summary": summary,
        "scenarios": list(rows),
    }


#: Report fields that legitimately differ between two runs of the same
#: campaign: wall-clock timings, worker placement, cache provenance,
#: retry counts and profiler attachments (all timing, no metrics).
_VOLATILE_SUMMARY = ("elapsed_s", "dedup_hits")
_VOLATILE_ROW = (
    "shard", "duration_s", "design_cache", "cached", "ensemble", "profile",
    "attempts",
)


def canonical_report(report: Mapping[str, Any]) -> dict[str, Any]:
    """Strip a campaign report down to its run-invariant content.

    Two runs of the same spec — CLI vs HTTP, serial vs sharded, cold
    vs memoized — must produce *equal* canonical reports; this is the
    single definition of "identical modulo timestamps/placement" that
    the parity tests and the CI smoke job compare.
    """
    campaign = {
        k: v for k, v in report["campaign"].items() if k != "workers"
    }
    summary = {
        k: v
        for k, v in report["summary"].items()
        if k not in _VOLATILE_SUMMARY
    }
    scenarios = [
        {k: v for k, v in row.items() if k not in _VOLATILE_ROW}
        for row in report["scenarios"]
    ]
    return {"campaign": campaign, "summary": summary, "scenarios": scenarios}


_THROUGHPUT_COLS = (
    ("cycles", "cycles"),
    ("transfers", "transfers"),
    ("utilization", "util"),
    ("fairness", "fairness"),
    ("cycles_per_digest", "cyc/digest"),
    ("ipc", "ipc"),
    ("retired", "retired"),
    ("coverage_pct", "cov %"),
    ("baseline_coverage_pct", "grid cov %"),
    ("new_states", "states"),
    ("mutants_kept", "kept"),
    ("outcome", "outcome"),
    ("oracle_ok", "oracle"),
    ("faults_survived", "survived"),
    ("area_le", "area LE"),
    ("fmax_mhz", "fmax MHz"),
)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_markdown(report: Mapping[str, Any]) -> str:
    """Render an aggregated campaign report as GitHub-flavored markdown."""
    campaign = report["campaign"]
    summary = report["summary"]
    out = io.StringIO()
    out.write(f"# Campaign `{campaign['name']}`\n\n")
    out.write(
        f"seed {campaign['seed']} · engine "
        f"`{campaign['engine'] or 'default'}` · {campaign['workers']} "
        f"worker(s) · {summary['scenarios']} scenarios "
        f"({summary['ok']} ok, {summary['failed']} failed) · "
        f"{summary['elapsed_s']}s\n\n"
    )
    by_family: dict[str, list[Mapping[str, Any]]] = {}
    for row in report["scenarios"]:
        by_family.setdefault(row["family"], []).append(row)
    for family, rows in by_family.items():
        ok_rows = [r for r in rows if r.get("status") == "ok"]
        out.write(f"## {family}\n\n")
        if not ok_rows:
            out.write("(no successful scenarios)\n\n")
            continue
        cols = [
            (key, label)
            for key, label in _THROUGHPUT_COLS
            if any(key in r["metrics"] for r in ok_rows)
        ]
        out.write(
            "| scenario | " + " | ".join(label for _k, label in cols)
            + " |\n"
        )
        out.write("|---" * (len(cols) + 1) + "|\n")
        for row in ok_rows:
            metrics = row["metrics"]
            cells = [
                _fmt(metrics[key]) if key in metrics else ""
                for key, _label in cols
            ]
            out.write(f"| `{row['key']}` | " + " | ".join(cells) + " |\n")
        out.write("\n")
    if summary["failed"]:
        out.write("## Failures\n\n")
        for row in report["scenarios"]:
            if row.get("status") != "ok":
                out.write(
                    f"* `{row['key']}` — {row['status']}\n\n```\n"
                    f"{row.get('error', '').strip()}\n```\n\n"
                )
    profile = _render_profile(report["scenarios"])
    if profile:
        out.write(profile)
    return out.getvalue()


#: Rows in the aggregated markdown hot list (per-scenario reports carry
#: up to :data:`repro.sweep.runner.PROFILE_TOP` components each).
_PROFILE_TOP = 10


def _render_profile(rows: Sequence[Mapping[str, Any]]) -> str:
    """Markdown profile section folded across every profiled row.

    Returns "" when no row carries a ``"profile"`` dict (the campaign
    ran without ``--profile``).  Component times are summed across
    scenarios — the question the hot list answers is "where did this
    campaign's wall time go", not "which scenario was slow" (that is
    the per-row ``duration_s``).
    """
    profiled = [r for r in rows if isinstance(r.get("profile"), Mapping)]
    if not profiled:
        return ""
    comp: dict[str, list] = {}
    cycles_total = cycles_fused = 0
    phase_s: dict[str, float] = {}
    for row in profiled:
        prof = row["profile"]
        cycles = prof.get("cycles", {})
        cycles_total += int(cycles.get("total", 0))
        cycles_fused += int(cycles.get("fused", 0))
        for name, cell in prof.get("phases", {}).items():
            phase_s[name] = phase_s.get(name, 0.0) + float(
                cell.get("time_s", 0.0)
            )
        for entry in prof.get("components", ()):
            cell = comp.setdefault(entry["path"], [0.0, 0.0, 0])
            cell[0] += float(entry.get("settle_s", 0.0))
            cell[1] += float(entry.get("tick_s", 0.0))
            cell[2] += int(entry.get("settle_calls", 0))
    out = io.StringIO()
    out.write("## Profile\n\n")
    util = cycles_fused / cycles_total if cycles_total else 0.0
    phases = " · ".join(
        f"{name} {seconds:.3f}s" for name, seconds in sorted(phase_s.items())
    )
    out.write(
        f"{len(profiled)} profiled scenario(s) · {cycles_total} cycles · "
        f"fusion utilization {util:.1%} · {phases}\n\n"
    )
    out.write("| component | settle s | tick s | total s | settle calls |\n")
    out.write("|---|---|---|---|---|\n")
    hot = sorted(
        comp.items(), key=lambda kv: -(kv[1][0] + kv[1][1])
    )[:_PROFILE_TOP]
    for path, (settle_s, tick_s, calls) in hot:
        out.write(
            f"| `{path}` | {settle_s:.4f} | {tick_s:.4f} | "
            f"{settle_s + tick_s:.4f} | {calls} |\n"
        )
    out.write("\n")
    return out.getvalue()


def write_report(
    report: Mapping[str, Any],
    out_dir: str | pathlib.Path,
    basename: str = "campaign",
) -> tuple[pathlib.Path, pathlib.Path]:
    """Write ``<basename>.json`` and ``<basename>.md`` under *out_dir*."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / f"{basename}.json"
    md_path = out_dir / f"{basename}.md"
    json_path.write_text(
        json.dumps(report, indent=2, default=str) + "\n", encoding="utf-8"
    )
    md_path.write_text(render_markdown(report), encoding="utf-8")
    return json_path, md_path
