"""Batch simulation campaigns: declarative sweeps over the design space.

The paper's evaluation is a *campaign* — one elastic SMT design family
swept over thread counts, buffer depths, MEB flavors and stimulus
patterns.  This package is the layer that runs such campaigns:

* :mod:`repro.sweep.spec` — declarative scenario specs (design family ×
  parameter grid × stimulus × metrics), loadable from a dict, JSON, or
  TOML (Python 3.11+); structured :class:`SpecError` diagnostics.
* :mod:`repro.sweep.registry` / :mod:`repro.sweep.families` — the
  design-family registry, absorbing the workload factories previously
  duplicated across the ``benchmarks/`` scripts.
* :mod:`repro.sweep.jobs` — **the programmatic entry point**: the
  transport-agnostic jobs API (submit/status/result/cancel) backed by
  an async job queue, a persistent worker pool with cross-job
  design-cache affinity, and result-store dedup.  The CLI and the
  :mod:`repro.serve` HTTP front end are both thin clients of it.
* :mod:`repro.sweep.runner` — scenario execution: deterministic
  scenario seeds and per-worker design reuse (built once, rewound
  between scenarios via the kernel's columnar
  :meth:`~repro.kernel.simulator.Simulator.snapshot`/``restore``).
* :mod:`repro.sweep.store` — the persisted result store (dedup by
  canonical scenario key).
* :mod:`repro.sweep.report` — aggregation of throughput and cost-model
  numbers into one JSON/markdown campaign report.

CLI: ``python -m repro.sweep run <spec> [--workers N]``.
Service: ``python -m repro.serve [--port P] [--workers N]``.
"""

from repro.sweep.jobs import (
    JobService,
    QuotaError,
    cancel,
    job_result,
    job_status,
    list_families,
    submit_campaign,
)
from repro.sweep.registry import (
    family_names,
    get_family,
    register_family,
    registry_payload,
)
from repro.sweep.report import aggregate, canonical_report, render_markdown
from repro.sweep.runner import run_campaign
from repro.sweep.spec import (
    CampaignSpec,
    ScenarioSpec,
    SpecError,
    SweepSpecError,
    load_spec,
    make_scenario,
)
from repro.sweep.store import ResultStore

__all__ = [
    "CampaignSpec",
    "JobService",
    "QuotaError",
    "ResultStore",
    "ScenarioSpec",
    "SpecError",
    "SweepSpecError",
    "aggregate",
    "cancel",
    "canonical_report",
    "family_names",
    "get_family",
    "job_result",
    "job_status",
    "list_families",
    "load_spec",
    "make_scenario",
    "register_family",
    "registry_payload",
    "render_markdown",
    "run_campaign",
    "submit_campaign",
]
