"""Batch simulation campaigns: declarative sweeps over the design space.

The paper's evaluation is a *campaign* — one elastic SMT design family
swept over thread counts, buffer depths, MEB flavors and stimulus
patterns.  This package is the layer that runs such campaigns:

* :mod:`repro.sweep.spec` — declarative scenario specs (design family ×
  parameter grid × stimulus × metrics), loadable from a dict, JSON, or
  TOML (Python 3.11+).
* :mod:`repro.sweep.registry` / :mod:`repro.sweep.families` — the
  design-family registry, absorbing the workload factories previously
  duplicated across the ``benchmarks/`` scripts.
* :mod:`repro.sweep.runner` — campaign execution: deterministic
  scenario seeds, multiprocess sharding with per-worker design reuse
  (built once, rewound between scenarios via the kernel's columnar
  :meth:`~repro.kernel.simulator.Simulator.snapshot`/``restore``), and
  graceful per-scenario failure reporting.
* :mod:`repro.sweep.report` — aggregation of throughput and cost-model
  numbers into one JSON/markdown campaign report.

CLI: ``python -m repro.sweep run <spec> [--workers N]``.
"""

from repro.sweep.registry import family_names, get_family, register_family
from repro.sweep.report import aggregate, render_markdown
from repro.sweep.runner import run_campaign
from repro.sweep.spec import (
    CampaignSpec,
    ScenarioSpec,
    SweepSpecError,
    load_spec,
    make_scenario,
)

__all__ = [
    "CampaignSpec",
    "ScenarioSpec",
    "SweepSpecError",
    "aggregate",
    "family_names",
    "get_family",
    "load_spec",
    "make_scenario",
    "register_family",
    "render_markdown",
    "run_campaign",
]
