"""Built-in design families and the shared workload factories.

The ``make_*`` factories here are the single home of the pipeline
builders that the benchmark harness used to carry privately
(``benchmarks/_pipelines.py`` now re-exports them): an MT pipeline, the
bursty variant, the dense shared-function chain and the recirculating
elastic ring.  On top of them, this module registers the campaign
design families (see :mod:`repro.sweep.registry`):

========================  =====================================  =========
family                    structural params                      reusable
========================  =====================================  =========
``mt_pipeline``           threads, n_stages, meb, width          yes
``mt_chain``              threads, n_funcs, width                yes
``mt_ring``               threads, n_funcs, trips, width         yes
``md5``                   threads, meb, round_stages             no
``processor``             threads, meb                           no
========================  =====================================  =========

Reusable families are built once per worker and rewound between
scenarios through the kernel's columnar snapshot/restore; traffic is
applied exclusively through ``push`` so a warm simulator never needs a
recompile.  Stimulus kinds for the channel families:

* ``uniform`` — ``items_per_thread`` items on every thread.
* ``active`` — the 1/M-law shape: ``items_per_thread`` items on the
  first ``active`` threads, the rest idle.
* ``random`` — per-thread item counts drawn from
  ``[items_min, items_max]`` with the scenario's deterministic seed.
* ``bursty`` — ``bursts`` rounds of ``burst`` items per thread, each
  followed by a fixed ``gap``-cycle window (the settle+tick fusion
  shape).

Any of these may carry ``variants`` — a list of stimulus blocks run
from a shared branch point: the base stimulus plus ``warmup_cycles``
are simulated once, a fork snapshot marks the branch, and every variant
replays from it (:meth:`~repro.kernel.simulator.Simulator.fork`), so
the warm-up is paid once per design instead of once per variant.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.throughput import (
    channel_stats,
    fairness_index,
    steady_state_window,
)
from repro.core import (
    FullMEB,
    GrantPolicy,
    MBranch,
    MMerge,
    MTChannel,
    MTFunction,
    MTMonitor,
    MTSink,
    MTSource,
    ReducedMEB,
)
from repro.cost.model import AreaModel, TimingModel
from repro.elastic.endpoints import Pattern
from repro.kernel import Component, Simulator, build
from repro.kernel.ensemble import EnsembleContext, lift_simulator
from repro.kernel.simulator import WatchedPredicate
from repro.sweep.registry import EnsembleSupport, Family, register_family
from repro.sweep.spec import ScenarioSpec

MEB_KINDS = {"full": FullMEB, "reduced": ReducedMEB}


# ----------------------------------------------------------------------
# shared workload factories (previously benchmarks/_pipelines.py)
# ----------------------------------------------------------------------

def make_mt_pipeline(
    meb_cls,
    threads: int,
    items: Sequence[Iterable[Any]],
    n_stages: int = 2,
    src_patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
    sink_patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
    policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
    width: int = 32,
    engine: str | None = None,
):
    """source -> MEB^n_stages -> sink with a monitor on every channel."""
    chans = [
        MTChannel(f"ch{i}", threads=threads, width=width)
        for i in range(n_stages + 1)
    ]
    source = MTSource("src", chans[0], items=items, patterns=src_patterns)
    mebs = [
        meb_cls(f"meb{i}", chans[i], chans[i + 1], policy=policy)
        for i in range(n_stages)
    ]
    sink = MTSink("snk", chans[-1], patterns=sink_patterns)
    monitors = [MTMonitor(f"mon{i}", ch) for i, ch in enumerate(chans)]
    sim = build(*chans, source, *mebs, sink, *monitors, engine=engine)
    return sim, source, sink, mebs, monitors


def make_mt_bursty(
    meb_cls,
    threads: int,
    n_stages: int = 2,
    width: int = 32,
    engine: str | None = None,
):
    """An MT pipeline fed in bursts with long quiescent gaps.

    Built like :func:`make_mt_pipeline` (monitors included) but with
    empty source streams: the caller pushes a burst of items per thread,
    runs a fixed-length window (``sim.run(cycles=gap)``), and repeats.
    Once a burst drains, the design is fully quiescent for the rest of
    the window — the workload shape the compiled engine's settle+tick
    fusion batches, while the event engine still pays per-cycle
    scheduling and the full tick dispatch.
    """
    items = [[] for _ in range(threads)]
    return make_mt_pipeline(
        meb_cls, threads=threads, items=items, n_stages=n_stages,
        width=width, engine=engine,
    )


def make_mt_chain(
    threads: int,
    n_funcs: int,
    n_items: int,
    width: int = 32,
    engine: str | None = None,
    with_monitor: bool = False,
    sink_patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
):
    """source -> MEB -> shared-function chain -> MEB -> sink.

    The paper's §I motif — one copy of the datapath logic serving all
    threads time-multiplexed — as a pure dense chain: every stage is a
    combinational :class:`MTFunction`, so the settle phase dominates and
    the declared dependency graph is one long acyclic run (the compiled
    engine fuses it into a single straight-line function).

    ``with_monitor=True`` adds an output-channel monitor and returns it
    as a fourth element (the campaign runner's measurement point); the
    default keeps the monitor-free three-tuple the perf benchmarks time.
    """
    chans = [
        MTChannel(f"c{i}", threads=threads, width=width)
        for i in range(n_funcs + 3)
    ]
    source = MTSource(
        "src", chans[0],
        items=[list(range(n_items)) for _ in range(threads)],
    )
    meb_in = FullMEB("meb_in", chans[0], chans[1])
    funcs = [
        MTFunction(
            f"f{k}", chans[1 + k], chans[2 + k],
            fn=(lambda x, k=k: (x * 7 + k) & 0xFFFF), pure=True,
        )
        for k in range(n_funcs)
    ]
    meb_out = FullMEB("meb_out", chans[n_funcs + 1], chans[n_funcs + 2])
    sink = MTSink("snk", chans[-1], patterns=sink_patterns)
    extra = [MTMonitor("out_mon", chans[-1])] if with_monitor else []
    sim = build(*chans, source, meb_in, *funcs, meb_out, sink, *extra,
                engine=engine)
    if with_monitor:
        return sim, source, sink, extra[0]
    return sim, source, sink


def make_mt_ring(
    threads: int,
    n_funcs: int,
    trips: int,
    width: int = 32,
    engine: str | None = None,
    items: Sequence[Iterable[Any]] | None = None,
    with_monitor: bool = False,
):
    """Recirculating elastic ring: merge -> MEB -> functions -> branch.

    The MD5-style loop topology (paper Fig. 1) distilled to the
    substrate: one token per thread makes *trips* passes around the
    ring before the branch releases it.  The whole ring is one cyclic
    SCC, exercising the engines' worklist path with ~every member
    switching every cycle.  Ring tokens are ``(value, trip_count)``
    pairs; *items* overrides the default one-token-per-thread streams
    (pass empty streams for push-based stimulus), and
    ``with_monitor=True`` appends an exit-channel monitor as a fourth
    return element.
    """
    c_new = MTChannel("c_new", threads, width)
    c_loop = MTChannel("c_loop", threads, width)
    c_rec = MTChannel("c_rec", threads, width)
    c_out = MTChannel("c_out", threads, width)
    c_fin = MTChannel("c_fin", threads, width)
    inner = [MTChannel(f"ci{k}", threads, width) for k in range(n_funcs + 1)]
    if items is None:
        items = [[(t, 0)] for t in range(threads)]
    source = MTSource("src", c_new, items=items)
    merge = MMerge("merge", [c_new, c_rec], c_loop)
    meb_in = FullMEB("meb_in", c_loop, inner[0])
    funcs = [
        MTFunction(
            f"f{k}", inner[k], inner[k + 1],
            fn=(lambda d, k=k: ((d[0] * 5 + k) & 0xFFFF, d[1])), pure=True,
        )
        for k in range(n_funcs)
    ]
    meb_out = FullMEB("meb_out", inner[-1], c_out)
    branch = MBranch(
        "br", c_out, [c_rec, c_fin],
        selector=lambda d: 1 if d[1] >= trips - 1 else 0,
        route=lambda d: (d[0], d[1] + 1),
    )
    sink = MTSink("snk", c_fin)
    extra = [MTMonitor("out_mon", c_fin)] if with_monitor else []
    sim = build(c_new, c_loop, c_rec, c_out, c_fin, *inner, source, merge,
                meb_in, *funcs, meb_out, branch, sink, *extra,
                engine=engine)
    if with_monitor:
        return sim, source, sink, extra[0]
    return sim, source, sink


# ----------------------------------------------------------------------
# family handles and shared metric helpers
# ----------------------------------------------------------------------

@dataclass
class DesignHandle:
    """What a built channel family hands the campaign runner."""

    sim: Simulator
    source: Any
    sink: Any
    monitor: Any                      # the output-channel monitor
    area_components: list[Component] = field(default_factory=list)
    threads: int = 0


def _cost_metrics(components: Iterable[Component]) -> dict:
    """Fold the structural inventory through the Table-I cost models.

    ``fmax_mhz`` is the wire-dominated relative estimate (zero logic
    depth): meaningful for comparing points of one sweep, not as an
    absolute frequency.
    """
    model = AreaModel()
    total = None
    for comp in components:
        area = model.component_area(comp)
        total = area if total is None else total + area
    if total is None:
        return {}
    timing = TimingModel()
    return {
        "area_le": round(total.total_le, 1),
        "ff_bits": total.ff_bits,
        "mux_bits": total.mux_bits,
        "luts": total.luts,
        "fmax_mhz": round(timing.fmax_mhz(0.0, total.total_le), 2)
        if total.total_le > 0
        else None,
    }


def _channel_metrics(handle: DesignHandle, metrics: Mapping[str, Any]) -> dict:
    """Throughput/utilization numbers over the scenario's window."""
    monitor = handle.monitor
    warmup = int(metrics.get("warmup", 0))
    drain = int(metrics.get("drain", 0))
    if metrics.get("window", "steady") == "steady" and (warmup or drain):
        window = steady_state_window(monitor, warmup=warmup, drain=drain)
    else:
        window = (0, max(1, monitor.cycles_observed))
    stats = channel_stats(monitor, *window)
    per_thread = [ts.throughput for ts in stats.per_thread]
    return {
        "cycles": handle.sim.cycle,
        "window": list(window),
        "transfers": stats.transfers,
        "utilization": stats.utilization,
        "per_thread_throughput": per_thread,
        "fairness": fairness_index([tp for tp in per_thread if tp > 0]),
    }


def _item_value(thread: int, k: int) -> int:
    return (thread << 16) | (k & 0xFFFF)


def _seeded_item(seed: int):
    """Payload generator for ``payload = "seeded"`` stimulus.

    Item values are derived from the scenario seed with sha256 (not
    Python's randomized ``hash``), so they are reproducible across
    processes and Python versions.  Two scenarios differing only in
    ``payload_salt`` get different seeds (the salt is part of the
    scenario key the seed derives from) and therefore different
    payloads on identical control schedules — exactly the shape
    ensemble batching wants.
    """
    prefix = str(seed)

    def make(thread: int, k: int) -> int:
        digest = hashlib.sha256(f"{prefix}|{thread}|{k}".encode()).digest()
        return int.from_bytes(digest[:4], "big")

    return make


def _make_item_for(scenario: ScenarioSpec):
    """Resolve the scenario's payload generator (default or seeded)."""
    if scenario.stimulus.get("payload") == "seeded":
        return _seeded_item(scenario.seed)
    return _item_value


def _payload_digest(triples: Iterable[tuple]) -> str:
    """Order-sensitive digest of ``(cycle, thread, data)`` sink triples.

    Emitted as the ``payload_digest`` metric for seeded-payload
    scenarios; an ensemble-batched lane must reproduce its serial run's
    digest bit-for-bit, which pins both the data path *and* the exact
    transfer schedule.
    """
    h = hashlib.sha256()
    for cyc, thread, data in triples:
        h.update(f"{cyc}|{thread}|{data!r};".encode())
    return h.hexdigest()


def _per_thread_counts(
    threads: int, stimulus: Mapping[str, Any], seed: int
) -> list[int]:
    """Resolve a stimulus block into per-thread item counts."""
    kind = stimulus.get("kind", "uniform")
    if kind == "uniform":
        return [int(stimulus.get("items_per_thread", 16))] * threads
    if kind == "active":
        active = int(stimulus.get("active", threads))
        n = int(stimulus.get("items_per_thread", 16))
        return [n if t < active else 0 for t in range(threads)]
    if kind == "random":
        rng = random.Random(seed)
        lo = int(stimulus.get("items_min", 1))
        hi = int(stimulus.get("items_max", 24))
        return [rng.randint(lo, hi) for _ in range(threads)]
    raise ValueError(f"unknown stimulus kind {kind!r}")


def _push_plan(
    handle: DesignHandle,
    stimulus: Mapping[str, Any],
    seed: int,
    make_item=_item_value,
) -> int:
    """Push one stimulus block's items; returns the number pushed."""
    per_thread = _per_thread_counts(handle.threads, stimulus, seed)
    pushed = 0
    for t, n in enumerate(per_thread):
        for k in range(n):
            handle.source.push(t, make_item(t, k))
        pushed += n
    return pushed


def _drive_to_completion(
    handle: DesignHandle, expected: int, stimulus: Mapping[str, Any]
) -> None:
    base = handle.sink.count
    max_cycles = int(stimulus.get("max_cycles", 50_000))
    sink = handle.sink
    target = base + expected
    # The declared-watch contract lets the simulator batch fully
    # quiescent stretches: a deadlocked scenario reaches its max_cycles
    # diagnosis in one fused step instead of polling every cycle.
    handle.sim.run(
        until=WatchedPredicate(
            lambda _s: sink.count >= target,
            watches=(*sink.channel.valid, *sink.channel.ready),
        ),
        max_cycles=max_cycles,
    )


def _run_channel_scenario(
    handle: DesignHandle,
    scenario: ScenarioSpec,
    make_item=None,
) -> dict:
    stimulus = scenario.stimulus
    kind = stimulus.get("kind", "uniform")
    variants = stimulus.get("variants")
    if make_item is None:
        make_item = _make_item_for(scenario)
    if variants:
        return _run_variants(handle, scenario, make_item)
    if kind == "bursty":
        bursts = int(stimulus.get("bursts", 3))
        burst = int(stimulus.get("burst", 8))
        gap = int(stimulus.get("gap", 200))
        for b in range(bursts):
            for t in range(handle.threads):
                for k in range(burst):
                    handle.source.push(t, make_item(t, b * burst + k))
            handle.sim.run(cycles=gap)
        out = _channel_metrics(handle, scenario.metrics)
    else:
        expected = _push_plan(handle, stimulus, scenario.seed, make_item)
        _drive_to_completion(handle, expected, stimulus)
        out = _channel_metrics(handle, scenario.metrics)
    if stimulus.get("payload") == "seeded":
        out["payload_digest"] = _payload_digest(handle.sink.received)
    out.update(_cost_metrics(handle.area_components))
    return out


def _run_variants(
    handle: DesignHandle, scenario: ScenarioSpec, make_item=None
) -> dict:
    """Fork-based variant execution: warm up once, branch per variant."""
    stimulus = scenario.stimulus
    if make_item is None:
        make_item = _make_item_for(scenario)
    base = stimulus.get("base")
    if base:
        _push_plan(handle, base, scenario.seed, make_item)
    warmup_cycles = int(stimulus.get("warmup_cycles", 0))
    if warmup_cycles:
        handle.sim.run(cycles=warmup_cycles)
    results = []
    for i, variant in enumerate(stimulus["variants"]):
        with handle.sim.fork():
            expected = _push_plan(
                handle, variant, scenario.seed + i, make_item
            )
            _drive_to_completion(handle, expected, variant)
            row = _channel_metrics(handle, scenario.metrics)
            row["variant"] = i
            results.append(row)
    out = {
        "cycles": handle.sim.cycle,
        "branch_cycle": handle.sim.cycle,
        "variants": results,
    }
    out.update(_cost_metrics(handle.area_components))
    return out


# ----------------------------------------------------------------------
# built-in family definitions
# ----------------------------------------------------------------------

def _meb_cls(params: Mapping[str, Any]):
    kind = str(params.get("meb", "reduced"))
    if kind not in MEB_KINDS:
        raise ValueError(f"meb must be one of {sorted(MEB_KINDS)}")
    return MEB_KINDS[kind]


def _build_mt_pipeline(params: Mapping[str, Any], engine: str | None):
    threads = int(params.get("threads", 4))
    n_stages = int(params.get("n_stages", 2))
    width = int(params.get("width", 32))
    sim, source, sink, mebs, monitors = make_mt_pipeline(
        _meb_cls(params),
        threads=threads,
        items=[[] for _ in range(threads)],
        n_stages=n_stages,
        width=width,
        engine=engine,
    )
    return DesignHandle(
        sim=sim, source=source, sink=sink, monitor=monitors[-1],
        area_components=list(mebs), threads=threads,
    )


def _build_mt_chain(params: Mapping[str, Any], engine: str | None):
    threads = int(params.get("threads", 4))
    n_funcs = int(params.get("n_funcs", 4))
    width = int(params.get("width", 32))
    sim, source, sink, monitor = make_mt_chain(
        threads=threads, n_funcs=n_funcs, n_items=0, width=width,
        engine=engine, with_monitor=True,
    )
    mebs = [sim.find("meb_in"), sim.find("meb_out")]
    return DesignHandle(
        sim=sim, source=source, sink=sink, monitor=monitor,
        area_components=mebs, threads=threads,
    )


def _build_mt_ring(params: Mapping[str, Any], engine: str | None):
    threads = int(params.get("threads", 4))
    n_funcs = int(params.get("n_funcs", 2))
    trips = int(params.get("trips", 4))
    width = int(params.get("width", 32))
    sim, source, sink, monitor = make_mt_ring(
        threads=threads, n_funcs=n_funcs, trips=trips, width=width,
        engine=engine, items=[[] for _ in range(threads)],
        with_monitor=True,
    )
    mebs = [sim.find("meb_in"), sim.find("meb_out"), sim.find("merge"),
            sim.find("br")]
    return DesignHandle(
        sim=sim, source=source, sink=sink, monitor=monitor,
        area_components=mebs, threads=threads,
    )


def _run_mt_ring(handle: DesignHandle, scenario: ScenarioSpec) -> dict:
    """Wave-based ring stimulus: at most one in-flight token per thread.

    A thread's fresh token (on ``c_new``) and its recirculating token
    (on ``c_rec``) would otherwise reach the M-Merge simultaneously — a
    protocol violation — so ``items_per_thread`` is delivered as that
    many complete waves, exactly like the MD5 driver's block waves.
    """
    stimulus = scenario.stimulus
    make_item = _make_item_for(scenario)
    counts = _per_thread_counts(
        handle.threads, stimulus, scenario.seed
    )
    wave = 0
    while any(counts):
        pushed = 0
        for t in range(handle.threads):
            if counts[t]:
                handle.source.push(t, (make_item(t, wave), 0))
                counts[t] -= 1
                pushed += 1
        _drive_to_completion(handle, pushed, stimulus)
        wave += 1
    out = _channel_metrics(handle, scenario.metrics)
    if stimulus.get("payload") == "seeded":
        out["payload_digest"] = _payload_digest(handle.sink.received)
    out.update(_cost_metrics(handle.area_components))
    return out


# ----------------------------------------------------------------------
# ensemble batching for the channel families
# ----------------------------------------------------------------------

def _channel_ensemble_key(scenario: ScenarioSpec):
    """Batching key: scenarios with equal keys are control-identical.

    Only ``payload = "seeded"`` scenarios batch — their payloads differ
    per lane (via ``payload_salt`` and the derived seed) while the item
    *counts*, and therefore every handshake decision, are identical.
    ``random`` stimulus draws per-thread counts from the scenario seed
    (control differs), and ``variants`` fork mid-run; both run serially.
    """
    stim = scenario.stimulus
    if stim.get("payload") != "seeded" or stim.get("variants"):
        return None
    if stim.get("kind", "uniform") == "random":
        return None
    shared = {k: v for k, v in stim.items() if k != "payload_salt"}
    return (
        scenario.family,
        scenario.design_key(),
        json.dumps(shared, sort_keys=True, default=str),
        json.dumps(dict(scenario.metrics), sort_keys=True, default=str),
    )


def _lift_channel_design(handle: DesignHandle) -> EnsembleContext:
    return lift_simulator(handle.sim)


def _ensemble_outcomes(
    handle: DesignHandle,
    ctx: EnsembleContext,
    scenarios: Sequence[ScenarioSpec],
    base: dict,
    cost: dict,
) -> list[tuple[str, Any]]:
    """Per-lane outcome extraction after one lockstep run.

    Control metrics (cycles, window, transfers, utilization, cost) are
    computed once — by construction they are identical across lanes and
    equal to each lane's serial run.  Only ``payload_digest`` is
    per-lane, sliced out of the shared sink log's rows.
    """
    received = handle.sink.received
    outcomes: list[tuple[str, Any]] = []
    for j in range(len(scenarios)):
        err = ctx.failures.get(j)
        if err is not None:
            outcomes.append(("error", err))
            continue
        out = dict(base)
        out["payload_digest"] = _payload_digest(
            (cyc, t, row[j]) for cyc, t, row in received
        )
        out.update(cost)
        outcomes.append(("ok", out))
    return outcomes


def _run_channel_ensemble(
    handle: DesignHandle,
    ctx: EnsembleContext,
    scenarios: Sequence[ScenarioSpec],
) -> list[tuple[str, Any]]:
    """Lockstep run of K control-identical channel-family scenarios.

    Mirrors :func:`_run_channel_scenario` exactly, except every pushed
    item is a row of K per-lane payloads (one per scenario seed).
    """
    ctx.reset(len(scenarios))
    lead = scenarios[0]
    stimulus = lead.stimulus
    kind = stimulus.get("kind", "uniform")
    makers = [_make_item_for(s) for s in scenarios]

    def make_row(t: int, k: int) -> tuple:
        return tuple(mk(t, k) for mk in makers)

    if kind == "bursty":
        bursts = int(stimulus.get("bursts", 3))
        burst = int(stimulus.get("burst", 8))
        gap = int(stimulus.get("gap", 200))
        for b in range(bursts):
            for t in range(handle.threads):
                for k in range(burst):
                    handle.source.push(t, make_row(t, b * burst + k))
            handle.sim.run(cycles=gap)
    else:
        expected = _push_plan(handle, stimulus, lead.seed, make_row)
        _drive_to_completion(handle, expected, stimulus)
    base = _channel_metrics(handle, lead.metrics)
    cost = _cost_metrics(handle.area_components)
    return _ensemble_outcomes(handle, ctx, scenarios, base, cost)


def _run_mt_ring_ensemble(
    handle: DesignHandle,
    ctx: EnsembleContext,
    scenarios: Sequence[ScenarioSpec],
) -> list[tuple[str, Any]]:
    """Lockstep analogue of :func:`_run_mt_ring` (wave-based stimulus)."""
    ctx.reset(len(scenarios))
    lead = scenarios[0]
    stimulus = lead.stimulus
    makers = [_make_item_for(s) for s in scenarios]
    counts = _per_thread_counts(handle.threads, stimulus, lead.seed)
    wave = 0
    while any(counts):
        pushed = 0
        for t in range(handle.threads):
            if counts[t]:
                handle.source.push(
                    t, tuple((mk(t, wave), 0) for mk in makers)
                )
                counts[t] -= 1
                pushed += 1
        _drive_to_completion(handle, pushed, stimulus)
        wave += 1
    base = _channel_metrics(handle, lead.metrics)
    cost = _cost_metrics(handle.area_components)
    return _ensemble_outcomes(handle, ctx, scenarios, base, cost)


_CHANNEL_ENSEMBLE = EnsembleSupport(
    group_key=_channel_ensemble_key,
    lift=_lift_channel_design,
    run=_run_channel_ensemble,
)
_RING_ENSEMBLE = EnsembleSupport(
    group_key=_channel_ensemble_key,
    lift=_lift_channel_design,
    run=_run_mt_ring_ensemble,
)


def _build_md5(params: Mapping[str, Any], engine: str | None):
    from repro.apps.md5 import MD5Hasher

    return MD5Hasher(
        threads=int(params.get("threads", 4)),
        meb=str(params.get("meb", "reduced")),
        round_stages=int(params.get("round_stages", 1)),
        engine=engine,
    )


def _run_md5(hasher, scenario: ScenarioSpec) -> dict:
    stimulus = scenario.stimulus
    count = int(stimulus.get("messages", hasher.threads))
    size = int(stimulus.get("size", 24))
    rng = random.Random(scenario.seed)
    messages = [
        bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)
    ]
    digests = hasher.hash_messages(messages)
    ok = digests == [hashlib.md5(m).hexdigest() for m in messages]
    circuit = hasher.circuit
    cycles = circuit.sim.cycle
    stats = channel_stats(
        circuit.out_monitor, 0, max(1, circuit.out_monitor.cycles_observed)
    )
    out = {
        "cycles": cycles,
        "messages": count,
        "cycles_per_digest": cycles / count,
        "digests_ok": ok,
        "transfers": stats.transfers,
        "utilization": stats.utilization,
        "per_thread_throughput": [
            ts.throughput for ts in stats.per_thread
        ],
    }
    out.update(_cost_metrics(circuit.area_components()))
    return out


def _build_processor(params: Mapping[str, Any], engine: str | None):
    from repro.apps.processor import Processor

    return Processor(
        threads=int(params.get("threads", 4)),
        meb=str(params.get("meb", "reduced")),
        engine=engine,
    )


def _processor_catalog() -> dict[str, Any]:
    """Named processor programs selectable from a stimulus block."""
    from repro.apps.processor import programs

    return {
        "sum": programs.sum_to_n(10),
        "fib": programs.fibonacci(12),
        "gcd": programs.gcd(126, 84),
        "shift": programs.shift_playground(37),
        "spin": programs.spin(15),
    }


def _processor_check(cpu, thread: int, program) -> bool:
    kind, where = program.check
    got = (
        cpu.reg(thread, where) if kind == "reg"
        else cpu.mem_word(thread, where)
    )
    return got == program.expected


def _run_processor(cpu, scenario: ScenarioSpec) -> dict:
    """Drive the processor under one of three stimulus kinds.

    * ``mix`` (default) — every thread runs the standard program mix,
      round-robin, to completion (the kernel benchmark's shape).
    * ``bursty`` — ``bursts`` program phases: each phase loads one
      program per thread from the named ``programs`` set (rotated per
      phase), runs to completion, then idles a fixed ``gap``-cycle
      window — the settle+tick fusion shape, now reachable because the
      whole pipeline runs through compiled tick plans.
    * ``random`` — per-thread program choice drawn from ``programs``
      with the scenario's deterministic seed.

    Every completed program is verified against its architectural
    oracle (``programs_ok``); per-phase/per-thread retirement counts
    land in the metrics so campaign diffs see RunStats-level drift.
    """
    from repro.apps.processor import programs as programs_mod

    stimulus = scenario.stimulus
    kind = stimulus.get("kind", "mix")
    max_cycles = int(stimulus.get("max_cycles", 50_000))
    out: dict[str, Any]
    if kind == "mix":
        mix = programs_mod.standard_mix()
        loaded = [mix[t % len(mix)] for t in range(cpu.threads)]
        for t, program in enumerate(loaded):
            cpu.load_program(t, program.source)
        stats = cpu.run(max_cycles=max_cycles)
        out = {
            "cycles": stats.cycles,
            "retired": stats.total_retired,
            "ipc": stats.ipc,
            "retired_per_thread": list(stats.retired),
            "programs_ok": all(
                _processor_check(cpu, t, program)
                for t, program in enumerate(loaded)
            ),
        }
    elif kind in ("bursty", "random"):
        catalog = _processor_catalog()
        names = list(stimulus.get("programs", ("sum", "fib", "gcd", "spin")))
        unknown = [n for n in names if n not in catalog]
        if unknown:
            raise ValueError(
                f"unknown processor programs {unknown}; "
                f"available: {sorted(catalog)}"
            )
        if len(names) < 2:
            raise ValueError("processor stimulus needs >= 2 programs")
        if kind == "random":
            rng = random.Random(scenario.seed)
            gap = 0
            pick = [
                names[rng.randrange(len(names))] for _ in range(cpu.threads)
            ]
            schedule = [pick]
        else:
            rounds = int(stimulus.get("bursts", 2))
            gap = int(stimulus.get("gap", 150))
            schedule = [
                [names[(b + t) % len(names)] for t in range(cpu.threads)]
                for b in range(rounds)
            ]
        phases = []
        ok = True
        for chosen in schedule:
            before = list(cpu.pc_unit.retired)
            start_cycle = cpu.sim.cycle
            for t, name in enumerate(chosen):
                cpu.load_program(t, catalog[name].source)
            stats = cpu.run(max_cycles=max_cycles)
            ok = ok and all(
                _processor_check(cpu, t, catalog[name])
                for t, name in enumerate(chosen)
            )
            phases.append({
                "programs": list(chosen),
                # Per-phase deltas, like "retired": cycles spent running
                # this wave, excluding the idle gap that follows it.
                "cycles": stats.cycles - start_cycle,
                "retired": [
                    now - prev for now, prev in zip(stats.retired, before)
                ],
            })
            if gap:
                # Fully halted: the idle window is one fused batch under
                # the compiled engine.
                cpu.run_cycles(gap)
        stats = cpu.run_cycles(0)
        out = {
            "cycles": stats.cycles,
            "retired": stats.total_retired,
            "ipc": stats.ipc,
            "retired_per_thread": list(stats.retired),
            "programs_ok": ok,
            "phases": phases,
        }
    else:
        raise ValueError(f"unknown processor stimulus kind {kind!r}")
    out.update(_cost_metrics(cpu.area_components()))
    return out


#: Stimulus kinds every push-driven channel family understands.
_CHANNEL_STIMULUS = ("uniform", "active", "random", "bursty")

register_family(Family(
    name="mt_pipeline",
    build=_build_mt_pipeline,
    run=_run_channel_scenario,
    reusable=True,
    description="source -> MEB^n -> sink (params: threads, n_stages, "
                "meb, width)",
    params={"threads": 4, "n_stages": 2, "meb": "reduced", "width": 32},
    stimulus_kinds=_CHANNEL_STIMULUS,
    ensemble=_CHANNEL_ENSEMBLE,
))
register_family(Family(
    name="mt_chain",
    build=_build_mt_chain,
    run=_run_channel_scenario,
    reusable=True,
    description="MEB-bounded shared-function chain (params: threads, "
                "n_funcs, width)",
    params={"threads": 4, "n_funcs": 4, "width": 32},
    stimulus_kinds=_CHANNEL_STIMULUS,
    ensemble=_CHANNEL_ENSEMBLE,
))
register_family(Family(
    name="mt_ring",
    build=_build_mt_ring,
    run=_run_mt_ring,
    reusable=True,
    description="recirculating elastic ring (params: threads, n_funcs, "
                "trips, width)",
    params={"threads": 4, "n_funcs": 2, "trips": 4, "width": 32},
    stimulus_kinds=("uniform", "active", "random"),
    ensemble=_RING_ENSEMBLE,
))
register_family(Family(
    name="md5",
    build=_build_md5,
    run=_run_md5,
    reusable=False,
    description="multithreaded elastic MD5 (params: threads, meb, "
                "round_stages)",
    params={"threads": 4, "meb": "reduced", "round_stages": 1},
    stimulus_kinds=("messages",),
))
register_family(Family(
    name="processor",
    build=_build_processor,
    run=_run_processor,
    # All driver state (instruction memory, armed PCs, register banks,
    # the re-homed stage blocks) lives in components, so one built
    # pipeline rewinds to pristine between scenarios via the kernel
    # snapshot — the campaign-scale proof of the slot-ported stages.
    reusable=True,
    description="multithreaded elastic processor (params: threads, meb; "
                "stimulus kinds: mix, bursty, random over named "
                "programs)",
    params={"threads": 4, "meb": "reduced"},
    stimulus_kinds=("mix", "bursty", "random"),
))
