"""Scenario execution: the one place a scenario actually runs.

PR 6 split this module's old orchestration/execution mix in two:

* **Execution** (this module): :func:`execute_scenario` builds — or
  rewinds — a design and drives one scenario to metrics.  It is the
  single primitive every runner shares: the in-process batch path, the
  campaign service's persistent workers, and ad-hoc programmatic use.
* **Orchestration** (:mod:`repro.sweep.jobs`): job queueing, worker
  pools, result-store dedup and report assembly.  :func:`run_campaign`
  is kept here as the stable one-shot entry point but is now a thin
  client of the jobs API.

Design reuse works through an explicit *cache* mapping
``(design_key, engine) -> (handle, pristine_snapshot)``: built on first
use, every later scenario of the same design starts from a ``restore``
of the pristine snapshot instead of a rebuild.  Because the cache key
is pure data, a cache can outlive one campaign — the service's workers
keep theirs across jobs, which is what makes repeated traffic cheap.

Failures are contained per scenario: a build or run that raises is
reported as ``status="error"`` with the traceback (and the cached
design is dropped, so later scenarios re-build cleanly).  Worker-death
containment lives with the worker pool in :mod:`repro.sweep.jobs`.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Sequence

from repro.kernel.errors import EnsembleUnsupported
from repro.obs.trace import NULL_TRACER
from repro.sweep.registry import get_family
from repro.sweep.spec import CampaignSpec, ScenarioSpec

#: Default lane cap for ``ensemble="auto"`` batching.
DEFAULT_ENSEMBLE_WIDTH = 16

#: Hot-list cap for per-row profile reports (``--profile``): the full
#: per-component table of a big design would dwarf the metrics payload.
PROFILE_TOP = 20


def normalize_ensemble(option: Any) -> int:
    """Resolve an ensemble option to a lane cap (0 disables batching).

    Accepted spellings: ``"auto"``/``None`` (default cap),
    ``"off"``/``0``/``False`` (serial), or an explicit integer cap.
    Caps below 2 are serial by definition.
    """
    if option in (None, "auto"):
        return DEFAULT_ENSEMBLE_WIDTH
    if option in ("off", False):
        return 0
    width = int(option)
    return width if width >= 2 else 0


def plan_units(
    scenarios: Sequence[ScenarioSpec], ensemble: Any = "auto"
) -> list[list[ScenarioSpec]]:
    """Partition *scenarios* into execution units, preserving order.

    A unit is either a singleton (runs through the ordinary serial
    path) or an ensemble batch: 2..cap scenarios whose family declared
    :class:`~repro.sweep.registry.EnsembleSupport` and whose
    ``group_key`` values are equal — i.e. identical design *and*
    identical control schedule, differing only in data payloads.  Units
    appear in first-scenario order, so a serial walk of the plan is
    deterministic from the scenario list alone.
    """
    cap = normalize_ensemble(ensemble)
    order: list[tuple[str, Any]] = []
    grouped: dict[Any, list[ScenarioSpec]] = {}
    for scenario in scenarios:
        key = None
        if cap >= 2:
            try:
                family = get_family(scenario.family)
            except KeyError:
                # Unknown family: plan it serially so the failure stays
                # a per-scenario error row, not a job-level crash.
                family = None
            if family is not None and family.ensemble is not None:
                key = family.ensemble.group_key(scenario)
        if key is None:
            order.append(("single", scenario))
        else:
            if key not in grouped:
                grouped[key] = []
                order.append(("group", key))
            grouped[key].append(scenario)
    units: list[list[ScenarioSpec]] = []
    for tag, value in order:
        if tag == "single":
            units.append([value])
        else:
            members = grouped[value]
            for i in range(0, len(members), cap):
                units.append(members[i : i + cap])
    return units


def execute_ensemble(
    scenarios: Sequence[ScenarioSpec],
    engine: str | None,
    cache: dict | None = None,
    shard: int | None = None,
    profile: bool = False,
    tracer: Any = None,
    parent: Any = None,
) -> list[dict[str, Any]]:
    """Run a batch of control-identical scenarios in one lockstep sim.

    Returns one report row per scenario, in order.  The lifted design
    is cached under ``(design_key, engine, "ensemble")`` — separate
    from the serial cache, because lifting rewrites component callables
    — and rewound via snapshot/restore between batches.  Any failure of
    the batched path (unsupported component, lane-divergent control,
    mid-flight error) falls back to plain serial execution, so batching
    can never change *whether* a campaign completes, only how fast.
    Per-lane scenario failures do **not** trigger fallback: they
    surface as ordinary ``status="error"`` rows while sibling lanes
    complete.

    With *profile*, a kernel profiler is attached to the lifted
    simulator around the batch; its report (including ensemble lane
    occupancy) lands on the **first** row of the batch only, so report
    aggregation never double-counts a shared simulation.  *tracer* /
    *parent* hang the batch's ``scenario``/``build``/``simulate`` spans
    under the caller's unit span.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    rows = [_scenario_row(s, shard) for s in scenarios]
    start = time.perf_counter()
    cache_key = (scenarios[0].design_key(), engine, "ensemble")
    span = tracer.span(
        "scenario",
        parent=parent,
        key=scenarios[0].key,
        lanes=len(scenarios),
        ensemble=True,
    )
    try:
        with span:
            family = get_family(scenarios[0].family)
            support = family.ensemble
            if support is None:
                raise EnsembleUnsupported(
                    f"family {family.name!r} declares no ensemble support"
                )
            entry = cache.get(cache_key) if cache is not None else None
            with tracer.span("build", parent=span) as build_span:
                if entry is None:
                    handle = family.build(scenarios[0].params, engine)
                    ctx = support.lift(handle)
                    entry = (handle, ctx, handle.sim.snapshot())
                    if cache is not None:
                        cache[cache_key] = entry
                    cache_state = "build"
                else:
                    handle, ctx, pristine = entry
                    handle.sim.restore(pristine)
                    cache_state = "hit"
                build_span.set(design_cache=cache_state)
            prof = None
            with tracer.span("simulate", parent=span):
                if profile:
                    with handle.sim.profile() as prof:
                        outcomes = support.run(handle, ctx, scenarios)
                    prof.note_ensemble(
                        ctx.width, len(scenarios) - len(ctx.failures)
                    )
                else:
                    outcomes = support.run(handle, ctx, scenarios)
    except Exception:
        if cache is not None:
            cache.pop(cache_key, None)
        fallback = [
            execute_scenario(
                s,
                engine,
                cache=cache,
                shard=shard,
                profile=profile,
                tracer=tracer,
                parent=parent,
            )
            for s in scenarios
        ]
        for row in fallback:
            row["ensemble"] = "fallback"
        return fallback
    duration = round(time.perf_counter() - start, 4)
    with tracer.span("metrics", parent=span):
        for row, (status, payload) in zip(rows, outcomes):
            row["ensemble"] = len(scenarios)
            row["design_cache"] = cache_state
            row["status"] = status
            if status == "ok":
                row["metrics"] = payload
            else:
                row["error"] = payload
            row["duration_s"] = duration
        if prof is not None and rows:
            report = prof.report(top=PROFILE_TOP)
            report["unit_scenarios"] = len(scenarios)
            rows[0]["profile"] = report
    return rows


def execute_unit(
    unit: Sequence[ScenarioSpec],
    engine: str | None,
    cache: dict | None = None,
    shard: int | None = None,
    profile: bool = False,
    tracer: Any = None,
    parent: Any = None,
) -> list[dict[str, Any]]:
    """Run one planned unit: singletons serially, batches in lockstep."""
    if len(unit) == 1:
        return [
            execute_scenario(
                unit[0],
                engine,
                cache=cache,
                shard=shard,
                profile=profile,
                tracer=tracer,
                parent=parent,
            )
        ]
    return execute_ensemble(
        unit,
        engine,
        cache=cache,
        shard=shard,
        profile=profile,
        tracer=tracer,
        parent=parent,
    )


def _scenario_row(
    scenario: ScenarioSpec, shard: int | None
) -> dict[str, Any]:
    return {
        "key": scenario.key,
        "index": scenario.index,
        "family": scenario.family,
        "params": dict(scenario.params),
        "stimulus": dict(scenario.stimulus),
        "seed": scenario.seed,
        "shard": shard,
    }


def execute_scenario(
    scenario: ScenarioSpec,
    engine: str | None,
    cache: dict | None = None,
    shard: int | None = None,
    profile: bool = False,
    tracer: Any = None,
    parent: Any = None,
) -> dict[str, Any]:
    """Run one scenario and return its report row.

    With a *cache*, reusable designs are built once per (design key,
    engine) and rewound between scenarios via the kernel's columnar
    snapshot/restore; the row's ``design_cache`` field records whether
    this run hit the cache (``"hit"``), populated it (``"build"``) or
    bypassed it (``"none"``, non-reusable families or no cache given).
    ``design_cache`` is placement metadata, not part of the metrics —
    reports are compared net of it.

    With *profile*, a :class:`~repro.obs.profile.KernelProfiler` is
    attached around the family's run and its report lands in
    ``row["profile"]`` — volatile metadata like ``duration_s``, never
    part of canonical comparison.  *tracer* (a
    :class:`~repro.obs.trace.Tracer`) records
    ``scenario -> build/simulate/metrics`` spans under *parent*.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    row = _scenario_row(scenario, shard)
    start = time.perf_counter()
    cache_key = (scenario.design_key(), engine)
    span = tracer.span(
        "scenario", parent=parent, key=scenario.key, index=scenario.index
    )
    try:
        with span:
            family = get_family(scenario.family)
            with tracer.span("build", parent=span) as build_span:
                if family.reusable and cache is not None:
                    entry = cache.get(cache_key)
                    if entry is None:
                        handle = family.build(scenario.params, engine)
                        cache[cache_key] = (handle, handle.sim.snapshot())
                        row["design_cache"] = "build"
                    else:
                        handle, pristine = entry
                        handle.sim.restore(pristine)
                        row["design_cache"] = "hit"
                else:
                    handle = family.build(scenario.params, engine)
                    row["design_cache"] = "none"
                build_span.set(design_cache=row["design_cache"])
            sim = getattr(handle, "sim", None)
            with tracer.span("simulate", parent=span):
                if profile and sim is not None:
                    with sim.profile() as prof:
                        metrics = family.run(handle, scenario)
                    row["profile"] = prof.report(top=PROFILE_TOP)
                else:
                    metrics = family.run(handle, scenario)
            with tracer.span("metrics", parent=span):
                row["status"] = "ok"
                row["metrics"] = metrics
    except Exception:
        # A failed scenario may leave a shared design mid-flight:
        # drop it so the next scenario of this design rebuilds.
        if cache is not None:
            cache.pop(cache_key, None)
        row["status"] = "error"
        row["error"] = traceback.format_exc()
    row["duration_s"] = round(time.perf_counter() - start, 4)
    return row


def run_scenarios(
    scenarios: Sequence[ScenarioSpec],
    engine: str | None,
    shard: int = 0,
    cache: dict | None = None,
    ensemble: Any = "off",
    profile: bool = False,
    tracer: Any = None,
    parent: Any = None,
) -> list[dict[str, Any]]:
    """Run *scenarios* in this process (one worker's shard).

    A fresh design cache is used unless the caller passes one — the
    service's workers pass their long-lived cache so designs survive
    from job to job.  With *ensemble* enabled (``"auto"`` or a lane
    cap), batchable scenarios run in lockstep; rows always come back in
    input order regardless of how units were planned.
    """
    if cache is None:
        cache = {}
    by_index: dict[int, dict[str, Any]] = {}
    for unit in plan_units(scenarios, ensemble):
        rows = execute_unit(
            unit,
            engine,
            cache=cache,
            shard=shard,
            profile=profile,
            tracer=tracer,
            parent=parent,
        )
        for row in rows:
            by_index[row["index"]] = row
    return [by_index[scenario.index] for scenario in scenarios]


def shard_scenarios(
    spec: CampaignSpec, workers: int
) -> list[list[ScenarioSpec]]:
    """Deterministic shard assignment: design groups dealt round-robin.

    Groups (not single scenarios) are the unit of distribution so a
    worker can amortize one build across all of a design's scenarios;
    group order follows first appearance in the spec, which makes the
    assignment reproducible from the spec alone.  (The long-running
    service routes by a stable design-key hash instead — see
    :func:`repro.sweep.jobs.design_affinity` — so that affinity also
    holds *across* jobs.)
    """
    groups: dict[str, list[ScenarioSpec]] = {}
    order: list[str] = []
    for scenario in spec.scenarios:
        key = scenario.design_key()
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(scenario)
    n_shards = max(1, min(workers, len(order)))
    shards: list[list[ScenarioSpec]] = [[] for _ in range(n_shards)]
    for i, key in enumerate(order):
        shards[i % n_shards].extend(groups[key])
    return [shard for shard in shards if shard]


def run_campaign(
    spec: CampaignSpec,
    workers: int | None = None,
    engine: str | None = None,
    store: Any = None,
    ensemble: Any = "auto",
    profile: bool = False,
    timeout_s: float | None = None,
    retries: int | None = None,
) -> dict[str, Any]:
    """Execute *spec* and return the aggregated campaign report.

    A thin client of the jobs API: submits the campaign to an ephemeral
    :class:`repro.sweep.jobs.JobService` and waits for the report.
    *workers* / *engine* override the spec's values; ``workers <= 1``
    runs everything inline (no subprocesses).  *store* (a
    :class:`repro.sweep.store.ResultStore` or a path) enables result
    memoization — scenarios whose canonical key is already stored are
    answered from the store without simulating.  *ensemble* controls
    lockstep batching of control-identical scenarios (``"auto"``,
    ``"off"`` or an integer lane cap); reports are bit-identical either
    way, batching only changes throughput.  *profile* attaches the
    kernel profiler per scenario and folds its reports into the rows as
    volatile metadata (see ``docs/observability.md``).  *timeout_s* /
    *retries* set the run's deadline override and retry budget (see
    :meth:`repro.sweep.jobs.JobService.submit`).
    """
    from repro.sweep.jobs import JobService

    if workers is None:
        workers = spec.workers
    with JobService(
        workers=workers,
        engine=engine,
        store=store,
        ensemble=ensemble,
        profile=profile,
    ) as service:
        job_id = service.submit(
            spec, workers=workers, engine=engine, timeout_s=timeout_s,
            retries=retries,
        )
        return service.result(job_id)
