"""Campaign execution: sharding, per-worker design reuse, fault capture.

Execution model
---------------

A campaign's expanded scenarios are **grouped by design key** (family +
structural params) and the groups are dealt round-robin onto ``workers``
shards; grouping first means every scenario of one design lands in the
same worker, so the design is *built once per worker* and rewound
between scenarios with the kernel's columnar snapshot/restore (no
recompile).  Shard assignment is a pure function of the spec — and
scenario seeds are a pure function of (campaign seed, scenario key), see
:mod:`repro.sweep.spec` — so the same spec produces bit-identical
per-scenario metrics whether it runs serially, with 2 workers, or with
20.

Failures are contained at two levels: a scenario whose build or run
raises is reported as ``status="error"`` with the traceback (and its
cached design is dropped, so later scenarios re-build cleanly); a worker
process that dies outright fails only its shard — every scenario of
that shard is reported ``status="worker-failed"`` and the rest of the
campaign completes.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Sequence

from repro.sweep.registry import get_family
from repro.sweep.report import aggregate
from repro.sweep.spec import CampaignSpec, ScenarioSpec


def _scenario_row(scenario: ScenarioSpec, shard: int) -> dict[str, Any]:
    return {
        "key": scenario.key,
        "index": scenario.index,
        "family": scenario.family,
        "params": dict(scenario.params),
        "stimulus": dict(scenario.stimulus),
        "seed": scenario.seed,
        "shard": shard,
    }


def run_scenarios(
    scenarios: Sequence[ScenarioSpec],
    engine: str | None,
    shard: int = 0,
) -> list[dict[str, Any]]:
    """Run *scenarios* in order in this process (one worker's shard).

    Reusable designs are cached per design key: built on first use, a
    pristine snapshot taken immediately, and every later scenario of
    the same design starts from a ``restore`` of that snapshot instead
    of a rebuild.
    """
    cache: dict[str, tuple[Any, Any]] = {}
    rows: list[dict[str, Any]] = []
    for scenario in scenarios:
        row = _scenario_row(scenario, shard)
        start = time.perf_counter()
        design_key = scenario.design_key()
        try:
            family = get_family(scenario.family)
            if family.reusable:
                entry = cache.get(design_key)
                if entry is None:
                    handle = family.build(scenario.params, engine)
                    cache[design_key] = (handle, handle.sim.snapshot())
                else:
                    handle, pristine = entry
                    handle.sim.restore(pristine)
                metrics = family.run(handle, scenario)
            else:
                handle = family.build(scenario.params, engine)
                metrics = family.run(handle, scenario)
            row["status"] = "ok"
            row["metrics"] = metrics
        except Exception:
            # A failed scenario may leave a shared design mid-flight:
            # drop it so the next scenario of this design rebuilds.
            cache.pop(design_key, None)
            row["status"] = "error"
            row["error"] = traceback.format_exc()
        row["duration_s"] = round(time.perf_counter() - start, 4)
        rows.append(row)
    return rows


def _run_shard(
    shard: int, scenarios: Sequence[ScenarioSpec], engine: str | None
) -> list[dict[str, Any]]:
    """Worker-process entry point (must stay module-level picklable)."""
    return run_scenarios(scenarios, engine, shard=shard)


def shard_scenarios(
    spec: CampaignSpec, workers: int
) -> list[list[ScenarioSpec]]:
    """Deterministic shard assignment: design groups dealt round-robin.

    Groups (not single scenarios) are the unit of distribution so a
    worker can amortize one build across all of a design's scenarios;
    group order follows first appearance in the spec, which makes the
    assignment reproducible from the spec alone.
    """
    groups: dict[str, list[ScenarioSpec]] = {}
    order: list[str] = []
    for scenario in spec.scenarios:
        key = scenario.design_key()
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(scenario)
    n_shards = max(1, min(workers, len(order)))
    shards: list[list[ScenarioSpec]] = [[] for _ in range(n_shards)]
    for i, key in enumerate(order):
        shards[i % n_shards].extend(groups[key])
    return [shard for shard in shards if shard]


def run_campaign(
    spec: CampaignSpec,
    workers: int | None = None,
    engine: str | None = None,
) -> dict[str, Any]:
    """Execute *spec* and return the aggregated campaign report.

    *workers* / *engine* override the spec's values; ``workers <= 1``
    runs everything inline (no subprocesses).  The report is the
    :func:`repro.sweep.report.aggregate` structure: campaign metadata,
    one row per scenario ordered as specified, and a summary fold.
    """
    if workers is None:
        workers = spec.workers
    if engine is None:
        engine = spec.engine
    started = time.perf_counter()
    if workers <= 1:
        rows = run_scenarios(spec.scenarios, engine, shard=0)
    else:
        shards = shard_scenarios(spec, workers)
        rows = []
        if len(shards) == 1:
            rows = run_scenarios(shards[0], engine, shard=0)
        else:
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                futures = [
                    pool.submit(_run_shard, i, shard, engine)
                    for i, shard in enumerate(shards)
                ]
                for i, (shard, future) in enumerate(zip(shards, futures)):
                    try:
                        rows.extend(future.result())
                    except Exception as exc:
                        # The worker process itself died (OOM, signal,
                        # unpicklable result): fail its shard, keep the
                        # campaign going.
                        for scenario in shard:
                            row = _scenario_row(scenario, i)
                            row["status"] = "worker-failed"
                            row["error"] = (
                                f"{type(exc).__name__}: {exc}"
                            )
                            rows.append(row)
    rows.sort(key=lambda r: r["index"])
    elapsed = time.perf_counter() - started
    return aggregate(spec, rows, engine=engine, workers=workers,
                     elapsed_s=elapsed)
