"""Scenario execution: the one place a scenario actually runs.

PR 6 split this module's old orchestration/execution mix in two:

* **Execution** (this module): :func:`execute_scenario` builds — or
  rewinds — a design and drives one scenario to metrics.  It is the
  single primitive every runner shares: the in-process batch path, the
  campaign service's persistent workers, and ad-hoc programmatic use.
* **Orchestration** (:mod:`repro.sweep.jobs`): job queueing, worker
  pools, result-store dedup and report assembly.  :func:`run_campaign`
  is kept here as the stable one-shot entry point but is now a thin
  client of the jobs API.

Design reuse works through an explicit *cache* mapping
``(design_key, engine) -> (handle, pristine_snapshot)``: built on first
use, every later scenario of the same design starts from a ``restore``
of the pristine snapshot instead of a rebuild.  Because the cache key
is pure data, a cache can outlive one campaign — the service's workers
keep theirs across jobs, which is what makes repeated traffic cheap.

Failures are contained per scenario: a build or run that raises is
reported as ``status="error"`` with the traceback (and the cached
design is dropped, so later scenarios re-build cleanly).  Worker-death
containment lives with the worker pool in :mod:`repro.sweep.jobs`.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Sequence

from repro.sweep.registry import get_family
from repro.sweep.spec import CampaignSpec, ScenarioSpec

def _scenario_row(
    scenario: ScenarioSpec, shard: int | None
) -> dict[str, Any]:
    return {
        "key": scenario.key,
        "index": scenario.index,
        "family": scenario.family,
        "params": dict(scenario.params),
        "stimulus": dict(scenario.stimulus),
        "seed": scenario.seed,
        "shard": shard,
    }


def execute_scenario(
    scenario: ScenarioSpec,
    engine: str | None,
    cache: dict | None = None,
    shard: int | None = None,
) -> dict[str, Any]:
    """Run one scenario and return its report row.

    With a *cache*, reusable designs are built once per (design key,
    engine) and rewound between scenarios via the kernel's columnar
    snapshot/restore; the row's ``design_cache`` field records whether
    this run hit the cache (``"hit"``), populated it (``"build"``) or
    bypassed it (``"none"``, non-reusable families or no cache given).
    ``design_cache`` is placement metadata, not part of the metrics —
    reports are compared net of it.
    """
    row = _scenario_row(scenario, shard)
    start = time.perf_counter()
    cache_key = (scenario.design_key(), engine)
    try:
        family = get_family(scenario.family)
        if family.reusable and cache is not None:
            entry = cache.get(cache_key)
            if entry is None:
                handle = family.build(scenario.params, engine)
                cache[cache_key] = (handle, handle.sim.snapshot())
                row["design_cache"] = "build"
            else:
                handle, pristine = entry
                handle.sim.restore(pristine)
                row["design_cache"] = "hit"
            metrics = family.run(handle, scenario)
        else:
            handle = family.build(scenario.params, engine)
            metrics = family.run(handle, scenario)
            row["design_cache"] = "none"
        row["status"] = "ok"
        row["metrics"] = metrics
    except Exception:
        # A failed scenario may leave a shared design mid-flight:
        # drop it so the next scenario of this design rebuilds.
        if cache is not None:
            cache.pop(cache_key, None)
        row["status"] = "error"
        row["error"] = traceback.format_exc()
    row["duration_s"] = round(time.perf_counter() - start, 4)
    return row


def run_scenarios(
    scenarios: Sequence[ScenarioSpec],
    engine: str | None,
    shard: int = 0,
    cache: dict | None = None,
) -> list[dict[str, Any]]:
    """Run *scenarios* in order in this process (one worker's shard).

    A fresh design cache is used unless the caller passes one — the
    service's workers pass their long-lived cache so designs survive
    from job to job.
    """
    if cache is None:
        cache = {}
    return [
        execute_scenario(scenario, engine, cache=cache, shard=shard)
        for scenario in scenarios
    ]


def shard_scenarios(
    spec: CampaignSpec, workers: int
) -> list[list[ScenarioSpec]]:
    """Deterministic shard assignment: design groups dealt round-robin.

    Groups (not single scenarios) are the unit of distribution so a
    worker can amortize one build across all of a design's scenarios;
    group order follows first appearance in the spec, which makes the
    assignment reproducible from the spec alone.  (The long-running
    service routes by a stable design-key hash instead — see
    :func:`repro.sweep.jobs.design_affinity` — so that affinity also
    holds *across* jobs.)
    """
    groups: dict[str, list[ScenarioSpec]] = {}
    order: list[str] = []
    for scenario in spec.scenarios:
        key = scenario.design_key()
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(scenario)
    n_shards = max(1, min(workers, len(order)))
    shards: list[list[ScenarioSpec]] = [[] for _ in range(n_shards)]
    for i, key in enumerate(order):
        shards[i % n_shards].extend(groups[key])
    return [shard for shard in shards if shard]


def run_campaign(
    spec: CampaignSpec,
    workers: int | None = None,
    engine: str | None = None,
    store: Any = None,
) -> dict[str, Any]:
    """Execute *spec* and return the aggregated campaign report.

    A thin client of the jobs API: submits the campaign to an ephemeral
    :class:`repro.sweep.jobs.JobService` and waits for the report.
    *workers* / *engine* override the spec's values; ``workers <= 1``
    runs everything inline (no subprocesses).  *store* (a
    :class:`repro.sweep.store.ResultStore` or a path) enables result
    memoization — scenarios whose canonical key is already stored are
    answered from the store without simulating.
    """
    from repro.sweep.jobs import JobService

    if workers is None:
        workers = spec.workers
    with JobService(workers=workers, engine=engine, store=store) as service:
        job_id = service.submit(spec, workers=workers, engine=engine)
        return service.result(job_id)
