"""Coverage-guided stimulus fuzzing and fault-injection families.

Two campaign families built on the structural coverage maps of
:mod:`repro.sweep.coverage`:

``fuzz``
    A seeded mutation loop over **wave patterns** — sequences of
    ``(mask, burst, gap)`` waves, where *mask* selects the threads that
    push a *burst* of items before the design runs a *gap*-cycle
    window.  The corpus starts from the grid analogue (the ``active``
    stimulus shapes a classic campaign would enumerate), every pattern
    is evaluated inside :meth:`~repro.kernel.simulator.Simulator.fork`
    of one warm design, and a mutant joins the corpus iff it reaches a
    joint structural signature no earlier pattern reached.  Everything
    is driven by ``random.Random(scenario.seed)``, and the scenario
    seed is itself derived from the campaign seed + canonical scenario
    key, so the mutant sequence and the final coverage map are
    bit-identical across worker counts and settle engines.

``fault``
    The defect menagerie of ``tests/test_fault_injection.py`` promoted
    to first-class scenarios: token-dropping and token-duplicating
    MEBs, a producer that withdraws stalled offers, a receiver whose
    ready sticks low, and a shared variable-latency unit with a latency
    spike.  Each scenario arms one fault at a deterministic trigger
    point (``fire_at``) and checks an **oracle**: detectable faults
    (drop / duplicate / stuck valid) must be flagged by the existing
    checkers — conservation report or protocol monitor — and
    survivable ones (stuck ready / latency spike) must leave the
    pipeline consistent.  A fault armed beyond the run window must
    leave the design indistinguishable from a healthy one (the
    ``clean`` outcome), which is what lets the fork==uninterrupted
    differential tests cover these builds too.

Both families report through the common campaign machinery; the new
summary metrics (``coverage_pct``, ``new_states``, ``faults_survived``,
fault-oracle pass rate) are folded in :mod:`repro.sweep.report` and
gated in CI by ``benchmarks/check_coverage_regression.py``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis import check_token_conservation
from repro.core import (
    FullMEB,
    MTChannel,
    MTMonitor,
    MTSink,
    MTSource,
    MTVariableLatencyUnit,
)
from repro.elastic import ChannelMonitor, ElasticChannel, Sink, Source
from repro.kernel import Component, ProtocolError, SimulationError, Simulator, build
from repro.kernel.values import X
from repro.sweep.coverage import CoverageMap
from repro.sweep.families import (
    DesignHandle,
    _cost_metrics,
    _item_value,
    _meb_cls,
    make_mt_chain,
    make_mt_pipeline,
)
from repro.sweep.registry import Family, register_family
from repro.sweep.spec import ScenarioSpec

# ----------------------------------------------------------------------
# fuzz family: wave patterns, mutation operators, the corpus loop
# ----------------------------------------------------------------------

#: A wave is ``(mask, burst, gap, stall)``: threads selected by *mask*
#: each push a *burst* of items, the sink's ready sticks low for the
#: first *stall* cycles of the wave (backpressure — the axis grid
#: stimulus never sweeps), and the design runs a *gap*-cycle window.
#: A pattern is a tuple of waves; plain ints keep patterns hashable,
#: reprable and therefore digestible.
Wave = tuple[int, int, int, int]
Pattern = tuple[Wave, ...]

#: Gap menu for mutations — spans drain-limited to fully-quiescent.
_GAPS = (1, 2, 3, 5, 8, 13, 21)
#: Stall menu — mostly free-flowing, sometimes hard backpressure.
_STALLS = (0, 0, 1, 2, 3, 5, 8)

_FUZZ_BASES = ("mt_pipeline", "mt_chain")


class _StallGate:
    """A per-thread sink-ready gate the pattern runner arms per wave.

    ``until`` is an *absolute* cycle: the sink is stalled while the
    simulator's cycle is below it.  Pure function of the cycle counter,
    so runs stay cycle-identical across engines, and fork rewinds put
    the cycle (and therefore the gate's behavior) right back.

    The gate copies by identity: it is runner-side *stimulus*, not
    design state, so the kernel snapshot that deep-copies the sink's
    pattern table must keep pointing at the object the pattern runner
    arms (a cloned gate would silently freeze ``until`` at its value
    from snapshot time).
    """

    def __init__(self):
        self.until = 0

    def __call__(self, cycle: int) -> bool:
        return cycle >= self.until

    def __copy__(self):
        return self

    def __deepcopy__(self, _memo):
        return self


def seed_corpus(threads: int, burst: int, gap: int) -> list[Pattern]:
    """The grid analogue: one stall-free wave per ``active``-thread prefix.

    This is exactly the coverage a classic ``active`` stimulus sweep
    reaches, which makes the corpus' pre-mutation coverage the *grid
    baseline* the fuzzer must beat (``baseline_coverage_pct``).
    """
    return [
        (((1 << active) - 1, burst, gap, 0),)
        for active in range(1, threads + 1)
    ]


def mutate_pattern(
    pattern: Pattern, rng: random.Random, threads: int,
    max_burst: int, max_waves: int,
) -> Pattern:
    """One seeded mutation step: tweak, clone, drop or extend a wave."""
    waves = [list(w) for w in pattern]
    op = rng.randrange(7)
    i = rng.randrange(len(waves))
    if op == 0:
        # Flip one thread in the wave's mask (mask 0 is legal: a pure
        # idle wave, the settle+tick-fusion shape).
        waves[i][0] ^= 1 << rng.randrange(threads)
    elif op == 1:
        waves[i][1] = max(1, min(max_burst, waves[i][1] + rng.choice((-1, 1))))
    elif op == 2:
        waves[i][2] = rng.choice(_GAPS)
    elif op == 3:
        waves[i][3] = rng.choice(_STALLS)
    elif op == 4 and len(waves) > 1:
        del waves[i]
    elif op == 5 and len(waves) >= 2:
        j = rng.randrange(len(waves))
        waves[i], waves[j] = waves[j], waves[i]
    else:
        # Grow: duplicate or append a fresh wave; when already at the
        # cap, fall back to re-randomizing the wave's mask so this
        # opcode still consumes a fixed draw sequence deterministically.
        if len(waves) < max_waves:
            if rng.randrange(2):
                waves.insert(i, list(waves[i]))
            else:
                waves.append([
                    rng.randrange(1, 1 << threads),
                    rng.randint(1, max_burst),
                    rng.choice(_GAPS),
                    rng.choice(_STALLS),
                ])
        else:
            waves[i][0] = rng.randrange(1, 1 << threads)
    return tuple(tuple(w) for w in waves)


def _evaluate_pattern(
    handle: DesignHandle, pattern: Pattern, max_cycles: int
) -> int:
    """Run one pattern in a fork of the warm design; return cycles spent.

    The fork rewinds all columnar state on exit, so every pattern sees
    the identical pristine design; the attached :class:`CoverageMap`
    deliberately survives the rewind and keeps accumulating.
    """
    sim = handle.sim
    gates = handle.stall_gates
    with sim.fork():
        start = sim.cycle
        base = handle.sink.count
        pushed = 0
        for mask, burst, gap, stall in pattern:
            for t in range(handle.threads):
                if (mask >> t) & 1:
                    for k in range(burst):
                        handle.source.push(t, _item_value(t, pushed + k))
                    pushed += burst
            for gate in gates:
                gate.until = sim.cycle + stall
            sim.run(cycles=gap)
        for gate in gates:
            gate.until = 0
        if pushed:
            sim.run(
                until=lambda _s: handle.sink.count >= base + pushed,
                max_cycles=max_cycles,
            )
        # Two settled cycles so the post-drain quiescent signature is
        # observed before the fork rewinds.
        sim.run(cycles=2)
        return sim.cycle - start


def _build_fuzz(params: Mapping[str, Any], engine: str | None) -> DesignHandle:
    base = str(params.get("base", "mt_pipeline"))
    if base not in _FUZZ_BASES:
        raise ValueError(
            f"fuzz base must be one of {sorted(_FUZZ_BASES)}, got {base!r}"
        )
    threads = int(params.get("threads", 4))
    width = int(params.get("width", 32))
    gates = [_StallGate() for _ in range(threads)]
    if base == "mt_pipeline":
        sim, source, sink, mebs, monitors = make_mt_pipeline(
            _meb_cls(params),
            threads=threads,
            items=[[] for _ in range(threads)],
            n_stages=int(params.get("n_stages", 2)),
            width=width,
            sink_patterns=gates,
            engine=engine,
        )
        handle = DesignHandle(
            sim=sim, source=source, sink=sink, monitor=monitors[-1],
            area_components=list(mebs), threads=threads,
        )
    else:
        sim, source, sink, monitor = make_mt_chain(
            threads=threads,
            n_funcs=int(params.get("n_funcs", 4)),
            n_items=0,
            width=width,
            engine=engine,
            with_monitor=True,
            sink_patterns=gates,
        )
        handle = DesignHandle(
            sim=sim, source=source, sink=sink, monitor=monitor,
            area_components=[sim.find("meb_in"), sim.find("meb_out")],
            threads=threads,
        )
    handle.stall_gates = gates
    return handle


def _run_fuzz(handle: DesignHandle, scenario: ScenarioSpec) -> dict:
    stim = scenario.stimulus
    rounds = int(stim.get("rounds", 48))
    burst = int(stim.get("burst", 3))
    gap = int(stim.get("gap", 4))
    max_burst = int(stim.get("max_burst", 5))
    max_waves = int(stim.get("max_waves", 6))
    max_cycles = int(stim.get("max_cycles", 10_000))

    rng = random.Random(scenario.seed)
    cov = CoverageMap(handle.sim).attach()
    cycles = 0
    try:
        corpus: list[Pattern] = seed_corpus(handle.threads, burst, gap)
        for pattern in corpus:
            cycles += _evaluate_pattern(handle, pattern, max_cycles)
        baseline_pct = cov.coverage_pct
        baseline_states = cov.new_states

        # The ledger records (pattern, states gained) per mutant; its
        # digest is the "bit-identical mutant sequence" witness the
        # determinism tests and the CI gate compare.
        ledger: list[tuple[Pattern, int]] = []
        kept = 0
        for _ in range(rounds):
            parent = corpus[rng.randrange(len(corpus))]
            mutant = mutate_pattern(
                parent, rng, handle.threads, max_burst, max_waves
            )
            before = cov.new_states
            cycles += _evaluate_pattern(handle, mutant, max_cycles)
            gained = cov.new_states - before
            ledger.append((mutant, gained))
            if gained:
                corpus.append(mutant)
                kept += 1
    finally:
        cov.detach()

    mutant_digest = hashlib.sha256(
        "\n".join(repr(entry) for entry in ledger).encode()
    ).hexdigest()
    out: dict[str, Any] = {
        "cycles": cycles,
        "baseline_coverage_pct": baseline_pct,
        "seed_states": baseline_states,
        "mutants_evaluated": rounds,
        "mutants_kept": kept,
        "corpus_size": len(corpus),
        "mutant_digest": mutant_digest,
    }
    out.update(cov.summary())
    out["coverage_gain_pct"] = round(out["coverage_pct"] - baseline_pct, 4)
    out.update(_cost_metrics(handle.area_components))
    return out


# ----------------------------------------------------------------------
# fault family: armed defects promoted from tests/test_fault_injection.py
# ----------------------------------------------------------------------

class DroppingMEB(FullMEB):
    """Silently discards accepted items once armed.

    From the ``fire_at``-th accepted item on, every ``period``-th item
    is dropped: the capture pretends to accept but masks the enqueue,
    exactly like the ad-hoc test component this generalizes.
    """

    def __init__(self, *args, fire_at: int = 3, period: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        self._accept_count = 0
        self._fire_at = fire_at
        self._period = period
        self.fired = 0

    def capture(self):
        enq = self._input_thread()
        if enq is not None:
            self._accept_count += 1
            since = self._accept_count - self._fire_at
            if since >= 0 and since % self._period == 0:
                self.fired += 1
                transferred = self._output_transferred()
                queues = [list(q) for q in self._queues]
                if transferred:
                    queues[self._grant].pop(0)
                self._next_queues = queues
                self.arbiter.note(self._grant, transferred)
                return
        super().capture()


class DuplicatingMEB(FullMEB):
    """Enqueues armed items twice (token-conservation violation)."""

    def __init__(self, *args, fire_at: int = 2, period: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        self._accept_count = 0
        self._fire_at = fire_at
        self._period = period
        self.fired = 0

    def capture(self):
        super().capture()
        enq = self._input_thread()
        if enq is None or self._next_queues is None:
            return
        self._accept_count += 1
        since = self._accept_count - self._fire_at
        if since >= 0 and since % self._period == 0:
            self.fired += 1
            self._next_queues[enq].append(self.up.data.value)


class WithdrawingSource(Source):
    """Withdraws stalled offers on odd cycles once armed (persistence
    violation the single-thread channel monitor must catch)."""

    def __init__(self, *args, fire_at: int = 2, **kwargs):
        # The always-true injection pattern marks the source volatile:
        # the settle engines must re-run it every cycle so the armed
        # withdrawal actually executes once the design has gone stable.
        kwargs.setdefault("pattern", lambda _c: True)
        super().__init__(*args, **kwargs)
        self._fire_at = fire_at
        self.fired = 0

    def combinational(self):
        super().combinational()
        if self._cycle >= self._fire_at and self._cycle % 2 == 1:
            if self.channel.valid.value:
                self.fired += 1
                self.channel.valid.set(False)
                self.channel.data.set(X)


@dataclass
class FaultHandle:
    """What a fault build hands the oracle runner."""

    sim: Simulator
    kind: str
    source: Any
    sink: Any
    mon_in: Any
    mon_out: Any
    fault: Any = None                  # the armed component, if any
    threads: int = 1
    fire_at: int = 0
    area_components: list[Component] = field(default_factory=list)


#: fault kind -> (expected outcome when it fires, detector label)
FAULT_KINDS: dict[str, tuple[str, str]] = {
    "drop": ("detected", "conservation"),
    "duplicate": ("detected", "conservation"),
    "stuck_valid": ("detected", "protocol_monitor"),
    "stuck_ready": ("survived", "conservation"),
    "latency_spike": ("survived", "conservation"),
}


def _build_fault_meb(meb_cls, params, engine, **fault_kw) -> FaultHandle:
    threads = int(params.get("threads", 2))
    c0 = MTChannel("c0", threads=threads)
    c1 = MTChannel("c1", threads=threads)
    src = MTSource("src", c0, items=[[] for _ in range(threads)])
    meb = meb_cls("meb", c0, c1, **fault_kw)
    sink = MTSink("snk", c1)
    mon_in = MTMonitor("mon_in", c0)
    mon_out = MTMonitor("mon_out", c1)
    sim = build(c0, c1, src, meb, sink, mon_in, mon_out, engine=engine)
    return FaultHandle(
        sim=sim, kind=str(params["fault"]), source=src, sink=sink,
        mon_in=mon_in, mon_out=mon_out, fault=meb, threads=threads,
        fire_at=int(fault_kw.get("fire_at", 0)), area_components=[meb],
    )


def _build_stuck_valid(params, engine) -> FaultHandle:
    fire_at = int(params.get("fire_at", 2))
    ch = ElasticChannel("ch", width=16)
    src = WithdrawingSource("src", ch, items=[], fire_at=fire_at)
    # A permanently stalled consumer: any offer must persist — the armed
    # source won't let it.
    sink = Sink("snk", ch, pattern=lambda c: False)
    mon = ChannelMonitor("mon", ch)
    sim = build(ch, src, sink, mon, engine=engine)
    return FaultHandle(
        sim=sim, kind="stuck_valid", source=src, sink=sink,
        mon_in=mon, mon_out=mon, fault=src, threads=1, fire_at=fire_at,
    )


def _build_stuck_ready(params, engine) -> FaultHandle:
    threads = int(params.get("threads", 2))
    fire_at = int(params.get("fire_at", 12))
    c0 = MTChannel("c0", threads=threads)
    c1 = MTChannel("c1", threads=threads)
    src = MTSource("src", c0, items=[[] for _ in range(threads)])
    meb = FullMEB("meb", c0, c1)
    # The fault is the receiver: per-thread ready sticks low from
    # fire_at on, parking in-flight tokens forever.
    sink = MTSink(
        "snk", c1, patterns=[lambda c: c < fire_at] * threads
    )
    mon_in = MTMonitor("mon_in", c0)
    mon_out = MTMonitor("mon_out", c1)
    sim = build(c0, c1, src, meb, sink, mon_in, mon_out, engine=engine)
    return FaultHandle(
        sim=sim, kind="stuck_ready", source=src, sink=sink,
        mon_in=mon_in, mon_out=mon_out, fault=None, threads=threads,
        fire_at=fire_at, area_components=[meb],
    )


def _build_latency_spike(params, engine) -> FaultHandle:
    threads = int(params.get("threads", 2))
    fire_at = int(params.get("fire_at", 3))
    spike = int(params.get("spike", 12))

    def latency(_data, accepted):
        return spike if accepted + 1 == fire_at else 1

    c0 = MTChannel("c0", threads=threads)
    c1 = MTChannel("c1", threads=threads)
    c2 = MTChannel("c2", threads=threads)
    c3 = MTChannel("c3", threads=threads)
    src = MTSource("src", c0, items=[[] for _ in range(threads)])
    meb_in = FullMEB("meb_in", c0, c1)
    # Identity datapath: conservation compares token values end to end,
    # and the fault under test is the latency, not the computation.
    unit = MTVariableLatencyUnit(
        "vl", c1, c2, fn=lambda x: x, latency=latency
    )
    meb_out = FullMEB("meb_out", c2, c3)
    sink = MTSink("snk", c3)
    mon_in = MTMonitor("mon_in", c0)
    mon_out = MTMonitor("mon_out", c3)
    sim = build(c0, c1, c2, c3, src, meb_in, unit, meb_out, sink,
                mon_in, mon_out, engine=engine)
    return FaultHandle(
        sim=sim, kind="latency_spike", source=src, sink=sink,
        mon_in=mon_in, mon_out=mon_out, fault=unit, threads=threads,
        fire_at=fire_at, area_components=[meb_in, meb_out],
    )


def _build_fault(params: Mapping[str, Any], engine: str | None) -> FaultHandle:
    kind = str(params.get("fault", "drop"))
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"fault must be one of {sorted(FAULT_KINDS)}, got {kind!r}"
        )
    if kind == "drop":
        return _build_fault_meb(
            DroppingMEB, params, engine,
            fire_at=int(params.get("fire_at", 3)),
            period=int(params.get("period", 3)),
        )
    if kind == "duplicate":
        return _build_fault_meb(
            DuplicatingMEB, params, engine,
            fire_at=int(params.get("fire_at", 2)),
            period=int(params.get("period", 3)),
        )
    if kind == "stuck_valid":
        return _build_stuck_valid(params, engine)
    if kind == "stuck_ready":
        return _build_stuck_ready(params, engine)
    return _build_latency_spike(params, engine)


def _push_fault_items(handle: FaultHandle, items: int) -> int:
    if handle.kind == "stuck_valid":
        for k in range(items):
            handle.source.push(k + 1)
        return items
    for t in range(handle.threads):
        for k in range(items):
            handle.source.push(t, _item_value(t, k))
    return items * handle.threads


def run_fault_window(handle: FaultHandle, items: int, window: int) -> dict:
    """Drive one armed design for a bounded window; classify the outcome.

    Bounded ``run(cycles=...)`` windows, not ``until=`` predicates:
    most of these faults make completion predicates unsatisfiable by
    construction (dropped or parked tokens never arrive).
    """
    pushed = _push_fault_items(handle, items)
    error: str | None = None
    detected_by: str | None = None
    try:
        handle.sim.run(cycles=window)
    except ProtocolError as exc:
        error, detected_by = str(exc), "protocol_monitor"
    except SimulationError as exc:
        error, detected_by = str(exc), "invariant"

    delivered = handle.sink.count
    if handle.kind == "stuck_valid":
        fired = handle.fault.fired > 0
        conservation_ok = error is None
    else:
        # Parked/in-flight tokens are legal; lost or duplicated ones
        # are not.  ``items`` per thread bounds what can legally park.
        report = check_token_conservation(
            handle.mon_in, handle.mon_out, allow_in_flight=items
        )
        conservation_ok = report.ok and error is None
        if not report.ok:
            detected_by = detected_by or "conservation"
        if handle.kind == "stuck_ready":
            fired = handle.sim.cycle >= handle.fire_at
        elif handle.kind == "latency_spike":
            fired = handle.fault._accepted >= handle.fire_at
        else:
            fired = handle.fault.fired > 0

    if not fired:
        outcome = "clean" if conservation_ok else "missed"
    elif not conservation_ok:
        outcome = "detected"
    else:
        outcome = "survived"
    return {
        "pushed": pushed,
        "delivered": delivered,
        "fired": fired,
        "outcome": outcome,
        "detected_by": detected_by,
        "error": error,
    }


def _run_fault(handle: FaultHandle, scenario: ScenarioSpec) -> dict:
    stim = scenario.stimulus
    items = int(stim.get("items_per_thread", 6))
    window = int(stim.get("window", 80 + 12 * items))
    expected, _detector = FAULT_KINDS[handle.kind]
    result = run_fault_window(handle, items, window)
    outcome = result["outcome"]
    oracle_ok = (
        outcome == "clean" if not result["fired"] else outcome == expected
    )
    survived = bool(result["fired"] and outcome == "survived")
    out: dict[str, Any] = {
        "cycles": handle.sim.cycle,
        "fault": handle.kind,
        "fire_at": handle.fire_at,
        "expected": expected,
        "outcome": outcome,
        "oracle_ok": oracle_ok,
        "faults_survived": int(survived),
        "fired": result["fired"],
        "detected_by": result["detected_by"],
        "pushed": result["pushed"],
        "delivered": result["delivered"],
    }
    out.update(_cost_metrics(handle.area_components))
    return out


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------

register_family(Family(
    name="fuzz",
    build=_build_fuzz,
    run=_run_fuzz,
    reusable=True,
    description="coverage-guided wave-pattern mutation over a warm "
                "design (params: base in {mt_pipeline, mt_chain} plus "
                "the base family's params)",
    params={"base": "mt_pipeline", "threads": 4, "n_stages": 2,
            "meb": "reduced", "width": 32},
    stimulus_kinds=("fuzz",),
))
register_family(Family(
    name="fault",
    build=_build_fault,
    run=_run_fault,
    # Fault components carry python-side trigger counters that sit
    # outside the columnar snapshot; a fresh build per scenario keeps
    # every run independent and bit-reproducible.
    reusable=False,
    description="armed fault injection with oracle checks (params: "
                "fault in {drop, duplicate, stuck_valid, stuck_ready, "
                "latency_spike}, threads, fire_at, period, spike)",
    params={"fault": "drop", "threads": 2, "fire_at": 3},
    stimulus_kinds=("inject",),
))
