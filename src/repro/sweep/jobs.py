"""The jobs API: campaign simulation as a service, transport-agnostic.

This module is the single programmatic entry point for running
campaigns.  Everything else is a client of it: ``python -m repro.sweep
run`` submits one job to an ephemeral service and waits;
:mod:`repro.serve` wraps a long-running service in an HTTP/JSON front
end; tests and benchmarks drive it directly.

The moving parts of a :class:`JobService`:

* **An async job queue.**  :meth:`~JobService.submit` validates the
  spec (structured :class:`repro.sweep.spec.SpecError` on bad input),
  registers a job and returns its id immediately; a dispatcher thread
  executes jobs FIFO.  :meth:`~JobService.status` /
  :meth:`~JobService.result` / :meth:`~JobService.cancel` observe and
  steer jobs by id.

* **A persistent worker pool with design-cache affinity.**  With
  ``workers=N`` the service keeps N long-lived worker processes;
  scenarios are routed to workers by a stable hash of their design key
  (:func:`design_affinity`), so every scenario of one design — across
  *all* jobs, not just within one campaign — lands on the worker that
  already holds that design compiled, and rewinds it via the kernel's
  columnar snapshot/restore instead of rebuilding.  ``workers<=1`` (or
  0) executes inline in the dispatcher thread with the same long-lived
  cache semantics.  A worker process that dies fails only the scenario
  it was running (``status="worker-failed"``); the pool respawns the
  worker (cold cache) and the job continues.

* **A persisted result store with dedup.**  With a
  :class:`repro.sweep.store.ResultStore`, each scenario's canonical
  :meth:`~repro.sweep.spec.ScenarioSpec.result_key` is consulted before
  dispatch: an identical scenario submitted twice returns the stored
  row (``"cached": true``) without simulating.  Metrics are pure
  functions of the scenario, so memoized and fresh reports are
  bit-identical per scenario.

Determinism is inherited, not re-established: scenario seeds derive
from (campaign seed, scenario key) alone and the settle engines are
cycle-identical, so CLI, sharded, pooled and memoized runs of the same
spec all produce the same per-scenario metrics.

The service is also **fault-tolerant** (the resilience layer):

* **Deadlines + watchdog** — every dispatched unit carries a deadline
  (explicit ``timeout_s`` at any level, or derived from the family's
  recent p95 durations); the dispatcher kills and respawns a worker
  that blows it and marks the rows ``status="timeout"`` without
  failing the rest of the job.  Inline mode abandons the runner thread
  instead (it cannot be killed) and continues on a fresh one.
* **Bounded retries** — rows failing with a retryable status
  (:data:`RETRYABLE_STATUSES`) are re-enqueued up to ``retries`` times
  with exponential backoff, re-routed off the affinity worker on the
  second attempt.  A retried-then-ok row is bit-identical to a
  first-try row (determinism again); its ``attempts`` count is a
  volatile field.
* **Admission control** — ``max_queued_jobs`` / ``max_scenarios_per_job``
  reject over-limit submissions with a structured :class:`QuotaError`
  (HTTP 429), and :meth:`~JobService.stats` reports saturation.
* **Graceful drain** — :meth:`~JobService.shutdown` stops admission,
  settles in-flight jobs, flushes the store and lets every open event
  stream deliver its terminal line before closing.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import pathlib
import queue
import threading
import time
import traceback
from collections import deque
from typing import Any, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sweep.report import aggregate
from repro.sweep.registry import registry_payload
from repro.sweep.runner import _scenario_row, execute_unit, plan_units
from repro.sweep.spec import (
    CampaignSpec,
    _retries_value,
    _timeout_value,
    from_dict,
    load_spec,
)
from repro.sweep.store import ResultStore

#: Poll interval for the pooled result loop (drives liveness checks).
_POLL_S = 0.05

#: Job states after which no further events can be published.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Row statuses that justify automatically re-running the unit: the
#: failure was the harness's (a dead or hung worker), never the
#: design's (those are "error" rows and retrying would just repeat
#: them — the simulation is deterministic).
RETRYABLE_STATUSES = frozenset({"worker-failed", "timeout"})

#: Deadline derivation from recent per-family durations: once a family
#: has this many fresh (non-cached, ok) samples, its default deadline
#: is ``max(floor, multiple × p95)``.  The generous multiple plus the
#: floor make derived deadlines a hung-unit tripwire, not a
#: performance budget — a healthy scenario never gets near one.
_TIMEOUT_MIN_SAMPLES = 8
_TIMEOUT_P95_MULTIPLE = 20.0
_TIMEOUT_FLOOR_S = 30.0

#: First-retry backoff in seconds; doubles per subsequent attempt.
_RETRY_BACKOFF_S = 0.05


class QuotaError(RuntimeError):
    """A submission was rejected by admission control (HTTP 429).

    Structured like :class:`repro.sweep.spec.SpecError` (one source,
    every transport) but deliberately *not* a subclass: a quota
    rejection is a service-state condition — retry later, or against
    another instance — not a malformed spec to be fixed.  *kind* is
    machine-readable (``"draining"``, ``"queue_full"``,
    ``"too_many_scenarios"``); *limit*/*actual* quantify the breach
    when one applies.
    """

    def __init__(
        self,
        reason: str,
        *,
        kind: str,
        limit: int | None = None,
        actual: int | None = None,
    ):
        self.reason = reason
        self.kind = kind
        self.limit = limit
        self.actual = actual
        super().__init__(reason)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "reason": self.reason,
            "limit": self.limit,
            "actual": self.actual,
        }


def design_affinity(design_key: str, workers: int) -> int:
    """Stable worker index for a design key.

    A pure function of the key (not of the campaign), so the same
    design always lands on the same worker across jobs — the property
    that turns per-worker design caches into a cross-job design cache.
    """
    digest = hashlib.sha256(design_key.encode()).digest()
    return int.from_bytes(digest[:8], "big") % workers


# ----------------------------------------------------------------------
# worker pool
# ----------------------------------------------------------------------

def _worker_main(index: int, tasks, results) -> None:
    """Worker-process loop: execute units against a persistent cache.

    A *unit* is a list of scenarios — a singleton for the serial path
    or an ensemble batch of control-identical scenarios that advance in
    lockstep through one compiled schedule.  The cache maps (design
    key, engine[, "ensemble"]) to (handle[, ctx], pristine snapshot)
    and lives for the worker's whole life — jobs come and go, compiled
    designs stay warm.

    Each message carries an *opts* mapping: ``profile`` attaches the
    kernel profiler per scenario, ``trace_id``/``parent`` seed a
    worker-side :class:`~repro.obs.trace.Tracer` whose finished spans
    (unit -> scenario -> build/simulate/metrics, tagged with this
    worker's index) ship back in the result tuple for the dispatcher to
    merge into the job's trace.
    """
    cache: dict = {}
    while True:
        msg = tasks.get()
        if msg is None:
            return
        job_id, unit, engine, opts = msg
        tracer = Tracer(trace_id=opts.get("trace_id"), worker=index)
        try:
            with tracer.span(
                "unit",
                parent=opts.get("parent"),
                scenarios=len(unit),
                mode="pool",
            ) as unit_span:
                unit_rows = execute_unit(
                    unit,
                    engine,
                    cache=cache,
                    shard=index,
                    profile=bool(opts.get("profile")),
                    tracer=tracer,
                    parent=unit_span,
                )
        except BaseException as exc:  # pragma: no cover - defensive
            unit_rows = []
            for scenario in unit:
                row = _scenario_row(scenario, index)
                row["status"] = "error"
                row["error"] = f"{type(exc).__name__}: {exc}"
                unit_rows.append(row)
        indices = [scenario.index for scenario in unit]
        try:
            results.put((index, job_id, indices, unit_rows, tracer.spans()))
        except Exception:  # pragma: no cover - unpicklable metrics
            fallback = []
            for scenario in unit:
                row = _scenario_row(scenario, index)
                row["status"] = "error"
                row["error"] = "scenario result was not serializable"
                fallback.append(row)
            results.put((index, job_id, indices, fallback, tracer.spans()))


class _Worker:
    """One pool member: a task queue plus the process draining it."""

    def __init__(self, ctx, index: int, results):
        self.index = index
        self.tasks = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(index, self.tasks, results),
            daemon=True,
            name=f"sweep-worker-{index}",
        )
        self.process.start()


class _WorkerPool:
    """N persistent worker processes sharing one result queue."""

    def __init__(self, size: int):
        self._ctx = multiprocessing.get_context()
        self.size = size
        self.results = self._ctx.Queue()
        self.workers = [
            _Worker(self._ctx, i, self.results) for i in range(size)
        ]
        self.respawns = 0

    def alive(self) -> list[bool]:
        return [w.process.is_alive() for w in self.workers]

    def respawn(self, index: int) -> None:
        """Replace a dead worker with a fresh (cold-cache) one."""
        old = self.workers[index]
        if old.process.is_alive():  # pragma: no cover - defensive
            old.process.terminate()
        old.process.join(timeout=1.0)
        self.workers[index] = _Worker(self._ctx, index, self.results)
        self.respawns += 1

    def close(self) -> None:
        for worker in self.workers:
            try:
                worker.tasks.put(None)
            except Exception:  # pragma: no cover - already torn down
                pass
        for worker in self.workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)


class _InlineRunner:
    """Inline analogue of a pool worker: a daemon thread owning the cache.

    Inline execution cannot kill a hung unit the way the pool kills a
    process, so the unit runs on this thread and the dispatcher waits
    on the results queue with the unit's deadline.  On a blown deadline
    the dispatcher *abandons* the runner — sets ``abandoned`` so a late
    result is discarded, leaves the daemon thread to finish or leak —
    and replaces it with a fresh runner (and fresh cache): the inline
    kill+respawn, at the cost of a cold cache.
    """

    def __init__(self, cache: dict):
        self.cache = cache
        self.tasks: queue.Queue = queue.Queue()
        self.results: queue.Queue = queue.Queue()
        self.abandoned = threading.Event()
        self.thread = threading.Thread(
            target=self._loop, daemon=True, name="sweep-inline-runner"
        )
        self.thread.start()

    def _loop(self) -> None:
        while True:
            msg = self.tasks.get()
            if msg is None:
                return
            job, unit, engine, profile = msg
            try:
                with job.tracer.span(
                    "unit",
                    parent=job.span,
                    scenarios=len(unit),
                    mode="inline",
                ) as unit_span:
                    unit_rows = execute_unit(
                        unit,
                        engine,
                        cache=self.cache,
                        shard=0,
                        profile=profile,
                        tracer=job.tracer,
                        parent=unit_span,
                    )
            except BaseException as exc:  # pragma: no cover - defensive
                unit_rows = []
                for scenario in unit:
                    row = _scenario_row(scenario, 0)
                    row["status"] = "error"
                    row["error"] = f"{type(exc).__name__}: {exc}"
                    unit_rows.append(row)
            if self.abandoned.is_set():
                return
            self.results.put(([s.index for s in unit], unit_rows))

    def close(self) -> None:
        self.tasks.put(None)
        self.thread.join(timeout=1.0)


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------

class Job:
    """One submitted campaign and everything observed about it."""

    def __init__(
        self,
        job_id: str,
        spec: CampaignSpec,
        engine: str | None,
        workers: int,
        profile: bool = False,
        timeout_s: float | None = None,
        retries: int = 0,
    ):
        self.id = job_id
        self.spec = spec
        self.engine = engine
        self.workers = workers
        self.profile = bool(profile)
        #: Submit-time deadline override (wins over spec-level values).
        self.timeout_s = timeout_s
        #: Resolved retry budget (submit > spec > service default).
        self.retries = retries
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.completed = 0
        self.dedup_hits = 0
        self.rows: list[dict[str, Any]] | None = None
        self.report: dict[str, Any] | None = None
        self.error: str | None = None
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()
        # Structured trace: the dispatcher-side tracer plus span dicts
        # shipped back from pool workers (already tagged with trace_id
        # == job id, so merging is a plain extend).
        self.tracer: Tracer | None = None
        self.span: Any = None
        self.worker_spans: list[dict[str, Any]] = []
        # Streamed progress: an append-only replay log plus per-consumer
        # fan-out queues.  The one lock orders appends against
        # subscriber registration, so every consumer sees every event
        # exactly once (subscribe replays the log, then drains its
        # queue, deduplicating on `seq`).
        self.events_log: list[dict[str, Any]] = []
        self._subscribers: list[queue.Queue] = []
        self._events_lock = threading.Lock()

    def publish(self, event: dict[str, Any]) -> None:
        """Append *event* to the log and fan it out to subscribers."""
        with self._events_lock:
            event = dict(event)
            event["seq"] = len(self.events_log)
            event["job_id"] = self.id
            self.events_log.append(event)
            subscribers = list(self._subscribers)
        for sub in subscribers:
            sub.put(event)

    def subscribe(self) -> tuple[list[dict[str, Any]], queue.Queue]:
        """Register a consumer: (replay backlog, live queue).

        The backlog and the queue may overlap around the registration
        instant; consumers deduplicate on each event's ``seq``.
        """
        sub: queue.Queue = queue.Queue()
        with self._events_lock:
            backlog = list(self.events_log)
            self._subscribers.append(sub)
        return backlog, sub

    def unsubscribe(self, sub: queue.Queue) -> None:
        with self._events_lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    def status(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "name": self.spec.name,
            "state": self.state,
            "engine": self.engine,
            "workers": self.workers,
            "scenarios": len(self.spec.scenarios),
            "completed": self.completed,
            "dedup_hits": self.dedup_hits,
            "retries": self.retries,
            "timeout_s": self.timeout_s,
            "cancel_requested": self.cancel_event.is_set(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.finished_at is not None and self.started_at is not None:
            out["elapsed_s"] = round(self.finished_at - self.started_at, 4)
        if self.report is not None:
            summary = self.report["summary"]
            out["ok"] = summary["ok"]
            out["failed"] = summary["failed"]
            # Campaign-level coverage/fault metrics surface on the job
            # itself, so service clients (and CI smoke assertions) can
            # read them without pulling the full report.
            for key in ("coverage_pct", "new_states", "faults_survived",
                        "fault_oracles"):
                if key in summary:
                    out[key] = summary[key]
        if self.error is not None:
            out["error"] = self.error
        return out


class JobService:
    """The campaign service core (see module docstring).

    ``workers=0`` (or 1) executes jobs inline in the dispatcher thread
    — same semantics, no subprocesses — which is also the mode the
    one-shot CLI uses for serial runs.  *store* enables result-store
    dedup: pass a :class:`ResultStore`, a path for a persisted JSONL
    store, or ``True`` for an in-memory one.

    Resilience knobs: *retries* is the default retry budget for
    retryable failures (spec/submit values win); *default_timeout_s*
    the deadline of last resort when neither the spec nor the family's
    duration history provides one; *max_queued_jobs* /
    *max_scenarios_per_job* enable admission control
    (:class:`QuotaError` on breach).
    """

    def __init__(
        self,
        workers: int = 0,
        engine: str | None = None,
        store: ResultStore | str | pathlib.Path | bool | None = None,
        ensemble: Any = "auto",
        profile: bool = False,
        retries: int = 1,
        default_timeout_s: float | None = None,
        max_queued_jobs: int | None = None,
        max_scenarios_per_job: int | None = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.pool_size = workers if workers > 1 else 0
        self.engine = engine
        # Lockstep-batching policy for every job this service runs:
        # "auto" (default cap), "off", or an integer lane cap.  Reports
        # are bit-identical either way; see repro.sweep.runner.
        self.ensemble = ensemble
        # Default profiling policy; ``submit(profile=...)`` overrides
        # per job.  Profiled rows carry a "profile" dict (volatile —
        # stripped from canonical reports and dedup storage).
        self.profile = bool(profile)
        if store is True:
            store = ResultStore()
        elif isinstance(store, (str, pathlib.Path)):
            store = ResultStore(store)
        self.store = store
        self.retries = retries
        self.default_timeout_s = _timeout_value(
            default_timeout_s, path="service", field="default_timeout_s"
        )
        self.max_queued_jobs = max_queued_jobs
        self.max_scenarios_per_job = max_scenarios_per_job
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pool: _WorkerPool | None = None
        self._inline_cache: dict = {}
        self._inline_runner: _InlineRunner | None = None
        self._dispatcher: threading.Thread | None = None
        self._closed = False
        self._draining = False
        self._drain_seconds: float | None = None
        self._started_at = time.time()
        # Admission-control accounting: rejections by kind, for
        # stats()["admission"] (the metrics counter mirrors it).
        self._rejected: dict[str, int] = {}
        # Recent per-family ok-row durations (dispatcher thread only),
        # feeding the derived-deadline estimate.
        self._durations: dict[str, deque] = {}
        # Open events() streams; graceful drain waits (bounded) for
        # them to deliver their terminal lines before closing.
        self._active_streams = 0
        # Service-lifetime dedup accounting: per-job `dedup_hits` only
        # tells a client about its own submission; these fold every
        # store lookup since service start so /healthz can report a
        # global hit rate.
        self.dedup_hits = 0
        self.dedup_misses = 0
        # Prometheus-style metrics (rendered by render_metrics / GET
        # /metrics).  Everything here is also derivable from stats(),
        # but the registry keeps monotonic counters across the service
        # lifetime in a scrape-friendly exposition format.
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_submitted = m.counter(
            "repro_jobs_submitted_total", "Campaign jobs accepted by submit()."
        )
        self._m_jobs_completed = m.counter(
            "repro_jobs_completed_total",
            "Jobs that reached a terminal state.",
            labelnames=("state",),
        )
        self._m_job_duration = m.histogram(
            "repro_job_duration_seconds",
            "Wall time from job start to terminal state.",
        )
        self._m_scenario_duration = m.histogram(
            "repro_scenario_duration_seconds",
            "Per-scenario simulation wall time (cached rows observe 0).",
        )
        self._m_scenarios = m.counter(
            "repro_scenarios_completed_total",
            "Scenario rows produced, by final status.",
            labelnames=("status",),
        )
        self._m_dedup = m.counter(
            "repro_dedup_lookups_total",
            "Result-store lookups before dispatch.",
            labelnames=("result",),
        )
        self._m_ensemble_fallbacks = m.counter(
            "repro_ensemble_fallbacks_total",
            "Ensemble units that fell back to serial execution.",
        )
        self._m_queue_depth = m.gauge(
            "repro_queue_depth", "Jobs waiting in the dispatch queue."
        )
        self._m_inflight = m.gauge(
            "repro_pool_inflight", "Units currently executing on pool workers."
        )
        self._m_workers = m.gauge(
            "repro_pool_workers", "Configured worker-pool size (0 = inline)."
        )
        self._m_workers_alive = m.gauge(
            "repro_pool_workers_alive", "Worker processes currently alive."
        )
        self._m_respawns = m.counter(
            "repro_worker_respawns_total",
            "Dead worker processes replaced with fresh (cold-cache) ones.",
        )
        self._m_timeouts = m.counter(
            "repro_scenario_timeouts_total",
            "Scenario rows that blew their unit deadline (counted per "
            "attempt, before any retry).",
        )
        self._m_retries = m.counter(
            "repro_scenario_retries_total",
            "Retried scenario rows (final attempt > 1), by final status.",
            labelnames=("outcome",),
        )
        self._m_rejected = m.counter(
            "repro_jobs_rejected_total",
            "Submissions rejected by admission control, by reason.",
            labelnames=("reason",),
        )
        self._m_drain_seconds = m.gauge(
            "repro_drain_seconds",
            "Duration of the last graceful drain (0 until one happens).",
        )
        self._m_workers.set(self.pool_size)

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop the dispatcher and tear down the worker pool.

        Queued jobs still drain first (the stop sentinel goes to the
        end of the FIFO); use :meth:`shutdown` for the full graceful
        sequence (stop admission, flush the store, settle streams).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dispatcher = self._dispatcher
        if dispatcher is not None:
            self._queue.put(None)
            dispatcher.join(timeout=30.0)
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._inline_runner is not None:
            self._inline_runner.close()
            self._inline_runner = None

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> float | None:
        """Graceful teardown; returns the drain duration in seconds.

        Stops admission immediately (new :meth:`submit` calls raise
        :class:`QuotaError` with kind ``"draining"``), then with
        *drain* true waits for every accepted job to finish — bounded
        by *timeout* seconds if given, after which leftover jobs are
        cancelled (their in-flight units still settle).  With *drain*
        false, all unfinished jobs are cancelled up front.  Either way
        the store is flushed, open event streams get a bounded window
        to deliver their terminal lines, and the service is closed.
        Idempotent: returns None if the service was already closed.
        """
        start = time.time()
        with self._lock:
            if self._closed:
                return None
            self._draining = True
            jobs = [self._jobs[job_id] for job_id in self._order]
        if drain:
            deadline = None if timeout is None else start + timeout
            for job in jobs:
                if deadline is None:
                    job.done_event.wait()
                elif not job.done_event.wait(
                    max(0.0, deadline - time.time())
                ):
                    job.cancel_event.set()
        else:
            for job in jobs:
                if not job.done_event.is_set():
                    job.cancel_event.set()
        if self.store is not None:
            self.store.flush()
        # Let open event streams write their terminal lines before the
        # transport goes away; every job above is (or is becoming)
        # terminal, so streams end on their own — this is a bounded
        # wait, not a join.
        stream_deadline = time.time() + 2.0
        while time.time() < stream_deadline:
            with self._lock:
                if self._active_streams == 0:
                    break
            time.sleep(0.02)
        self.close()
        drained = round(time.time() - start, 4)
        self._drain_seconds = drained
        self._m_drain_seconds.set(drained)
        return drained

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                daemon=True,
                name="sweep-dispatcher",
            )
            self._dispatcher.start()

    def _ensure_pool(self) -> _WorkerPool | None:
        if self.pool_size and self._pool is None:
            self._pool = _WorkerPool(self.pool_size)
        return self._pool

    # -- the jobs API ---------------------------------------------------

    def _reject(
        self,
        kind: str,
        reason: str,
        *,
        limit: int | None = None,
        actual: int | None = None,
    ) -> None:
        """Record and raise an admission-control rejection."""
        with self._lock:
            self._rejected[kind] = self._rejected.get(kind, 0) + 1
        self._m_rejected.inc(reason=kind)
        raise QuotaError(reason, kind=kind, limit=limit, actual=actual)

    def submit(
        self,
        spec: CampaignSpec | Mapping[str, Any] | str | pathlib.Path,
        workers: int | None = None,
        engine: str | None = None,
        profile: bool | None = None,
        timeout_s: float | None = None,
        retries: int | None = None,
    ) -> str:
        """Validate and enqueue a campaign; returns the job id.

        *spec* may be a :class:`CampaignSpec`, a plain mapping (the
        JSON/TOML structure) or a spec file path.  Malformed specs
        raise :class:`repro.sweep.spec.SpecError` here, synchronously —
        a queued job is always runnable — and over-quota submissions
        raise :class:`QuotaError`.  *engine* overrides the spec's
        engine; *workers* is recorded (the service's pool is fixed at
        construction, so it caps the actual parallelism); *profile*
        overrides the service's default profiling policy for this job.
        *timeout_s* is a job-wide deadline override (wins over every
        spec-level value); *retries* overrides the retry budget
        (submit > spec > service default).
        """
        if self._closed:
            raise RuntimeError("JobService is closed")
        timeout_s = _timeout_value(timeout_s, path="submit")
        retries = _retries_value(retries, path="submit")
        with self._lock:
            draining = self._draining
            queued = sum(
                1 for job in self._jobs.values() if job.state == "queued"
            )
        if draining:
            self._reject(
                "draining",
                "service is draining and not accepting new campaigns",
            )
        if self.max_queued_jobs is not None and (
            queued >= self.max_queued_jobs
        ):
            self._reject(
                "queue_full",
                f"job queue is full ({queued} queued, "
                f"limit {self.max_queued_jobs}); retry later",
                limit=self.max_queued_jobs,
                actual=queued,
            )
        if isinstance(spec, (str, pathlib.Path)):
            spec = load_spec(spec)
        elif isinstance(spec, Mapping):
            spec = from_dict(spec)
        if self.max_scenarios_per_job is not None and (
            len(spec.scenarios) > self.max_scenarios_per_job
        ):
            self._reject(
                "too_many_scenarios",
                f"campaign expands to {len(spec.scenarios)} scenarios "
                f"(limit {self.max_scenarios_per_job}); split it up",
                limit=self.max_scenarios_per_job,
                actual=len(spec.scenarios),
            )
        if engine is None:
            engine = self.engine if self.engine is not None else spec.engine
        if workers is None:
            workers = self.pool_size or 1
        if profile is None:
            profile = self.profile
        if retries is None:
            retries = (
                spec.retries if spec.retries is not None else self.retries
            )
        job_id = f"job-{next(self._ids):06d}"
        job = Job(
            job_id, spec, engine, workers, profile=profile,
            timeout_s=timeout_s, retries=retries,
        )
        with self._lock:
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._ensure_dispatcher()
        self._m_submitted.inc()
        self._queue.put(job_id)
        return job_id

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> dict[str, Any]:
        """JSON-safe snapshot of one job's progress."""
        return self.job(job_id).status()

    def result(
        self, job_id: str, wait: bool = True, timeout: float | None = None
    ) -> dict[str, Any]:
        """The job's aggregated campaign report (blocking by default).

        Raises :class:`TimeoutError` if *wait* expires and
        :class:`RuntimeError` if the job failed before producing a
        report (dispatcher-level failure, not scenario failures —
        those are ordinary rows in the report).
        """
        job = self.job(job_id)
        if wait and not job.done_event.wait(timeout):
            raise TimeoutError(f"job {job_id} not finished")
        if job.report is None:
            if job.error is not None:
                raise RuntimeError(f"job {job_id} failed: {job.error}")
            raise RuntimeError(f"job {job_id} has no report yet")
        return job.report

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job was still cancellable.

        Queued jobs are cancelled before any scenario runs; a running
        job stops dispatching new scenarios (in-flight ones finish) and
        its remaining rows are reported ``status="cancelled"``.
        """
        job = self.job(job_id)
        if job.done_event.is_set():
            return False
        job.cancel_event.set()
        return True

    def list_jobs(self) -> list[dict[str, Any]]:
        """Status snapshots for every job, in submission order."""
        with self._lock:
            order = list(self._order)
        return [self._jobs[job_id].status() for job_id in order]

    def stats(self) -> dict[str, Any]:
        """Service health: queue depth, worker liveness, cache rates."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        pool = self._pool
        lookups = self.dedup_hits + self.dedup_misses
        queued = states.get("queued", 0)
        return {
            "uptime_s": round(time.time() - self._started_at, 3),
            "queue_depth": queued,
            "jobs": states,
            # Admission-control view: are we turning work away, and how
            # close to the queue quota are we (saturation 1.0 = full).
            "admission": {
                "draining": self._draining,
                "max_queued_jobs": self.max_queued_jobs,
                "max_scenarios_per_job": self.max_scenarios_per_job,
                "rejected": dict(self._rejected),
                "saturation": (
                    round(queued / self.max_queued_jobs, 4)
                    if self.max_queued_jobs
                    else None
                ),
            },
            "workers": {
                "configured": self.pool_size,
                "mode": "pool" if self.pool_size else "inline",
                "alive": pool.alive() if pool is not None else [],
                "respawns": pool.respawns if pool is not None else 0,
            },
            # Since-service-start dedup accounting (always present, even
            # store-less, so clients can assert on it unconditionally);
            # "store" remains the store's own lifetime view.
            "dedup": {
                "hits": self.dedup_hits,
                "misses": self.dedup_misses,
                "hit_rate": (
                    round(self.dedup_hits / lookups, 4) if lookups else 0.0
                ),
                "store_entries": (
                    len(self.store) if self.store is not None else 0
                ),
            },
            "store": self.store.stats() if self.store is not None else None,
        }

    # -- observability --------------------------------------------------

    def render_metrics(self) -> str:
        """Prometheus text exposition of the service's metrics.

        Point-in-time gauges (queue depth, worker liveness) are
        refreshed at scrape time; counters/histograms accumulate as
        events happen.  Content type:
        :data:`MetricsRegistry.CONTENT_TYPE`.
        """
        with self._lock:
            depth = sum(
                1 for job in self._jobs.values() if job.state == "queued"
            )
        self._m_queue_depth.set(depth)
        pool = self._pool
        self._m_workers_alive.set(
            sum(pool.alive()) if pool is not None else 0
        )
        return self.metrics.render()

    def trace(self, job_id: str) -> list[dict[str, Any]]:
        """The job's merged span list (dispatcher + workers), start-ordered.

        Spans follow the schema in :mod:`repro.obs.trace`: job -> unit
        -> scenario -> build/simulate/metrics, every span carrying the
        job id as ``trace_id`` and pool-worker spans tagged
        ``worker=<index>``.  Safe to call while the job is running —
        returns the spans finished so far.
        """
        job = self.job(job_id)
        spans: list[dict[str, Any]] = []
        if job.tracer is not None:
            spans.extend(job.tracer.spans())
        spans.extend(job.worker_spans)
        spans.sort(key=lambda s: (s.get("start_unix", 0.0), s.get("span_id", "")))
        return spans

    def events(self, job_id: str, timeout: float | None = None):
        """Yield the job's progress events: replay, then live, then stop.

        Replays the full event log from the start (so late subscribers
        see every scenario), then streams live events until a terminal
        ``{"event": "job", "state": <terminal>}`` arrives, which is
        yielded and ends the generator.  *timeout* bounds the wait for
        each live event; expiry raises :class:`TimeoutError` (a
        finished job never raises — its log already ends terminally).
        """
        job = self.job(job_id)
        backlog, sub = job.subscribe()
        with self._lock:
            self._active_streams += 1
        try:
            last_seq = -1
            for event in backlog:
                last_seq = event["seq"]
                yield event
                if event.get("event") == "job" and (
                    event.get("state") in TERMINAL_STATES
                ):
                    return
            while True:
                try:
                    event = sub.get(timeout=timeout)
                except queue.Empty:
                    raise TimeoutError(
                        f"no event from job {job_id} within {timeout}s"
                    ) from None
                if event["seq"] <= last_seq:  # replay/live overlap
                    continue
                last_seq = event["seq"]
                yield event
                if event.get("event") == "job" and (
                    event.get("state") in TERMINAL_STATES
                ):
                    return
        finally:
            with self._lock:
                self._active_streams -= 1
            job.unsubscribe(sub)

    def _note_row(self, job: Job, row: dict[str, Any], total: int) -> None:
        """Account one finished scenario row: counters + progress event."""
        job.completed += 1
        status = str(row.get("status", "unknown"))
        self._m_scenarios.inc(status=status)
        self._m_scenario_duration.observe(float(row.get("duration_s") or 0.0))
        if status == "ok" and not row.get("cached"):
            # Fresh-run durations feed the derived-deadline estimate.
            self._durations.setdefault(
                str(row.get("family")), deque(maxlen=64)
            ).append(float(row.get("duration_s") or 0.0))
        if row.get("ensemble") == "fallback":
            self._m_ensemble_fallbacks.inc()
        job.publish(
            {
                "event": "scenario",
                "key": row.get("key"),
                "index": row.get("index"),
                "status": status,
                "cached": bool(row.get("cached")),
                "completed": job.completed,
                "total": total,
            }
        )

    # -- dispatcher -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self._jobs[job_id]
            try:
                self._run_job(job)
            except Exception:  # pragma: no cover - defensive
                job.error = traceback.format_exc()
                job.state = "failed"
                job.finished_at = time.time()
                self._m_jobs_completed.inc(state="failed")
                if job.started_at is not None:
                    self._m_job_duration.observe(
                        job.finished_at - job.started_at
                    )
                # The terminal event must go out even on dispatcher
                # failure — it is what ends every events() stream.
                job.publish(
                    {"event": "job", "state": "failed", "error": job.error}
                )
                job.done_event.set()

    def _cancelled_row(
        self, scenario, shard: int | None = None
    ) -> dict[str, Any]:
        row = _scenario_row(scenario, shard)
        row["status"] = "cancelled"
        row["error"] = "job cancelled before this scenario ran"
        return row

    def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.started_at = time.time()
        job.tracer = Tracer(trace_id=job.id)
        job.span = job.tracer.span(
            "job",
            campaign=job.spec.name,
            engine=job.engine,
            workers=job.workers,
            scenarios=len(job.spec.scenarios),
        )
        job.publish({"event": "job", "state": "running"})
        total = len(job.spec.scenarios)
        rows: dict[int, dict[str, Any]] = {}
        pending = []
        for scenario in job.spec.scenarios:
            if self.store is not None and not job.cancel_event.is_set():
                cached = self.store.get(scenario.result_key())
                if cached is not None:
                    cached["index"] = scenario.index
                    cached["shard"] = None
                    cached["cached"] = True
                    cached["duration_s"] = 0.0
                    rows[scenario.index] = cached
                    job.dedup_hits += 1
                    self.dedup_hits += 1
                    self._m_dedup.inc(result="hit")
                    with job.tracer.span(
                        "scenario", parent=job.span, key=scenario.key,
                        cached=True,
                    ):
                        pass
                    self._note_row(job, cached, total)
                    continue
                self.dedup_misses += 1
                self._m_dedup.inc(result="miss")
            pending.append(scenario)
        if pending:
            if self._ensure_pool() is not None:
                self._run_pooled(job, pending, rows)
            else:
                self._run_inline(job, pending, rows)
        if self.store is not None:
            for scenario in pending:
                row = rows.get(scenario.index)
                if row is not None and not row.get("cached"):
                    self.store.put(scenario.result_key(), row)
        ordered = [rows[index] for index in sorted(rows)]
        elapsed = time.time() - job.started_at
        job.rows = ordered
        job.report = aggregate(
            job.spec, ordered, engine=job.engine, workers=job.workers,
            elapsed_s=elapsed,
        )
        if job.dedup_hits:
            job.report["summary"]["dedup_hits"] = job.dedup_hits
        job.state = "cancelled" if job.cancel_event.is_set() else "done"
        job.finished_at = time.time()
        job.span.set(state=job.state)
        job.span.end()
        self._m_jobs_completed.inc(state=job.state)
        self._m_job_duration.observe(job.finished_at - job.started_at)
        summary = job.report["summary"]
        job.publish(
            {
                "event": "job",
                "state": job.state,
                "ok": summary["ok"],
                "failed": summary["failed"],
                "completed": job.completed,
                "total": total,
                "elapsed_s": round(elapsed, 4),
            }
        )
        job.done_event.set()

    # -- deadlines and retries ------------------------------------------

    def _derived_timeout_s(self, family: str) -> float | None:
        """Deadline estimate from the family's recent ok durations.

        None until :data:`_TIMEOUT_MIN_SAMPLES` fresh samples exist —
        a family with no track record gets no derived deadline (only
        explicit ``timeout_s`` values apply), so a cold first run can
        never be killed by a miscalibrated estimate.
        """
        samples = self._durations.get(family)
        if samples is None or len(samples) < _TIMEOUT_MIN_SAMPLES:
            return None
        ordered = sorted(samples)
        p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
        return max(_TIMEOUT_FLOOR_S, _TIMEOUT_P95_MULTIPLE * p95)

    def _resolve_timeout_s(self, job: Job, scenario) -> float | None:
        """One scenario's deadline: submit > scenario > spec > derived
        > service default; None means run unbounded."""
        for explicit in (
            job.timeout_s, scenario.timeout_s, job.spec.timeout_s,
        ):
            if explicit is not None:
                return explicit
        derived = self._derived_timeout_s(scenario.family)
        if derived is not None:
            return derived
        return self.default_timeout_s

    def _unit_deadline(self, job: Job, unit) -> float | None:
        """A unit's deadline: the laxest member deadline, or None.

        A unit is one simulation (ensemble lanes advance in lockstep),
        so any member without a deadline makes the whole unit
        unbounded — a deadline must never kill a scenario that did not
        opt into one.
        """
        timeouts = [self._resolve_timeout_s(job, s) for s in unit]
        if any(t is None for t in timeouts):
            return None
        return max(timeouts)

    def _fail_unit(
        self,
        job: Job,
        unit,
        attempt: int,
        status: str,
        message: str,
        *,
        shard: int | None,
        sink,
        retry,
    ) -> bool:
        """Handle a watchdog verdict on an in-flight unit.

        Publishes the watchdog event; then either re-enqueues the unit
        via *retry(unit, next_attempt, ready_time)* (with exponential
        backoff, a retry event and a point span) or finalizes every
        row as *status* through *sink(index, row)*.  Returns True when
        the unit was re-enqueued.
        """
        if status == "timeout":
            self._m_timeouts.inc(len(unit))
        will_retry = (
            status in RETRYABLE_STATUSES
            and attempt <= job.retries
            and not job.cancel_event.is_set()
        )
        keys = [scenario.key for scenario in unit]
        job.publish(
            {
                "event": "watchdog",
                "reason": status,
                "worker": shard,
                "keys": keys,
                "attempt": attempt,
                "retrying": will_retry,
            }
        )
        if will_retry:
            backoff = _RETRY_BACKOFF_S * (2 ** (attempt - 1))
            with job.tracer.span(
                "retry",
                parent=job.span,
                reason=status,
                attempt=attempt + 1,
                scenarios=len(unit),
                backoff_s=backoff,
            ):
                pass
            job.publish(
                {
                    "event": "retry",
                    "keys": keys,
                    "attempt": attempt + 1,
                    "backoff_s": backoff,
                    "reason": status,
                }
            )
            retry(unit, attempt + 1, time.time() + backoff)
            return True
        for scenario in unit:
            row = _scenario_row(scenario, shard)
            row["status"] = status
            row["error"] = message
            row["attempts"] = attempt
            if attempt > 1:
                self._m_retries.inc(outcome=status)
            sink(scenario.index, row)
        return False

    def _ensure_inline_runner(self) -> _InlineRunner:
        if self._inline_runner is None:
            self._inline_runner = _InlineRunner(self._inline_cache)
        return self._inline_runner

    def _abandon_inline_runner(self) -> None:
        """Inline kill+respawn: discard the hung runner and its cache.

        The runner thread cannot be killed; it is left to finish (or
        leak, as a daemon) with ``abandoned`` set so its late result —
        and any result put racing the abandonment — lands on a queue
        nobody reads.  The next unit gets a fresh runner and a fresh
        (cold) cache, exactly like a pool respawn.
        """
        runner = self._inline_runner
        if runner is not None:
            runner.abandoned.set()
        self._inline_cache = {}
        self._inline_runner = None

    # -- execution ------------------------------------------------------

    def _run_inline(self, job: Job, pending, rows) -> None:
        """Dispatcher-thread execution with the service-lifetime cache.

        Units actually execute on the :class:`_InlineRunner` thread so
        a deadline can be enforced (the dispatcher waits on the result
        queue with the unit's timeout and abandons blown runners).
        Cancellation is checked between units: an in-flight ensemble
        batch finishes (its lanes are one simulation), queued units are
        reported ``status="cancelled"``.  Retried units go to the back
        of the queue, so siblings run during the backoff.
        """
        total = len(job.spec.scenarios)
        work: deque = deque(
            (unit, 1, 0.0) for unit in plan_units(pending, self.ensemble)
        )

        def requeue(unit, attempt, ready):
            work.append((unit, attempt, ready))

        def finalize(index, row):
            rows[index] = row
            self._note_row(job, row, total)

        while work:
            if job.cancel_event.is_set():
                while work:
                    unit, _attempt, _ready = work.popleft()
                    for scenario in unit:
                        row = self._cancelled_row(scenario)
                        rows[scenario.index] = row
                        self._note_row(job, row, total)
                return
            unit, attempt, ready = work.popleft()
            wait = ready - time.time()
            if wait > 0:
                time.sleep(wait)
            runner = self._ensure_inline_runner()
            deadline = self._unit_deadline(job, unit)
            runner.tasks.put((job, unit, job.engine, job.profile))
            try:
                _indices, unit_rows = runner.results.get(timeout=deadline)
            except queue.Empty:
                self._abandon_inline_runner()
                self._fail_unit(
                    job, unit, attempt, "timeout",
                    f"unit blew its {deadline:.1f}s deadline "
                    "(inline runner abandoned)",
                    shard=0, sink=finalize, retry=requeue,
                )
                continue
            for row in unit_rows:
                row["attempts"] = attempt
                if attempt > 1:
                    self._m_retries.inc(
                        outcome=str(row.get("status", "unknown"))
                    )
                rows[row["index"]] = row
                self._note_row(job, row, total)

    def _run_pooled(self, job: Job, pending, rows) -> None:
        """Affinity-routed execution across the persistent worker pool.

        Units (not single scenarios) are the message granularity: every
        scenario in a unit shares one design key, so affinity routing
        is unchanged — the whole batch lands on the worker holding that
        design.  The dispatcher is also the watchdog: each poll-timeout
        tick it checks every in-flight unit's worker for death and its
        deadline for expiry; either verdict fails (or retries) the
        whole unit and respawns the worker.  Retried units are routed
        off the affinity worker (``+ attempt - 1`` rotation) — dodging
        both a possibly poisoned cache and the cold respawn.
        """
        pool = self._pool

        def route(unit, attempt: int) -> int:
            return (
                design_affinity(unit[0].design_key(), pool.size)
                + attempt - 1
            ) % pool.size

        backlog: dict[int, deque] = {i: deque() for i in range(pool.size)}
        for unit in plan_units(pending, self.ensemble):
            backlog[route(unit, 1)].append((unit, 1, 0.0))
        # widx -> (unit, attempt, absolute deadline | None, timeout_s)
        inflight: dict[int, tuple] = {}
        remaining = len(pending)
        total = len(job.spec.scenarios)
        opts = {
            "profile": job.profile,
            "trace_id": job.id,
            "parent": job.span.span_id if job.span is not None else None,
        }

        def account(index: int, row: dict[str, Any]) -> None:
            nonlocal remaining
            if index in rows:  # late result after a watchdog verdict
                return
            rows[index] = row
            self._note_row(job, row, total)
            remaining -= 1

        def requeue(unit, attempt, ready):
            backlog[route(unit, attempt)].append((unit, attempt, ready))

        while remaining:
            if job.cancel_event.is_set():
                for dq in backlog.values():
                    while dq:
                        unit, _attempt, _ready = dq.popleft()
                        for scenario in unit:
                            account(
                                scenario.index, self._cancelled_row(scenario)
                            )
                if not inflight:
                    break
            now = time.time()
            for i in range(pool.size):
                if i in inflight or not backlog[i]:
                    continue
                if backlog[i][0][2] > now:  # head still backing off
                    continue
                unit, attempt, _ready = backlog[i].popleft()
                pool.workers[i].tasks.put((job.id, unit, job.engine, opts))
                timeout_s = self._unit_deadline(job, unit)
                deadline = now + timeout_s if timeout_s is not None else None
                inflight[i] = (unit, attempt, deadline, timeout_s)
            self._m_inflight.set(len(inflight))
            try:
                widx, _job_id, indices, unit_rows, spans = pool.results.get(
                    timeout=_POLL_S
                )
            except queue.Empty:
                now = time.time()
                for i in list(inflight):
                    unit, attempt, deadline, timeout_s = inflight[i]
                    worker = pool.workers[i]
                    if not worker.process.is_alive():
                        inflight.pop(i)
                        self._fail_unit(
                            job, unit, attempt, "worker-failed",
                            f"worker {i} died (exit code "
                            f"{worker.process.exitcode})",
                            shard=i, sink=account, retry=requeue,
                        )
                        pool.respawn(i)
                        self._m_respawns.inc()
                    elif deadline is not None and now > deadline:
                        inflight.pop(i)
                        worker.process.kill()
                        self._fail_unit(
                            job, unit, attempt, "timeout",
                            f"unit blew its {timeout_s:.1f}s deadline on "
                            f"worker {i} (worker killed and respawned)",
                            shard=i, sink=account, retry=requeue,
                        )
                        pool.respawn(i)
                        self._m_respawns.inc()
                continue
            entry = inflight.get(widx)
            if entry is not None and (
                [s.index for s in entry[0]] == indices
            ):
                inflight.pop(widx)
                attempt = entry[1]
            else:
                # A stale result: the unit it answers was already
                # failed by a watchdog verdict (account() drops the
                # duplicate rows via the `index in rows` guard).
                attempt = 1
            job.worker_spans.extend(spans)
            for sidx, row in zip(indices, unit_rows):
                row["attempts"] = attempt
                if attempt > 1 and sidx not in rows:
                    self._m_retries.inc(
                        outcome=str(row.get("status", "unknown"))
                    )
                account(sidx, row)
        self._m_inflight.set(0)


# ----------------------------------------------------------------------
# module-level convenience API (a lazily created default service)
# ----------------------------------------------------------------------

_default_service: JobService | None = None
_default_lock = threading.Lock()


def default_service() -> JobService:
    """The process-wide default (inline, store-less) service."""
    global _default_service
    with _default_lock:
        if _default_service is None or _default_service._closed:
            _default_service = JobService(workers=0)
        return _default_service


def configure(
    workers: int = 0,
    engine: str | None = None,
    store: ResultStore | str | pathlib.Path | bool | None = None,
    ensemble: Any = "auto",
    profile: bool = False,
) -> JobService:
    """Replace the default service (closing any previous one)."""
    global _default_service
    with _default_lock:
        if _default_service is not None:
            _default_service.close()
        _default_service = JobService(
            workers=workers, engine=engine, store=store, ensemble=ensemble,
            profile=profile,
        )
        return _default_service


def submit_campaign(
    spec: CampaignSpec | Mapping[str, Any] | str | pathlib.Path,
    workers: int | None = None,
    engine: str | None = None,
    timeout_s: float | None = None,
    retries: int | None = None,
) -> str:
    """Submit a campaign to the default service; returns the job id."""
    return default_service().submit(
        spec, workers=workers, engine=engine, timeout_s=timeout_s,
        retries=retries,
    )


def job_status(job_id: str) -> dict[str, Any]:
    """Status snapshot of a default-service job."""
    return default_service().status(job_id)


def job_result(
    job_id: str, wait: bool = True, timeout: float | None = None
) -> dict[str, Any]:
    """Aggregated report of a default-service job (blocking by default)."""
    return default_service().result(job_id, wait=wait, timeout=timeout)


def cancel(job_id: str) -> bool:
    """Cancel a default-service job."""
    return default_service().cancel(job_id)


def list_families() -> dict[str, Any]:
    """The design-family registry payload (same structure ``/families``
    serves and ``families --json`` prints)."""
    return registry_payload()
