"""Declarative campaign specifications.

A campaign is a name, a base seed, an engine choice, a worker count and
a list of *scenario templates*.  Each template names a design family
(see :mod:`repro.sweep.registry`), fixed ``params``, an optional
``grid`` (parameter name → list of values, expanded as a cross
product), a ``stimulus`` block and a ``metrics`` block.  Expansion turns
the templates into concrete :class:`ScenarioSpec` instances with

* a **canonical key** — ``family(param=value,...)`` plus a stimulus
  digest — unique within the campaign and stable across runs, and
* a **deterministic seed** — derived from the campaign seed and the
  scenario key via SHA-256, so a scenario's stimulus randomness is a
  function of *what* it is, never of which shard or worker runs it.
  Sharded and serial runs of the same spec are therefore bit-identical.

Specs load from a plain dict, a JSON file, or a TOML file (TOML needs
``tomllib``, Python 3.11+; on older interpreters use JSON or dicts —
:func:`load_spec` raises a clear error rather than importing anything).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import pathlib
from typing import Any, Mapping

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py3.10 fallback path
    tomllib = None  # type: ignore[assignment]


class SpecError(ValueError):
    """A campaign spec is malformed or unloadable.

    Carries a machine-readable location so every transport renders the
    same diagnosis from one source: *path* is the spec location
    (``"campaign"``, ``"scenarios[2]"``, ...), *field* the offending key
    within it (or ``None``), *reason* the human explanation.
    :meth:`to_dict` is what the HTTP 400 body serves; ``str(exc)`` is
    what the CLI prints — both derive from the same three fields.
    """

    def __init__(
        self, reason: str, *, path: str = "campaign", field: str | None = None
    ):
        self.reason = reason
        self.path = path
        self.field = field
        super().__init__(self.render())

    def render(self) -> str:
        where = self.path if self.field is None else f"{self.path}.{self.field}"
        return f"{where}: {self.reason}"

    def to_dict(self) -> dict[str, Any]:
        return {"path": self.path, "field": self.field, "reason": self.reason}


#: Backwards-compatible alias (the pre-service name of the class).
SweepSpecError = SpecError


def _timeout_value(
    value: Any, *, path: str, field: str = "timeout_s"
) -> float | None:
    """Validate a deadline value: a positive number of seconds or None."""
    if value is None:
        return None
    try:
        timeout = float(value)
    except (TypeError, ValueError):
        raise SpecError(
            "must be a positive number of seconds", path=path, field=field
        ) from None
    if timeout <= 0:
        raise SpecError(
            "must be a positive number of seconds", path=path, field=field
        )
    return timeout


def _retries_value(value: Any, *, path: str = "campaign") -> int | None:
    """Validate a retry budget: a non-negative integer or None."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(
            "must be a non-negative integer", path=path, field="retries"
        )
    if value < 0:
        raise SpecError(
            "must be a non-negative integer", path=path, field="retries"
        )
    return value


def _canon_value(value: Any) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def canonical_params(params: Mapping[str, Any]) -> str:
    """Stable ``k=v,...`` rendering of a parameter mapping (sorted)."""
    return ",".join(
        f"{k}={_canon_value(v)}" for k, v in sorted(params.items())
    )


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One fully expanded scenario: a single simulation to run."""

    index: int
    family: str
    params: Mapping[str, Any]
    stimulus: Mapping[str, Any]
    metrics: Mapping[str, Any]
    key: str
    seed: int
    #: Per-scenario deadline in seconds (None = derive from history /
    #: campaign default).  Deliberately excluded from :meth:`result_key`:
    #: a deadline changes *whether* a run finishes, never its metrics.
    timeout_s: float | None = None

    def design_key(self) -> str:
        """Identity of the *built design* (family + structural params).

        Scenarios sharing a design key differ only in stimulus/metrics
        and can reuse one built simulator via snapshot/restore.
        """
        return f"{self.family}({canonical_params(self.params)})"

    def result_key(self) -> str:
        """Identity of the *simulation result* (the dedup/memoization key).

        SHA-256 over everything that determines the metrics: family,
        structural params, the full stimulus block, the metrics block
        and the derived seed.  Deliberately excludes the settle engine
        (the engines are differential-pinned cycle-identical) and any
        run-placement detail (shard, worker count), so an identical
        scenario submitted twice — by any client, under any sharding —
        maps to the same stored row.
        """
        payload = json.dumps(
            {
                "family": self.family,
                "params": dict(self.params),
                "stimulus": dict(self.stimulus),
                "metrics": dict(self.metrics),
                "seed": self.seed,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A named, fully expanded campaign."""

    name: str
    seed: int
    engine: str | None
    workers: int
    scenarios: tuple[ScenarioSpec, ...]
    #: Campaign-wide deadline default; per-scenario ``timeout_s`` wins.
    timeout_s: float | None = None
    #: Retry budget for retryable failures (None = service default).
    retries: int | None = None

    def scenario(self, key: str) -> ScenarioSpec:
        for sc in self.scenarios:
            if sc.key == key:
                return sc
        raise KeyError(f"no scenario with key {key!r}")


def _scenario_seed(campaign_seed: int, key: str) -> int:
    digest = hashlib.sha256(f"{campaign_seed}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _expand_template(
    template: Mapping[str, Any], position: int
) -> list[dict[str, Any]]:
    """Expand one scenario template's grid into concrete entries."""
    where = f"scenarios[{position}]"
    if not isinstance(template, Mapping):
        raise SpecError("expected a table/dict", path=where)
    family = template.get("family")
    if not family or not isinstance(family, str):
        raise SpecError(
            "missing required key 'family'", path=where, field="family"
        )
    base_params = dict(template.get("params") or {})
    grid = dict(template.get("grid") or {})
    stimulus = dict(template.get("stimulus") or {})
    metrics = dict(template.get("metrics") or {})
    timeout_s = _timeout_value(template.get("timeout_s"), path=where)
    unknown = set(template) - {
        "family", "params", "grid", "stimulus", "metrics", "timeout_s",
    }
    if unknown:
        raise SpecError(
            f"unknown keys {sorted(unknown)} (scenario {family!r})",
            path=where,
            field=sorted(unknown)[0],
        )
    for axis, values in grid.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError(
                f"grid axis {axis!r} must be a non-empty list "
                f"(scenario {family!r})",
                path=where,
                field=f"grid.{axis}",
            )
    # Grid axes sweep structural params by default; an axis named
    # "stimulus.<opt>" sweeps a stimulus option instead (the swept
    # options are recorded as tags so scenario keys stay distinct).
    axes = sorted(grid)
    out = []
    for combo in itertools.product(*(grid[a] for a in axes)):
        params = dict(base_params)
        stim = dict(stimulus)
        stim_tags = {}
        for axis, value in zip(axes, combo):
            if axis.startswith("stimulus."):
                opt = axis[len("stimulus."):]
                stim[opt] = value
                stim_tags[opt] = value
            else:
                params[axis] = value
        out.append(
            {
                "family": family,
                "params": params,
                "stimulus": stim,
                "stim_tags": stim_tags,
                "metrics": metrics,
                "timeout_s": timeout_s,
            }
        )
    return out


def from_dict(data: Mapping[str, Any]) -> CampaignSpec:
    """Build a fully expanded :class:`CampaignSpec` from plain data."""
    if not isinstance(data, Mapping):
        raise SpecError("campaign spec must be a mapping", path="spec")
    campaign = dict(data.get("campaign") or {})
    templates = data.get("scenarios")
    if not templates:
        raise SpecError(
            "spec has no [[scenarios]] entries", path="spec",
            field="scenarios",
        )
    name = str(campaign.get("name") or "campaign")
    seed = int(campaign.get("seed", 0))
    engine = campaign.get("engine")
    if engine is not None:
        engine = str(engine)
    workers = int(campaign.get("workers", 1))
    if workers < 0:
        raise SpecError("must be >= 0", field="workers")
    timeout_s = _timeout_value(campaign.get("timeout_s"), path="campaign")
    retries = _retries_value(campaign.get("retries"))
    entries: list[dict[str, Any]] = []
    for position, template in enumerate(templates):
        entries.extend(_expand_template(template, position))
    scenarios: list[ScenarioSpec] = []
    seen: dict[str, int] = {}
    for index, entry in enumerate(entries):
        stim = entry["stimulus"]
        stim_part = stim.get("kind", "uniform")
        if entry["stim_tags"]:
            stim_part += f"[{canonical_params(entry['stim_tags'])}]"
        key = (
            f"{entry['family']}({canonical_params(entry['params'])})"
            f"/{stim_part}"
        )
        # Same design + same stimulus kind twice (e.g. two stimulus
        # option sets): disambiguate with a stable occurrence counter.
        n = seen.get(key, 0)
        seen[key] = n + 1
        if n:
            key = f"{key}#{n}"
        scenarios.append(
            ScenarioSpec(
                index=index,
                family=entry["family"],
                params=entry["params"],
                stimulus=stim,
                metrics=entry["metrics"],
                key=key,
                seed=_scenario_seed(seed, key),
                timeout_s=entry["timeout_s"],
            )
        )
    return CampaignSpec(
        name=name,
        seed=seed,
        engine=engine,
        workers=workers,
        scenarios=tuple(scenarios),
        timeout_s=timeout_s,
        retries=retries,
    )


def make_scenario(
    family: str,
    params: Mapping[str, Any] | None = None,
    stimulus: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    seed: int = 0,
    index: int = 0,
    timeout_s: float | None = None,
) -> ScenarioSpec:
    """One ad-hoc scenario for programmatic use (benchmarks, tests).

    The key and per-scenario seed are derived exactly as in a declared
    campaign, so an ad-hoc scenario reproduces the campaign-run numbers
    bit for bit.
    """
    params = dict(params or {})
    stimulus = dict(stimulus or {})
    key = (
        f"{family}({canonical_params(params)})"
        f"/{stimulus.get('kind', 'uniform')}"
    )
    return ScenarioSpec(
        index=index,
        family=family,
        params=params,
        stimulus=stimulus,
        metrics=dict(metrics or {}),
        key=key,
        seed=_scenario_seed(seed, key),
        timeout_s=_timeout_value(timeout_s, path="scenario"),
    )


def load_spec(path: str | pathlib.Path) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    path = pathlib.Path(path)
    if not path.exists():
        raise SpecError(f"spec file not found: {path}", path="spec")
    suffix = path.suffix.lower()
    if suffix == ".toml":
        if tomllib is None:
            raise SpecError(
                "TOML specs need Python 3.11+ (tomllib); use a .json "
                "spec or build the campaign from a dict",
                path="spec",
            )
        with path.open("rb") as fh:
            data = tomllib.load(fh)
    elif suffix == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SpecError(
                f"invalid JSON: {exc}", path="spec"
            ) from None
    else:
        raise SpecError(
            f"unsupported spec format {suffix!r} (use .toml or .json)",
            path="spec",
        )
    return from_dict(data)
