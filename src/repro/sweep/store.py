"""The persisted result store: scenario-level memoization.

Campaign metrics are pure functions of the scenario (seeded stimulus,
cycle-identical engines, shard-invariant placement — the properties the
differential suites pin), so a finished scenario's row can be replayed
for any later identical submission instead of re-simulating it.  The
store maps :meth:`repro.sweep.spec.ScenarioSpec.result_key` — a SHA-256
over family, params, the full stimulus and metrics blocks, and the
derived seed — to the stored report row.

Only ``status == "ok"`` rows are stored: errors stay re-runnable.
Stored rows are stripped of placement metadata (shard, duration,
design-cache marker), so a dedup hit returns exactly the fields a fresh
run would have produced for the metrics comparison.

Persistence is an append-only JSONL file (one ``{"key": ..., "row":
...}`` object per line): crash-safe to append, trivially inspectable,
and loadable by streaming.  An in-memory store (``path=None``) gives a
warm server memoization without any filesystem footprint.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Any, Mapping

#: Per-run placement/timing fields that must not survive into the store.
_VOLATILE_FIELDS = (
    "shard", "duration_s", "design_cache", "cached", "index", "profile",
)


def strip_volatile(row: Mapping[str, Any]) -> dict[str, Any]:
    """Copy *row* without its per-run placement fields."""
    return {k: v for k, v in row.items() if k not in _VOLATILE_FIELDS}


class ResultStore:
    """Dedup store: canonical scenario key -> finished report row.

    Thread-safe; the service's dispatcher writes while HTTP threads
    read the hit/miss statistics.
    """

    def __init__(self, path: str | pathlib.Path | None = None):
        self._path = pathlib.Path(path) if path is not None else None
        self._rows: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        if self._path is not None and self._path.exists():
            self._load()

    def _load(self) -> None:
        with self._path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                self._rows[entry["key"]] = entry["row"]

    def get(self, key: str) -> dict[str, Any] | None:
        """Look up *key*, counting the hit or miss."""
        with self._lock:
            row = self._rows.get(key)
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
            return dict(row)

    def put(self, key: str, row: Mapping[str, Any]) -> bool:
        """Store a finished row under *key*; returns True when stored.

        Rows that are not ``status == "ok"`` (or keys already present)
        are ignored, so failures stay re-runnable and the append-only
        file never carries duplicates.
        """
        if row.get("status") != "ok":
            return False
        clean = strip_volatile(row)
        with self._lock:
            if key in self._rows:
                return False
            self._rows[key] = clean
            if self._path is not None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                with self._path.open("a", encoding="utf-8") as fh:
                    fh.write(
                        json.dumps({"key": key, "row": clean}, default=str)
                        + "\n"
                    )
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def stats(self) -> dict[str, Any]:
        """Hit/miss counters plus the current entry count."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._rows),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else None,
                "path": str(self._path) if self._path else None,
            }
