"""The persisted result store: scenario-level memoization.

Campaign metrics are pure functions of the scenario (seeded stimulus,
cycle-identical engines, shard-invariant placement — the properties the
differential suites pin), so a finished scenario's row can be replayed
for any later identical submission instead of re-simulating it.  The
store maps :meth:`repro.sweep.spec.ScenarioSpec.result_key` — a SHA-256
over family, params, the full stimulus and metrics blocks, and the
derived seed — to the stored report row.

Only ``status == "ok"`` rows are stored: errors stay re-runnable.
Stored rows are stripped of placement metadata (shard, duration,
design-cache marker), so a dedup hit returns exactly the fields a fresh
run would have produced for the metrics comparison.

Persistence is an append-only JSONL file (one ``{"key": ..., "row":
...}`` object per line): crash-safe to append, trivially inspectable,
and loadable by streaming.  Crash-safety is taken seriously on the read
side too — a process killed mid-append leaves a truncated (or
garbage) trailing line, and :meth:`_load` skips such lines instead of
refusing the whole store (they are counted in ``corrupt_lines`` and
logged).  For long-lived deployments the store additionally supports:

* :meth:`compact` — rewrite the file from the in-memory view and
  atomically rename it into place, dropping corrupt lines and any
  duplicate keys the append-only history accumulated;
* ``max_entries`` — LRU eviction of the in-memory view (the JSONL
  history keeps evicted lines until the next :meth:`compact`);
* :meth:`flush` — an fsync barrier, used by the service's graceful
  drain so a SIGTERM never races the last append.

An in-memory store (``path=None``) gives a warm server memoization
without any filesystem footprint.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import threading
from typing import Any, Mapping

log = logging.getLogger(__name__)

#: Per-run placement/timing fields that must not survive into the store.
_VOLATILE_FIELDS = (
    "shard", "duration_s", "design_cache", "cached", "index", "profile",
    "attempts",
)


def strip_volatile(row: Mapping[str, Any]) -> dict[str, Any]:
    """Copy *row* without its per-run placement fields."""
    return {k: v for k, v in row.items() if k not in _VOLATILE_FIELDS}


class ResultStore:
    """Dedup store: canonical scenario key -> finished report row.

    Thread-safe; the service's dispatcher writes while HTTP threads
    read the hit/miss statistics.  With *max_entries*, the in-memory
    view is bounded LRU-style: lookups refresh an entry's recency and
    inserts evict the least recently used entry past the cap.
    """

    def __init__(
        self,
        path: str | pathlib.Path | None = None,
        max_entries: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._path = pathlib.Path(path) if path is not None else None
        self._rows: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Unparseable lines skipped by the last load (crash-truncated
        #: appends, partial writes); cleared by :meth:`compact`.
        self.corrupt_lines = 0
        #: Physical line count of the JSONL file (including corrupt and
        #: superseded-duplicate lines) — what :meth:`compact` shrinks.
        self._file_lines = 0
        #: True when the file ends mid-line (crash-truncated append).
        #: The next :meth:`put` must terminate that line first, or the
        #: new entry would be glued onto the partial one and lost.
        self._dangling_line = False
        if self._path is not None and self._path.exists():
            self._load()

    def _load(self) -> None:
        """Stream the JSONL file, tolerating corrupt/truncated lines.

        A crash mid-append leaves a final line that is truncated JSON
        (or garbage bytes); refusing to load would hold every earlier
        result hostage to the newest one.  Bad lines are skipped,
        counted and logged; duplicate keys keep the *last* occurrence
        (append order is chronological).
        """
        lines = corrupt = 0
        with self._path.open(encoding="utf-8", errors="replace") as fh:
            for line in fh:
                lines += 1
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    row = entry["row"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    corrupt += 1
                    continue
                if not isinstance(key, str) or not isinstance(row, dict):
                    corrupt += 1
                    continue
                self._rows.pop(key, None)  # keep last-write recency order
                self._rows[key] = row
        self.corrupt_lines = corrupt
        self._file_lines = lines
        with self._path.open("rb") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell():
                fh.seek(-1, os.SEEK_END)
                self._dangling_line = fh.read(1) != b"\n"
        if corrupt:
            log.warning(
                "result store %s: skipped %d corrupt line(s) "
                "(crash-truncated append?); compact() to drop them",
                self._path, corrupt,
            )
        self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        """Drop least-recently-used in-memory entries past the cap."""
        if self.max_entries is None:
            return
        while len(self._rows) > self.max_entries:
            oldest = next(iter(self._rows))
            del self._rows[oldest]
            self.evictions += 1

    def get(self, key: str) -> dict[str, Any] | None:
        """Look up *key*, counting the hit or miss."""
        with self._lock:
            row = self._rows.get(key)
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
            if self.max_entries is not None:  # refresh LRU recency
                self._rows[key] = self._rows.pop(key)
            return dict(row)

    def put(self, key: str, row: Mapping[str, Any]) -> bool:
        """Store a finished row under *key*; returns True when stored.

        Rows that are not ``status == "ok"`` (or keys already present)
        are ignored, so failures stay re-runnable and the append-only
        file never carries duplicates.
        """
        if row.get("status") != "ok":
            return False
        clean = strip_volatile(row)
        with self._lock:
            if key in self._rows:
                return False
            self._rows[key] = clean
            self._evict_over_cap()
            if self._path is not None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                with self._path.open("a", encoding="utf-8") as fh:
                    if self._dangling_line:
                        fh.write("\n")
                        self._dangling_line = False
                    fh.write(
                        json.dumps({"key": key, "row": clean}, default=str)
                        + "\n"
                    )
                self._file_lines += 1
        return True

    def flush(self) -> None:
        """fsync the JSONL file — a durability barrier for drains.

        Appends already go through close-on-write file handles, so this
        only forces the OS to push them to disk; a no-op for in-memory
        stores or when nothing was ever written.
        """
        with self._lock:
            if self._path is None or not self._path.exists():
                return
            with self._path.open("a", encoding="utf-8") as fh:
                fh.flush()
                os.fsync(fh.fileno())

    def compact(self) -> dict[str, Any]:
        """Rewrite the JSONL file from the in-memory view, atomically.

        Writes every live entry to a temp file next to the store, fsyncs
        it and ``os.replace``s it over the original — so a crash during
        compaction leaves either the old file or the new one, never a
        mix.  Dropped along the way: corrupt lines, duplicate keys, and
        lines for entries since evicted by ``max_entries``.  Returns a
        summary dict (``entries``, ``dropped_lines``, ``path``).
        """
        with self._lock:
            if self._path is None or not self._path.exists():
                return {
                    "entries": len(self._rows),
                    "dropped_lines": 0,
                    "path": str(self._path) if self._path else None,
                }
            tmp = self._path.with_name(self._path.name + ".compact.tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                for key, row in self._rows.items():
                    fh.write(
                        json.dumps({"key": key, "row": row}, default=str)
                        + "\n"
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._path)
            dropped = self._file_lines - len(self._rows)
            self._file_lines = len(self._rows)
            self.corrupt_lines = 0
            self._dangling_line = False
            return {
                "entries": len(self._rows),
                "dropped_lines": dropped,
                "path": str(self._path),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def stats(self) -> dict[str, Any]:
        """Hit/miss counters plus the current entry count."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._rows),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else None,
                "path": str(self._path) if self._path else None,
                "max_entries": self.max_entries,
                "evictions": self.evictions,
                "corrupt_lines": self.corrupt_lines,
                "file_lines": self._file_lines if self._path else None,
            }
