"""The design-family registry: name → builder/runner pair.

A *family* is one buildable design shape (an MT pipeline, the elastic
ring, the MD5 circuit, ...) exposed to the campaign layer through two
callables:

``build(params, engine) -> handle``
    Construct and reset the design.  The handle carries the simulator
    plus whatever the runner needs (sources, sinks, monitors, area
    components).  Structural knobs (thread count, stage count, MEB
    kind) are *params*; traffic is not — stimulus is applied by ``run``
    so one built design serves many scenarios.

``run(handle, scenario) -> metrics dict``
    Apply the scenario's stimulus, drive the simulation, and return
    JSON-serializable metrics.

``reusable=True`` families keep no driver state outside the simulator,
so the campaign runner builds them once per worker and rewinds between
scenarios with the kernel's columnar snapshot/restore instead of a full
recompile.  Families with software drivers holding their own state
(MD5's hasher, the processor's program loader) set ``reusable=False``
and are rebuilt per scenario.

Built-in families live in :mod:`repro.sweep.families` and register
themselves on import; external code can add more with
:func:`register_family`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping


@dataclasses.dataclass(frozen=True)
class EnsembleSupport:
    """How a family batches control-identical scenarios into one run.

    ``group_key(scenario)`` returns a hashable batching key for
    scenarios that may share one lockstep simulator — scenarios are
    batchable together iff their keys are equal — or ``None`` when the
    scenario must run serially (the default for anything whose control
    flow depends on the seed or payload).  ``lift(handle)`` lifts a
    freshly built design for row-valued data (see
    :mod:`repro.kernel.ensemble`) and returns the
    :class:`~repro.kernel.ensemble.EnsembleContext`.  ``run(handle, ctx,
    scenarios)`` applies the shared stimulus once, drives the lockstep
    simulation and returns one ``("ok", metrics)`` or ``("error",
    traceback)`` outcome per scenario, in order.  Raising
    :class:`~repro.kernel.errors.EnsembleUnsupported` or
    :class:`~repro.kernel.errors.EnsembleDivergence` from ``lift``/``run``
    makes the caller fall back to serial execution — batching is an
    optimization, never a correctness dependency.
    """

    group_key: Callable[[Any], Any]
    lift: Callable[[Any], Any]
    run: Callable[[Any, Any, Any], list]


@dataclasses.dataclass(frozen=True)
class Family:
    """One registered design family (see module docstring).

    ``params`` maps each structural parameter to its default value and
    ``stimulus_kinds`` names the stimulus shapes ``run`` understands —
    machine-readable metadata the registry serves to clients (the
    ``families --json`` CLI command and the service's ``/families``
    endpoint emit it verbatim).  ``ensemble`` (optional) declares how
    control-identical scenarios batch into one lockstep simulation.
    """

    name: str
    build: Callable[[Mapping[str, Any], str | None], Any]
    run: Callable[[Any, Any], dict]
    reusable: bool = True
    description: str = ""
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    stimulus_kinds: tuple[str, ...] = ()
    ensemble: EnsembleSupport | None = None


_REGISTRY: dict[str, Family] = {}


def register_family(family: Family) -> Family:
    """Register *family*; raises on duplicate names."""
    if family.name in _REGISTRY:
        raise ValueError(f"design family {family.name!r} already registered")
    _REGISTRY[family.name] = family
    return family


def _ensure_builtins() -> None:
    # Built-ins register on first lookup, not at package import, so the
    # spec layer stays importable without pulling the whole component
    # library in.
    if "mt_pipeline" not in _REGISTRY:
        import repro.sweep.families  # noqa: F401  (registers on import)
    if "fuzz" not in _REGISTRY:
        import repro.sweep.fuzz  # noqa: F401  (registers on import)


def get_family(name: str) -> Family:
    """Look up a family by name (built-ins load lazily)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown design family {name!r}; registered: {known}"
        ) from None


def family_names() -> list[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


def registry_payload() -> dict[str, Any]:
    """The registry as one JSON-serializable structure.

    This is the single source for every machine-readable listing of the
    design space: ``python -m repro.sweep families --json`` prints it
    and ``GET /families`` on the campaign service returns it, so the two
    can never drift apart.
    """
    _ensure_builtins()
    return {
        "families": {
            name: {
                "reusable": family.reusable,
                "description": family.description,
                "params": dict(family.params),
                "stimulus_kinds": list(family.stimulus_kinds),
                "ensemble": family.ensemble is not None,
            }
            for name, family in sorted(_REGISTRY.items())
        }
    }
