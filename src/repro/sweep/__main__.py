"""CLI for simulation campaigns: ``python -m repro.sweep <command>``.

A thin client of the jobs API (:mod:`repro.sweep.jobs`) — the same
entry point the HTTP service exposes, so CLI and service behaviour
cannot drift.  Commands:

* ``run <spec> [--workers N] [--engine E] [--out DIR] [--name BASE]
  [--store PATH] [--profile] [--follow]`` — submit a campaign spec
  (TOML on Python 3.11+, JSON everywhere) to an ephemeral service,
  wait, and write ``<BASE>.json`` + ``<BASE>.md`` reports.
  ``--store`` memoizes results across invocations (dedup by canonical
  scenario key); ``--profile`` attaches the kernel profiler and folds
  a hot-component summary into the markdown report; ``--follow``
  streams live per-scenario progress to stderr.
* ``validate <spec>`` — expand the spec, check every family is
  registered, and print the scenario list without running anything.
* ``families [--json]`` — list the registered design families; with
  ``--json``, emit the machine-readable registry payload (the same
  structure the service serves at ``/families``).

Exit codes are normalized across commands: **0** success, **1**
scenario failures (the campaign ran but at least one scenario did
not succeed), **2** spec or usage errors (nothing ran).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sweep.jobs import JobService, list_families
from repro.sweep.registry import get_family
from repro.sweep.report import write_report
from repro.sweep.spec import SpecError, load_spec

#: The normalized exit codes (documented above and in docs/service.md).
EXIT_OK = 0
EXIT_SCENARIO_FAILURES = 1
EXIT_SPEC_ERROR = 2


def _follow(service: JobService, job_id: str) -> None:
    """Print a live one-line progress display from the job's events.

    Consumes the same event stream ``GET /campaigns/<id>/events``
    serves; writes carriage-return progress to stderr so stdout stays
    machine-readable.
    """
    last_len = 0
    for event in service.events(job_id, timeout=300.0):
        if event.get("event") == "scenario":
            line = (
                f"[{event['completed']}/{event['total']}] "
                f"{event.get('status', '?'):8s} "
                f"{'(cached) ' if event.get('cached') else ''}"
                f"{event.get('key', '')}"
            )
        elif event.get("event") == "job":
            if event.get("state") == "running":
                continue
            line = f"job {job_id}: {event['state']}"
        elif event.get("event") == "watchdog":
            line = (
                f"watchdog: {event.get('reason', '?')} "
                f"(attempt {event.get('attempt', '?')}, "
                f"{'retrying' if event.get('retrying') else 'giving up'})"
            )
        elif event.get("event") == "retry":
            line = (
                f"retry: attempt {event.get('attempt', '?')} after "
                f"{event.get('reason', '?')}"
            )
        else:  # pragma: no cover - future event kinds
            continue
        pad = " " * max(0, last_len - len(line))
        print(f"\r{line}{pad}", end="", file=sys.stderr, flush=True)
        last_len = len(line)
    print(file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    workers = args.workers if args.workers is not None else spec.workers
    with JobService(
        workers=workers, engine=args.engine, store=args.store,
        ensemble=args.ensemble, profile=args.profile,
    ) as service:
        job_id = service.submit(
            spec, workers=workers, engine=args.engine,
            timeout_s=args.timeout_s, retries=args.retries,
        )
        if args.follow:
            _follow(service, job_id)
        report = service.result(job_id)
    json_path, md_path = write_report(report, args.out, args.name)
    summary = report["summary"]
    dedup = summary.get("dedup_hits", 0)
    cached = f", {dedup} from cache" if dedup else ""
    print(
        f"campaign {spec.name!r}: {summary['ok']}/{summary['scenarios']} "
        f"scenarios ok in {summary['elapsed_s']}s "
        f"({report['campaign']['workers']} worker(s){cached})"
    )
    print(f"wrote {json_path} and {md_path}")
    if summary["failed"]:
        for row in report["scenarios"]:
            if row.get("status") != "ok":
                print(
                    f"FAILED {row['key']}: {row['status']}",
                    file=sys.stderr,
                )
        return EXIT_SCENARIO_FAILURES
    return EXIT_OK


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    problems = 0
    for scenario in spec.scenarios:
        try:
            get_family(scenario.family)
            status = "ok"
        except KeyError as exc:
            status = f"ERROR: {exc}"
            problems += 1
        print(f"{scenario.key:50s} seed={scenario.seed} {status}")
    print(
        f"{len(spec.scenarios)} scenarios, "
        f"{len({s.design_key() for s in spec.scenarios})} distinct designs"
    )
    # Unresolvable families are a spec problem, not a scenario failure.
    return EXIT_SPEC_ERROR if problems else EXIT_OK


def _cmd_families(args: argparse.Namespace) -> int:
    payload = list_families()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK
    for name, info in payload["families"].items():
        reuse = "reusable" if info["reusable"] else "rebuilt per scenario"
        print(f"{name:12s} [{reuse}] {info['description']}")
        if info["params"]:
            defaults = ", ".join(
                f"{k}={v}" for k, v in sorted(info["params"].items())
            )
            print(f"{'':12s} params: {defaults}")
        if info["stimulus_kinds"]:
            print(f"{'':12s} stimulus: {', '.join(info['stimulus_kinds'])}")
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Batch simulation campaigns over the elastic designs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a campaign spec")
    p_run.add_argument("spec", help="path to a .toml or .json campaign spec")
    p_run.add_argument("--workers", type=int, default=None,
                       help="process count (default: spec's campaign.workers)")
    p_run.add_argument("--engine", default=None,
                       help="settle engine override (naive/event/compiled)")
    p_run.add_argument("--out", default="sweep-results",
                       help="output directory (default: sweep-results)")
    p_run.add_argument("--name", default="campaign",
                       help="report basename (default: campaign)")
    p_run.add_argument("--store", default=None, metavar="PATH",
                       help="JSONL result store for cross-run dedup "
                            "(default: off)")
    p_run.add_argument("--ensemble", default="auto", metavar="K",
                       help="lockstep batching of control-identical "
                            "scenarios: auto, off, or a lane cap "
                            "(default: auto; reports are identical "
                            "either way)")
    p_run.add_argument("--profile", action="store_true",
                       help="attach the kernel profiler per scenario and "
                            "fold a hot-component/fusion summary into the "
                            "markdown report (metrics are bit-identical "
                            "with or without)")
    p_run.add_argument("--follow", action="store_true",
                       help="stream per-scenario progress to stderr while "
                            "the campaign runs")
    p_run.add_argument("--timeout-s", type=float, default=None, metavar="S",
                       help="per-scenario deadline in seconds for this run "
                            "(overrides spec timeout_s values); a unit "
                            "past its deadline is killed and its rows "
                            "marked status=timeout (default: spec/derived)")
    p_run.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retry budget for retryable scenario failures "
                            "(timeout, worker death); retried-then-ok "
                            "rows are bit-identical to first-try rows "
                            "(default: spec's campaign.retries, else 1)")
    p_run.set_defaults(fn=_cmd_run)

    p_val = sub.add_parser("validate", help="expand and check a spec")
    p_val.add_argument("spec")
    p_val.set_defaults(fn=_cmd_validate)

    p_fam = sub.add_parser("families", help="list registered families")
    p_fam.add_argument("--json", action="store_true",
                       help="emit the registry as JSON (the /families "
                            "payload)")
    p_fam.set_defaults(fn=_cmd_families)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except SpecError as exc:
        # One rendering source: the CLI prints the same structured
        # {path, field, reason} diagnosis the HTTP 400 body carries.
        print(f"spec error: {exc}", file=sys.stderr)
        return EXIT_SPEC_ERROR


if __name__ == "__main__":
    sys.exit(main())
