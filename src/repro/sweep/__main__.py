"""CLI for simulation campaigns: ``python -m repro.sweep <command>``.

Commands:

* ``run <spec> [--workers N] [--engine E] [--out DIR] [--name BASE]`` —
  execute a campaign spec (TOML on Python 3.11+, JSON everywhere) and
  write ``<BASE>.json`` + ``<BASE>.md`` reports.  Exit status is
  non-zero when any scenario failed.
* ``validate <spec>`` — expand the spec, check every family is
  registered, and print the scenario list without running anything.
* ``families`` — list the registered design families.
"""

from __future__ import annotations

import argparse
import sys

from repro.sweep.registry import family_names, get_family
from repro.sweep.report import write_report
from repro.sweep.runner import run_campaign
from repro.sweep.spec import SweepSpecError, load_spec


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    report = run_campaign(spec, workers=args.workers, engine=args.engine)
    json_path, md_path = write_report(report, args.out, args.name)
    summary = report["summary"]
    print(
        f"campaign {spec.name!r}: {summary['ok']}/{summary['scenarios']} "
        f"scenarios ok in {summary['elapsed_s']}s "
        f"({report['campaign']['workers']} worker(s))"
    )
    print(f"wrote {json_path} and {md_path}")
    if summary["failed"]:
        for row in report["scenarios"]:
            if row.get("status") != "ok":
                print(
                    f"FAILED {row['key']}: {row['status']}",
                    file=sys.stderr,
                )
        return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    problems = 0
    for scenario in spec.scenarios:
        try:
            get_family(scenario.family)
            status = "ok"
        except KeyError as exc:
            status = f"ERROR: {exc}"
            problems += 1
        print(f"{scenario.key:50s} seed={scenario.seed} {status}")
    print(
        f"{len(spec.scenarios)} scenarios, "
        f"{len({s.design_key() for s in spec.scenarios})} distinct designs"
    )
    return 1 if problems else 0


def _cmd_families(_args: argparse.Namespace) -> int:
    for name in family_names():
        family = get_family(name)
        reuse = "reusable" if family.reusable else "rebuilt per scenario"
        print(f"{name:12s} [{reuse}] {family.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Batch simulation campaigns over the elastic designs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a campaign spec")
    p_run.add_argument("spec", help="path to a .toml or .json campaign spec")
    p_run.add_argument("--workers", type=int, default=None,
                       help="process count (default: spec's campaign.workers)")
    p_run.add_argument("--engine", default=None,
                       help="settle engine override (naive/event/compiled)")
    p_run.add_argument("--out", default="sweep-results",
                       help="output directory (default: sweep-results)")
    p_run.add_argument("--name", default="campaign",
                       help="report basename (default: campaign)")
    p_run.set_defaults(fn=_cmd_run)

    p_val = sub.add_parser("validate", help="expand and check a spec")
    p_val.add_argument("spec")
    p_val.set_defaults(fn=_cmd_validate)

    p_fam = sub.add_parser("families", help="list registered families")
    p_fam.set_defaults(fn=_cmd_families)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except SweepSpecError as exc:
        print(f"spec error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
