"""Throughput and utilization analysis over monitor recordings.

Turns the raw transfer streams recorded by
:class:`repro.core.monitor.MTMonitor` (and the single-thread
:class:`repro.elastic.monitor.ChannelMonitor`) into the quantities the
paper reasons about: per-thread throughput, channel utilization, and
steady-state windows that exclude pipeline fill/drain transients.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.monitor import MTMonitor


@dataclasses.dataclass(frozen=True)
class ThreadStats:
    """Per-thread summary over an observation window."""

    thread: int
    transfers: int
    throughput: float
    first_cycle: int | None
    last_cycle: int | None


@dataclasses.dataclass(frozen=True)
class ChannelStats:
    """Whole-channel summary over an observation window."""

    cycles: int
    transfers: int
    utilization: float
    per_thread: tuple[ThreadStats, ...]

    def thread(self, t: int) -> ThreadStats:
        return self.per_thread[t]


def channel_stats(
    monitor: MTMonitor, start: int = 0, end: int | None = None
) -> ChannelStats:
    """Summarize a monitor's recording over cycles ``[start, end)``.

    One columnar pass over the monitor's transfer columns — O(rows),
    independent of the thread count — instead of re-materializing the
    row list once per thread.  The window must lie inside the observed
    range: asking for ``end`` beyond ``monitor.cycles_observed`` would
    silently dilute throughput with never-simulated cycles, so it
    raises instead.
    """
    observed = monitor.cycles_observed
    if end is None:
        end = observed
    if end <= start:
        raise ValueError(f"empty window [{start}, {end})")
    if end > observed:
        raise ValueError(
            f"window [{start}, {end}) extends beyond the "
            f"{observed} observed cycles; run the simulation further or "
            f"clamp the window"
        )
    span = end - start
    threads = monitor.threads
    counts = [0] * threads
    first: list[int | None] = [None] * threads
    last: list[int | None] = [None] * threads
    tr_cycle, tr_thread = monitor.transfer_columns()
    # Columns are appended in simulation order, so cycles ascend: the
    # first in-window hit per thread is its first_cycle, the latest its
    # last_cycle.
    for c, t in zip(tr_cycle, tr_thread):
        if start <= c < end:
            counts[t] += 1
            if first[t] is None:
                first[t] = c
            last[t] = c
    per_thread = tuple(
        ThreadStats(
            thread=t,
            transfers=counts[t],
            throughput=counts[t] / span,
            first_cycle=first[t],
            last_cycle=last[t],
        )
        for t in range(threads)
    )
    total = sum(counts)
    return ChannelStats(
        cycles=span,
        transfers=total,
        utilization=total / span,
        per_thread=per_thread,
    )


def steady_state_window(
    monitor: MTMonitor, warmup: int = 8, drain: int = 4
) -> tuple[int, int]:
    """A window that skips the pipeline-fill head and the drain tail.

    The tail is clipped at the last observed transfer minus *drain* so a
    finite workload's trailing idle cycles do not dilute throughput.
    """
    observed = max(1, monitor.cycles_observed)
    tr_cycle, _tr_thread = monitor.transfer_columns()
    if not tr_cycle:
        return (0, observed)
    last = tr_cycle[-1]  # columns are in ascending cycle order
    start = warmup
    end = max(start + 1, last - drain)
    # A run shorter than the requested warmup would otherwise yield a
    # window past the recording, which channel_stats (correctly)
    # rejects; clamp to the observed range instead.
    end = min(end, observed)
    start = max(0, min(start, end - 1))
    return (start, end)


def fairness_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index over per-thread throughputs (1.0 = fair).

    Used by the arbitration ablation: round-robin arbitration should score
    ~1.0 across active threads, fixed priority should not.
    """
    values = [tp for tp in throughputs if tp > 0 or True]
    if not values or all(v == 0 for v in values):
        return 0.0
    num = sum(values) ** 2
    den = len(values) * sum(v * v for v in values)
    return num / den


def per_thread_throughputs(
    monitor: MTMonitor, start: int = 0, end: int | None = None
) -> list[float]:
    stats = channel_stats(monitor, start, end)
    return [ts.throughput for ts in stats.per_thread]
