"""Throughput and utilization analysis over monitor recordings.

Turns the raw transfer streams recorded by
:class:`repro.core.monitor.MTMonitor` (and the single-thread
:class:`repro.elastic.monitor.ChannelMonitor`) into the quantities the
paper reasons about: per-thread throughput, channel utilization, and
steady-state windows that exclude pipeline fill/drain transients.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.monitor import MTMonitor


@dataclasses.dataclass(frozen=True)
class ThreadStats:
    """Per-thread summary over an observation window."""

    thread: int
    transfers: int
    throughput: float
    first_cycle: int | None
    last_cycle: int | None


@dataclasses.dataclass(frozen=True)
class ChannelStats:
    """Whole-channel summary over an observation window."""

    cycles: int
    transfers: int
    utilization: float
    per_thread: tuple[ThreadStats, ...]

    def thread(self, t: int) -> ThreadStats:
        return self.per_thread[t]


def channel_stats(
    monitor: MTMonitor, start: int = 0, end: int | None = None
) -> ChannelStats:
    """Summarize a monitor's recording over cycles ``[start, end)``."""
    if end is None:
        end = monitor.cycles_observed
    if end <= start:
        raise ValueError(f"empty window [{start}, {end})")
    span = end - start
    per_thread = []
    total = 0
    transfers = monitor.transfers  # one row-major materialization
    for t in range(monitor.threads):
        cycles = [
            c for c, th, _d in transfers if th == t and start <= c < end
        ]
        per_thread.append(
            ThreadStats(
                thread=t,
                transfers=len(cycles),
                throughput=len(cycles) / span,
                first_cycle=min(cycles) if cycles else None,
                last_cycle=max(cycles) if cycles else None,
            )
        )
        total += len(cycles)
    return ChannelStats(
        cycles=span,
        transfers=total,
        utilization=total / span,
        per_thread=tuple(per_thread),
    )


def steady_state_window(
    monitor: MTMonitor, warmup: int = 8, drain: int = 4
) -> tuple[int, int]:
    """A window that skips the pipeline-fill head and the drain tail.

    The tail is clipped at the last observed transfer minus *drain* so a
    finite workload's trailing idle cycles do not dilute throughput.
    """
    transfers = monitor.transfers  # one row-major materialization
    if not transfers:
        return (0, max(1, monitor.cycles_observed))
    last = max(c for c, _t, _d in transfers)
    start = warmup
    end = max(start + 1, last - drain)
    return (start, end)


def fairness_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index over per-thread throughputs (1.0 = fair).

    Used by the arbitration ablation: round-robin arbitration should score
    ~1.0 across active threads, fixed priority should not.
    """
    values = [tp for tp in throughputs if tp > 0 or True]
    if not values or all(v == 0 for v in values):
        return 0.0
    num = sum(values) ** 2
    den = len(values) * sum(v * v for v in values)
    return num / den


def per_thread_throughputs(
    monitor: MTMonitor, start: int = 0, end: int | None = None
) -> list[float]:
    stats = channel_stats(monitor, start, end)
    return [ts.throughput for ts in stats.per_thread]
