"""Renderers for the paper's figures as terminal tables.

* :func:`render_activity_table` — the Fig.-5 style cycle-by-cycle view of
  which thread occupies each channel (``A0``, ``B3``, ``-`` for idle,
  lower-case for a presented-but-stalled item).
* :func:`render_timeline` — the Fig.-1 style single-row timeline of what a
  computation unit processes each cycle.
* :func:`render_occupancy_table` — per-cycle buffer occupancy, for
  visualizing how stalled items pile up in MEB slots.
"""

from __future__ import annotations

import io
from typing import Any, Callable, Mapping, Sequence

from repro.core.monitor import MTMonitor

#: Default thread labels: A, B, C, ...
def thread_letter(t: int) -> str:
    return chr(ord("A") + t)


def _activity_cell(
    entry: tuple[int | None, Any, bool],
    label_fn: Callable[[int, Any], str],
) -> str:
    thread, data, transferred = entry
    if thread is None:
        return "-"
    text = label_fn(thread, data)
    return text if transferred else text.lower() + "*"


def render_activity_table(
    monitors: Mapping[str, MTMonitor],
    start: int = 0,
    end: int | None = None,
    label_fn: Callable[[int, Any], str] | None = None,
    cell_width: int = 5,
) -> str:
    """Cycle-by-cycle channel activity, one row per monitored channel.

    Cells show the item moving on that channel that cycle (e.g. ``B3``);
    a lower-cased cell with ``*`` marks a presented-but-stalled item and
    ``-`` an idle cycle — matching how the paper's Fig. 5 annotates the
    flow through the 2-stage MEB pipelines.
    """
    if label_fn is None:
        label_fn = lambda t, d: str(d) if d is not None else thread_letter(t)
    mon_list = list(monitors.items())
    if not mon_list:
        raise ValueError("need at least one monitor")
    n_cycles = min(m.cycles_observed for _n, m in mon_list)
    if end is None:
        end = n_cycles
    end = min(end, n_cycles)
    label_width = max(len(name) for name, _m in mon_list)
    label_width = max(label_width, len("cycle"))
    out = io.StringIO()
    header = "cycle".ljust(label_width) + " |"
    for c in range(start, end):
        header += str(c).rjust(cell_width)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for name, mon in mon_list:
        row = name.ljust(label_width) + " |"
        acts = mon.activity  # one row-major materialization per monitor
        for c in range(start, end):
            row += _activity_cell(acts[c], label_fn).rjust(cell_width)
        out.write(row + "\n")
    return out.getvalue()


def render_timeline(
    title: str,
    entries: Sequence[str | None],
    cell_width: int = 5,
) -> str:
    """One labelled row of per-cycle activity (Fig. 1 style)."""
    out = io.StringIO()
    header = "cycle".ljust(max(len(title), 5)) + " |"
    for c in range(len(entries)):
        header += str(c).rjust(cell_width)
    out.write(header + "\n")
    row = title.ljust(max(len(title), 5)) + " |"
    for entry in entries:
        row += (entry if entry is not None else "-").rjust(cell_width)
    out.write(row + "\n")
    return out.getvalue()


def render_occupancy_table(
    occupancy_log: Mapping[str, Sequence[int]],
    start: int = 0,
    end: int | None = None,
    cell_width: int = 4,
) -> str:
    """Per-cycle occupancy counters, one row per buffer."""
    rows = list(occupancy_log.items())
    if not rows:
        raise ValueError("need at least one occupancy series")
    n = min(len(series) for _name, series in rows)
    if end is None:
        end = n
    end = min(end, n)
    label_width = max(max(len(name) for name, _s in rows), len("cycle"))
    out = io.StringIO()
    header = "cycle".ljust(label_width) + " |"
    for c in range(start, end):
        header += str(c).rjust(cell_width)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for name, series in rows:
        row = name.ljust(label_width) + " |"
        for c in range(start, end):
            row += str(series[c]).rjust(cell_width)
        out.write(row + "\n")
    return out.getvalue()


class OccupancyProbe:
    """Observer that logs a callable's value once per cycle.

    Attach with ``sim.add_observer(probe)``; read ``probe.series``.
    Typical use: ``OccupancyProbe(lambda: meb.total_occupancy())``.
    """

    def __init__(self, fn: Callable[[], Any]):
        self._fn = fn
        self.series: list[Any] = []

    def __call__(self, _sim: Any) -> None:
        self.series.append(self._fn())
