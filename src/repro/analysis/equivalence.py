"""Trace-equivalence checking (paper §I).

"Synchronous elastic circuits are behaviorally equivalent to conventional
synchronous circuits with respect to the trace of valid data observed at
the inputs and outputs" — these helpers make that notion executable:

* :func:`streams_equal` — per-thread data sequences match a reference.
* :func:`check_token_conservation` — everything injected at the input
  monitor eventually appears at the output monitor, per thread, in order.
* :func:`latency_profile` — per-token latency between two monitors.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

from repro.core.monitor import MTMonitor


@dataclasses.dataclass(frozen=True)
class ConservationReport:
    """Result of an input-vs-output token conservation check."""

    ok: bool
    per_thread_ok: tuple[bool, ...]
    missing: tuple[tuple[int, int], ...]   # (thread, count not delivered)
    reordered: tuple[int, ...]             # threads with order violations

    def __bool__(self) -> bool:
        return self.ok


def streams_equal(
    monitor: MTMonitor, reference: Sequence[Sequence[Any]]
) -> bool:
    """True when each thread's observed data equals the reference stream."""
    if len(reference) != monitor.threads:
        raise ValueError("reference must have one stream per thread")
    return all(
        monitor.values_for(t) == list(reference[t])
        for t in range(monitor.threads)
    )


def check_token_conservation(
    inp: MTMonitor, out: MTMonitor, allow_in_flight: int = 0
) -> ConservationReport:
    """Compare input and output transfer streams per thread.

    ``allow_in_flight`` tolerates that many trailing tokens per thread
    still inside the pipeline (for checks taken mid-run).
    """
    if inp.threads != out.threads:
        raise ValueError("monitors watch channels of different thread counts")
    per_ok: list[bool] = []
    missing: list[tuple[int, int]] = []
    reordered: list[int] = []
    for t in range(inp.threads):
        sent = inp.values_for(t)
        got = out.values_for(t)
        lag = len(sent) - len(got)
        if lag < 0 or lag > allow_in_flight:
            per_ok.append(False)
            missing.append((t, lag))
            continue
        if got != sent[: len(got)]:
            per_ok.append(False)
            reordered.append(t)
            continue
        per_ok.append(True)
        if lag:
            missing.append((t, lag))
    ok = all(per_ok)
    return ConservationReport(
        ok=ok,
        per_thread_ok=tuple(per_ok),
        missing=tuple(missing),
        reordered=tuple(reordered),
    )


def latency_profile(inp: MTMonitor, out: MTMonitor, thread: int) -> list[int]:
    """Cycle latency of each delivered token of *thread* between monitors.

    Tokens are matched positionally (per-thread order is FIFO through any
    elastic network, which :func:`check_token_conservation` verifies).
    """
    in_cycles = inp.transfer_cycles(thread)
    out_cycles = out.transfer_cycles(thread)
    return [o - i for i, o in zip(in_cycles, out_cycles)]
