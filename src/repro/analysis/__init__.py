"""Measurement and rendering utilities over simulation recordings."""

from repro.analysis.equivalence import (
    ConservationReport,
    check_token_conservation,
    latency_profile,
    streams_equal,
)
from repro.analysis.figures import (
    OccupancyProbe,
    render_activity_table,
    render_occupancy_table,
    render_timeline,
    thread_letter,
)
from repro.analysis.throughput import (
    ChannelStats,
    ThreadStats,
    channel_stats,
    fairness_index,
    per_thread_throughputs,
    steady_state_window,
)

__all__ = [
    "ChannelStats",
    "ConservationReport",
    "OccupancyProbe",
    "ThreadStats",
    "channel_stats",
    "check_token_conservation",
    "fairness_index",
    "latency_profile",
    "per_thread_throughputs",
    "render_activity_table",
    "render_occupancy_table",
    "render_timeline",
    "steady_state_window",
    "streams_equal",
    "thread_letter",
]
