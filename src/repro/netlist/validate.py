"""Structural validation of dataflow graphs before elaboration.

Checks (each yields a :class:`ValidationIssue`):

* every declared port is connected exactly once,
* every directed cycle contains at least one BUFFER node (an elastic loop
  without storage deadlocks — the token has nowhere to sit),
* combinational cycles: a cycle containing only zero-latency operators
  would never settle,
* BRANCH nodes have a selector, SOURCE nodes have items.
"""

from __future__ import annotations

import dataclasses

from repro.graphs import cyclic_nodes
from repro.netlist.graph import DataflowGraph, NodeKind


@dataclasses.dataclass(frozen=True)
class ValidationIssue:
    severity: str          # "error" | "warning"
    node: str | None
    message: str

    def __str__(self) -> str:
        where = f" [{self.node}]" if self.node else ""
        return f"{self.severity}{where}: {self.message}"


class GraphValidationError(Exception):
    """Raised by :func:`validate` when errors are present."""

    def __init__(self, issues: list[ValidationIssue]):
        self.issues = issues
        super().__init__(
            "; ".join(str(i) for i in issues if i.severity == "error")
        )


def _port_issues(graph: DataflowGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for name, node in graph.nodes.items():
        in_used: dict[int, int] = {}
        out_used: dict[int, int] = {}
        for edge in graph.in_edges(name):
            in_used[edge.dst_port] = in_used.get(edge.dst_port, 0) + 1
        for edge in graph.out_edges(name):
            out_used[edge.src_port] = out_used.get(edge.src_port, 0) + 1
        for port in range(node.n_inputs):
            count = in_used.get(port, 0)
            if count == 0:
                issues.append(ValidationIssue(
                    "error", name, f"input port {port} unconnected"))
            elif count > 1:
                issues.append(ValidationIssue(
                    "error", name, f"input port {port} has {count} drivers"))
        for port in range(node.n_outputs):
            count = out_used.get(port, 0)
            if count == 0:
                issues.append(ValidationIssue(
                    "error", name, f"output port {port} unconnected"))
            elif count > 1:
                issues.append(ValidationIssue(
                    "error", name,
                    f"output port {port} fans out {count} ways; insert an "
                    "explicit fork"))
        for port in in_used:
            if port >= node.n_inputs:
                issues.append(ValidationIssue(
                    "error", name, f"input port {port} out of range"))
        for port in out_used:
            if port >= node.n_outputs:
                issues.append(ValidationIssue(
                    "error", name, f"output port {port} out of range"))
    return issues


def _cycle_issues(graph: DataflowGraph) -> list[ValidationIssue]:
    """Every directed cycle must pass through a BUFFER (or VLU) node.

    Strips the storage nodes, then asks the shared SCC machinery
    (:func:`repro.graphs.cyclic_nodes` — the same algorithms the event
    settle engine schedules with) whether any cycle survives.
    """
    # Remove storage nodes, then any remaining cycle is bufferless.
    storage = {
        name
        for name, node in graph.nodes.items()
        if node.kind in (NodeKind.BUFFER, NodeKind.VLU)
    }
    names = [name for name in graph.nodes if name not in storage]
    index = {name: i for i, name in enumerate(names)}
    succ: list[list[int]] = [[] for _ in names]
    for edge in graph.edges:
        if edge.src in storage or edge.dst in storage:
            continue
        succ[index[edge.src]].append(index[edge.dst])

    on_cycle = cyclic_nodes(succ)
    if not on_cycle:
        return []
    witness = names[on_cycle[0]]
    return [ValidationIssue(
        "error", witness,
        "bufferless cycle through this node (elastic loops need at "
        "least one buffer to hold the circulating token and cut the "
        "combinational path)")]


def _param_issues(graph: DataflowGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for name, node in graph.nodes.items():
        if node.kind == NodeKind.SOURCE and "items" not in node.params:
            issues.append(ValidationIssue(
                "error", name, "source node needs 'items'"))
        if node.kind == NodeKind.BRANCH and "selector" not in node.params:
            issues.append(ValidationIssue(
                "error", name, "branch node needs 'selector'"))
        if node.kind in (NodeKind.OP, NodeKind.VLU) and "fn" not in node.params:
            issues.append(ValidationIssue(
                "error", name, f"{node.kind.value} node needs 'fn'"))
    return issues


def validate(graph: DataflowGraph, raise_on_error: bool = True) -> list[ValidationIssue]:
    """Run all structural checks; raise on errors unless told not to."""
    issues = _param_issues(graph) + _port_issues(graph)
    # Cycle analysis is only meaningful on a port-complete graph.
    if not any(i.severity == "error" for i in issues):
        issues += _cycle_issues(graph)
    if raise_on_error and any(i.severity == "error" for i in issues):
        raise GraphValidationError(issues)
    return issues
