"""Graph transforms: automatic elasticization.

The paper's framing (§I, §VI) is that elastic primitives enable the
*synthesis* of elastic architectures from higher-level descriptions.
These transforms supply the missing mechanical steps:

* :func:`insert_edge_buffer` — split one edge with a named BUFFER node.
* :func:`pipeline_ops` — place a buffer after every computation node
  ("replace any simple data connection with an elastic channel [backed
  by an EB]", §II), turning a combinational dataflow into a fully
  pipelined elastic one.
* :func:`break_cycles` — find every bufferless cycle and insert a buffer
  on one of its edges, making an arbitrary graph legal for elaboration
  (cycles need storage to hold the circulating token).

All transforms mutate the graph in place and return it, so they chain.
"""

from __future__ import annotations

from repro.netlist.graph import DataflowGraph, Edge, NodeKind

#: Node kinds that already provide storage on a path.
_STORAGE_KINDS = (NodeKind.BUFFER, NodeKind.VLU)


def _fresh_name(graph: DataflowGraph, stem: str) -> str:
    k = 0
    while f"{stem}{k}" in graph.nodes:
        k += 1
    return f"{stem}{k}"


def insert_edge_buffer(
    graph: DataflowGraph, edge: Edge, name: str | None = None
) -> str:
    """Replace ``src -> dst`` with ``src -> buffer -> dst``.

    Returns the buffer node's name.
    """
    if edge not in graph.edges:
        raise ValueError(f"edge {edge.name} not in graph {graph.name!r}")
    if name is None:
        name = _fresh_name(graph, "autobuf")
    graph.buffer(name)
    graph.edges.remove(edge)
    graph.connect(edge.src, name, src_port=edge.src_port, dst_port=0,
                  width=edge.width)
    graph.connect(name, edge.dst, src_port=0, dst_port=edge.dst_port,
                  width=edge.width)
    return name


def pipeline_ops(graph: DataflowGraph) -> DataflowGraph:
    """Insert a buffer after every OP output that is not already buffered.

    The classic elasticization recipe: every computation's result lands
    in an elastic buffer, so each OP becomes one pipeline stage.
    """
    for edge in list(graph.edges):
        src_node = graph.nodes[edge.src]
        dst_node = graph.nodes[edge.dst]
        if (
            src_node.kind is NodeKind.OP
            and dst_node.kind not in _STORAGE_KINDS
        ):
            insert_edge_buffer(graph, edge)
    return graph


def _find_bufferless_cycle(graph: DataflowGraph) -> list[Edge] | None:
    """One cycle (as an edge list) that contains no storage node."""
    storage = {
        name for name, node in graph.nodes.items()
        if node.kind in _STORAGE_KINDS
    }
    adj: dict[str, list[Edge]] = {
        name: [] for name in graph.nodes if name not in storage
    }
    for edge in graph.edges:
        if edge.src in storage or edge.dst in storage:
            continue
        adj[edge.src].append(edge)

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in adj}
    parent_edge: dict[str, Edge] = {}

    def dfs(start: str) -> list[Edge] | None:
        stack: list[tuple[str, int]] = [(start, 0)]
        color[start] = GRAY
        while stack:
            node, idx = stack[-1]
            if idx < len(adj[node]):
                stack[-1] = (node, idx + 1)
                edge = adj[node][idx]
                nxt = edge.dst
                if color[nxt] == GRAY:
                    # Reconstruct the cycle from the DFS stack.
                    cycle = [edge]
                    walker = node
                    while walker != nxt:
                        back = parent_edge[walker]
                        cycle.append(back)
                        walker = back.src
                    cycle.reverse()
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent_edge[nxt] = edge
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
                stack.pop()
        return None

    for name in adj:
        if color[name] == WHITE:
            found = dfs(name)
            if found is not None:
                return found
    return None


def break_cycles(graph: DataflowGraph, max_iterations: int = 1000) -> DataflowGraph:
    """Insert buffers until no bufferless cycle remains."""
    for _ in range(max_iterations):
        cycle = _find_bufferless_cycle(graph)
        if cycle is None:
            return graph
        insert_edge_buffer(graph, cycle[0])
    raise RuntimeError("break_cycles did not converge")  # pragma: no cover


def elasticize(graph: DataflowGraph) -> DataflowGraph:
    """Full elasticization: pipeline every OP, then break residual cycles."""
    pipeline_ops(graph)
    break_cycles(graph)
    return graph
