"""Dataflow-graph IR, validation and elaboration to elastic circuits."""

from repro.netlist.elaborate import Elaboration, elaborate
from repro.netlist.graph import DataflowGraph, Edge, Node, NodeKind
from repro.netlist.render import cost_report, elaboration_cost, to_dot
from repro.netlist.transform import (
    break_cycles,
    elasticize,
    insert_edge_buffer,
    pipeline_ops,
)
from repro.netlist.validate import GraphValidationError, ValidationIssue, validate

__all__ = [
    "DataflowGraph",
    "Edge",
    "Elaboration",
    "GraphValidationError",
    "Node",
    "NodeKind",
    "ValidationIssue",
    "break_cycles",
    "cost_report",
    "elaborate",
    "elaboration_cost",
    "elasticize",
    "insert_edge_buffer",
    "pipeline_ops",
    "to_dot",
    "validate",
]
