"""Lowering a dataflow graph to a simulatable elastic circuit.

One validated :class:`~repro.netlist.graph.DataflowGraph` elaborates to:

* a **single-thread** elastic circuit (``threads=1``): channels, 2-slot
  EBs, the Fig. 3 operators; or
* a **multithreaded** elastic circuit (``threads=S``): MT channels and a
  full or reduced MEB per BUFFER node — the paper's "replace every
  pipeline register with an MEB" recipe applied mechanically.

The returned :class:`Elaboration` keeps name-indexed handles to sources,
sinks, buffers and per-edge monitors, plus the live
:class:`~repro.kernel.simulator.Simulator`.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.core import (
    Barrier,
    FullMEB,
    GrantPolicy,
    MBranch,
    MFork,
    MJoin,
    MMerge,
    MTChannel,
    MTFunction,
    MTMonitor,
    MTSink,
    MTSource,
    MTVariableLatencyUnit,
    ReducedMEB,
)
from repro.elastic import (
    Branch,
    ChannelMonitor,
    ElasticBuffer,
    ElasticChannel,
    FunctionUnit,
    Join,
    LazyFork,
    Merge,
    Sink,
    Source,
    VariableLatencyUnit,
)
from repro.kernel import Component, Simulator
from repro.kernel.errors import WiringError
from repro.netlist.graph import DataflowGraph, NodeKind
from repro.netlist.validate import validate

MEB_KINDS = {"full": FullMEB, "reduced": ReducedMEB}


@dataclasses.dataclass
class Elaboration:
    """A lowered, ready-to-run circuit with name-indexed handles."""

    graph_name: str
    threads: int
    sim: Simulator
    components: dict[str, Component]
    channels: dict[str, Component]
    monitors: dict[str, Any]

    def source(self, name: str):
        return self.components[name]

    def sink(self, name: str):
        return self.components[name]

    def buffer(self, name: str):
        return self.components[name]

    def monitor(self, edge_name: str):
        return self.monitors[edge_name]

    def run(self, **kwargs: Any) -> int:
        return self.sim.run(**kwargs)


def _normalize_items(items: Any, threads: int) -> list[list[Any]]:
    """Accept flat lists for single-thread graphs, per-thread otherwise."""
    if threads == 1:
        if items and isinstance(items[0], (list, tuple)):
            return [list(items[0])]
        return [list(items)]
    if len(items) != threads:
        raise WiringError(
            f"multithreaded source needs {threads} item streams, got "
            f"{len(items)}"
        )
    return [list(stream) for stream in items]


def elaborate(
    graph: DataflowGraph,
    threads: int = 1,
    meb: str = "reduced",
    policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
    monitors: bool = True,
    max_settle_iterations: int = 128,
    engine: str | None = None,
) -> Elaboration:
    """Validate and lower *graph*; returns a reset, runnable circuit.

    ``engine`` selects the simulator's settle engine (``"event"`` /
    ``"naive"``); None uses the process default.
    """
    if meb not in MEB_KINDS:
        raise ValueError(f"meb must be one of {sorted(MEB_KINDS)}")
    validate(graph)
    mt = threads > 1
    sim = Simulator(
        max_settle_iterations=max_settle_iterations, engine=engine
    )
    channels: dict[str, Component] = {}
    mon_map: dict[str, Any] = {}

    # Edges -> channels (+ optional monitors).
    in_ch: dict[tuple[str, int], Component] = {}
    out_ch: dict[tuple[str, int], Component] = {}
    for i, edge in enumerate(graph.edges):
        cname = f"e{i}"
        ch: Component
        if mt:
            ch = MTChannel(cname, threads=threads, width=edge.width)
        else:
            ch = ElasticChannel(cname, width=edge.width)
        channels[edge.name] = ch
        out_ch[(edge.src, edge.src_port)] = ch
        in_ch[(edge.dst, edge.dst_port)] = ch
        sim.add(ch)
        if monitors:
            mon = (
                MTMonitor(f"mon_{cname}", ch)
                if mt
                else ChannelMonitor(f"mon_{cname}", ch)
            )
            mon_map[edge.name] = mon
            sim.add(mon)

    components: dict[str, Component] = {}

    def inputs_of(name: str, node) -> list[Component]:
        return [in_ch[(name, p)] for p in range(node.n_inputs)]

    def outputs_of(name: str, node) -> list[Component]:
        return [out_ch[(name, p)] for p in range(node.n_outputs)]

    for name, node in graph.nodes.items():
        params = dict(node.params)
        ins = inputs_of(name, node)
        outs = outputs_of(name, node)
        comp: Component
        if node.kind == NodeKind.SOURCE:
            items = _normalize_items(params.pop("items"), threads)
            if mt:
                comp = MTSource(name, outs[0], items=items,
                                patterns=params.pop("patterns", None),
                                policy=policy)
            else:
                comp = Source(name, outs[0], items=items[0],
                              pattern=params.pop("patterns", None))
        elif node.kind == NodeKind.SINK:
            if mt:
                comp = MTSink(name, ins[0],
                              patterns=params.pop("patterns", None))
            else:
                comp = Sink(name, ins[0],
                            pattern=params.pop("patterns", None))
        elif node.kind == NodeKind.BUFFER:
            if mt:
                comp = MEB_KINDS[meb](name, ins[0], outs[0], policy=policy)
            else:
                comp = ElasticBuffer(name, ins[0], outs[0])
        elif node.kind == NodeKind.OP:
            fn = params.pop("fn")
            luts = params.pop("area_luts", 0)
            if mt:
                comp = MTFunction(name, ins[0], outs[0], fn=fn,
                                  area_luts=luts)
            else:
                comp = FunctionUnit(name, ins[0], outs[0], fn=fn,
                                    area_luts=luts)
        elif node.kind == NodeKind.VLU:
            fn = params.pop("fn")
            latency = params.pop("latency", 1)
            luts = params.pop("area_luts", 0)
            if mt:
                comp = MTVariableLatencyUnit(name, ins[0], outs[0], fn=fn,
                                             latency=latency, area_luts=luts)
            else:
                comp = VariableLatencyUnit(name, ins[0], outs[0], fn=fn,
                                           latency=latency, area_luts=luts)
        elif node.kind == NodeKind.FORK:
            comp = (MFork if mt else LazyFork)(name, ins[0], outs)
        elif node.kind == NodeKind.JOIN:
            combine = params.pop("combine", None)
            if mt:
                comp = MJoin(name, ins, outs[0], combine=combine)
            else:
                comp = Join(name, ins, outs[0], combine=combine)
        elif node.kind == NodeKind.BRANCH:
            selector = params.pop("selector")
            route = params.pop("route", None)
            if mt:
                comp = MBranch(name, ins[0], outs, selector=selector,
                               route=route)
            else:
                comp = Branch(name, ins[0], outs, selector=selector,
                              route=route)
        elif node.kind == NodeKind.MERGE:
            if mt:
                comp = MMerge(name, ins, outs[0])
            else:
                comp = Merge(name, ins, outs[0],
                             strict=params.pop("strict", False))
        elif node.kind == NodeKind.BARRIER:
            if not mt:
                raise WiringError(
                    f"{name}: barrier is a multithreaded primitive; "
                    "elaborate with threads > 1"
                )
            comp = Barrier(name, ins[0], outs[0],
                           participants=params.pop("participants", None),
                           on_release=params.pop("on_release", None))
        else:  # pragma: no cover - exhaustive over NodeKind
            raise WiringError(f"unhandled node kind {node.kind}")
        components[name] = comp
        sim.add(comp)

    sim.reset()
    return Elaboration(
        graph_name=graph.name,
        threads=threads,
        sim=sim,
        components=components,
        channels=channels,
        monitors=mon_map,
    )
