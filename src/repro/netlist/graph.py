"""Dataflow-graph intermediate representation for elastic synthesis.

The paper positions its primitives as building blocks for "the automated
synthesis of complex algorithms to their multithreaded elastic equivalent
circuits" (§VI).  This module provides the front half of that flow: a
small dataflow IR whose nodes are exactly the primitive vocabulary
(buffers, operators, barrier, endpoints) and whose edges become elastic
channels.  :mod:`repro.netlist.elaborate` lowers a validated graph to a
simulatable circuit, single-threaded or multithreaded, with either MEB
kind — so one graph description yields all four Table-I design points.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable

from repro.kernel.errors import WiringError


class NodeKind(enum.Enum):
    SOURCE = "source"
    SINK = "sink"
    BUFFER = "buffer"
    OP = "op"              # combinational function
    VLU = "vlu"            # variable-latency unit
    FORK = "fork"
    JOIN = "join"
    BRANCH = "branch"
    MERGE = "merge"
    BARRIER = "barrier"


#: (inputs, outputs); None means "declared per node".
_PORT_SHAPES: dict[NodeKind, tuple[int | None, int | None]] = {
    NodeKind.SOURCE: (0, 1),
    NodeKind.SINK: (1, 0),
    NodeKind.BUFFER: (1, 1),
    NodeKind.OP: (1, 1),
    NodeKind.VLU: (1, 1),
    NodeKind.FORK: (1, None),
    NodeKind.JOIN: (None, 1),
    NodeKind.BRANCH: (1, None),
    NodeKind.MERGE: (None, 1),
    NodeKind.BARRIER: (1, 1),
}


@dataclasses.dataclass
class Node:
    """One dataflow node; ``params`` hold kind-specific configuration.

    Recognized params by kind:

    * SOURCE: ``items`` (list, or list-of-lists per thread), ``patterns``
    * SINK: ``patterns``
    * OP: ``fn`` (callable), ``area_luts``
    * VLU: ``fn``, ``latency``, ``area_luts``
    * JOIN: ``combine``
    * BRANCH: ``selector``, ``route``
    * BARRIER: ``participants``, ``on_release``
    """

    name: str
    kind: NodeKind
    n_inputs: int
    n_outputs: int
    params: dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class Edge:
    """A directed connection between node ports; becomes one channel."""

    src: str
    src_port: int
    dst: str
    dst_port: int
    width: int = 32

    @property
    def name(self) -> str:
        return f"{self.src}.{self.src_port}->{self.dst}.{self.dst_port}"


class DataflowGraph:
    """A named collection of nodes and edges with builder helpers."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.edges: list[Edge] = []

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def _add(
        self,
        name: str,
        kind: NodeKind,
        n_inputs: int | None = None,
        n_outputs: int | None = None,
        **params: Any,
    ) -> Node:
        if name in self.nodes:
            raise WiringError(f"duplicate node name {name!r}")
        shape_in, shape_out = _PORT_SHAPES[kind]
        n_in = shape_in if shape_in is not None else n_inputs
        n_out = shape_out if shape_out is not None else n_outputs
        if n_in is None or n_out is None:
            raise WiringError(
                f"node {name!r} of kind {kind.value} needs explicit port "
                "counts"
            )
        node = Node(name, kind, n_in, n_out, params)
        self.nodes[name] = node
        return node

    def source(self, name: str, **params: Any) -> Node:
        return self._add(name, NodeKind.SOURCE, **params)

    def sink(self, name: str, **params: Any) -> Node:
        return self._add(name, NodeKind.SINK, **params)

    def buffer(self, name: str, **params: Any) -> Node:
        return self._add(name, NodeKind.BUFFER, **params)

    def op(self, name: str, fn: Callable[[Any], Any], **params: Any) -> Node:
        return self._add(name, NodeKind.OP, fn=fn, **params)

    def vlu(self, name: str, fn: Callable[[Any], Any], **params: Any) -> Node:
        return self._add(name, NodeKind.VLU, fn=fn, **params)

    def fork(self, name: str, n_outputs: int = 2, **params: Any) -> Node:
        return self._add(name, NodeKind.FORK, n_outputs=n_outputs, **params)

    def join(self, name: str, n_inputs: int = 2, **params: Any) -> Node:
        return self._add(name, NodeKind.JOIN, n_inputs=n_inputs, **params)

    def branch(self, name: str, selector: Callable[[Any], int],
               n_outputs: int = 2, **params: Any) -> Node:
        return self._add(
            name, NodeKind.BRANCH, n_outputs=n_outputs, selector=selector,
            **params,
        )

    def merge(self, name: str, n_inputs: int = 2, **params: Any) -> Node:
        return self._add(name, NodeKind.MERGE, n_inputs=n_inputs, **params)

    def barrier(self, name: str, **params: Any) -> Node:
        return self._add(name, NodeKind.BARRIER, **params)

    def connect(
        self,
        src: str,
        dst: str,
        src_port: int = 0,
        dst_port: int = 0,
        width: int = 32,
    ) -> Edge:
        """Connect ``src`` output port to ``dst`` input port."""
        for node_name in (src, dst):
            if node_name not in self.nodes:
                raise WiringError(f"unknown node {node_name!r}")
        edge = Edge(src, src_port, dst, dst_port, width)
        self.edges.append(edge)
        return edge

    def chain(self, *names: str, width: int = 32) -> list[Edge]:
        """Connect a linear chain of single-port nodes."""
        return [
            self.connect(a, b, width=width)
            for a, b in zip(names, names[1:])
        ]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def in_edges(self, name: str) -> list[Edge]:
        return [e for e in self.edges if e.dst == name]

    def out_edges(self, name: str) -> list[Edge]:
        return [e for e in self.edges if e.src == name]

    def successors(self, name: str) -> list[str]:
        return [e.dst for e in self.out_edges(name)]
