"""Rendering and costing of dataflow graphs and elaborated circuits.

* :func:`to_dot` — Graphviz source for a :class:`DataflowGraph`, so a
  synthesized architecture can be inspected visually (buffers drawn as
  boxes, control operators as diamonds, endpoints as ovals).
* :func:`elaboration_cost` — fold an elaborated circuit through the area
  model, returning per-component and total LE numbers; with this, any
  graph built through the public API gets Table-I style costing for free.
"""

from __future__ import annotations

import io

from repro.cost.model import AreaBreakdown, AreaModel
from repro.netlist.elaborate import Elaboration
from repro.netlist.graph import DataflowGraph, NodeKind

_SHAPES: dict[NodeKind, str] = {
    NodeKind.SOURCE: "oval",
    NodeKind.SINK: "oval",
    NodeKind.BUFFER: "box3d",
    NodeKind.OP: "box",
    NodeKind.VLU: "box",
    NodeKind.FORK: "triangle",
    NodeKind.JOIN: "invtriangle",
    NodeKind.BRANCH: "diamond",
    NodeKind.MERGE: "diamond",
    NodeKind.BARRIER: "octagon",
}


def to_dot(graph: DataflowGraph, title: str | None = None) -> str:
    """Graphviz ``digraph`` source for *graph*."""
    out = io.StringIO()
    out.write(f'digraph "{graph.name}" {{\n')
    out.write("  rankdir=LR;\n")
    if title:
        out.write(f'  label="{title}";\n')
    for name, node in graph.nodes.items():
        shape = _SHAPES[node.kind]
        extra = ""
        if node.kind == NodeKind.BUFFER:
            extra = ', style=filled, fillcolor="lightblue"'
        elif node.kind == NodeKind.BARRIER:
            extra = ', style=filled, fillcolor="orange"'
        out.write(
            f'  "{name}" [shape={shape}, '
            f'label="{name}\\n({node.kind.value})"{extra}];\n'
        )
    for edge in graph.edges:
        label = f"{edge.width}b"
        if edge.src_port or edge.dst_port:
            label += f" [{edge.src_port}->{edge.dst_port}]"
        out.write(f'  "{edge.src}" -> "{edge.dst}" [label="{label}"];\n')
    out.write("}\n")
    return out.getvalue()


def elaboration_cost(
    elab: Elaboration, model: AreaModel | None = None
) -> tuple[dict[str, AreaBreakdown], float]:
    """Per-node area breakdowns and the circuit's total LE count.

    Channels and monitors cost nothing; everything else is folded through
    ``Component.area_items()``.
    """
    if model is None:
        model = AreaModel()
    per_node: dict[str, AreaBreakdown] = {}
    total = 0.0
    for name, comp in elab.components.items():
        area = model.component_area(comp)
        per_node[name] = area
        total += area.total_le
    return per_node, total


def cost_report(elab: Elaboration, model: AreaModel | None = None) -> str:
    """Human-readable per-node cost table for an elaborated circuit."""
    per_node, total = elaboration_cost(elab, model)
    out = io.StringIO()
    out.write(
        f"Cost of '{elab.graph_name}' ({elab.threads} thread(s))\n"
    )
    out.write(f"{'node':<20} | {'LE':>8} | {'ff bits':>8} | {'LUTs':>6}\n")
    out.write("-" * 50 + "\n")
    for name in sorted(per_node, key=lambda n: -per_node[n].total_le):
        area = per_node[name]
        out.write(
            f"{name:<20} | {area.total_le:>8.0f} | {area.ff_bits:>8} | "
            f"{area.luts:>6}\n"
        )
    out.write("-" * 50 + "\n")
    out.write(f"{'total':<20} | {total:>8.0f}\n")
    return out.getvalue()
