"""Multithreaded elastic buffers: the paper's central primitives (§III, §IV-A).

* :class:`FullMEB` — the baseline of Fig. 4: one 2-slot elastic buffer per
  thread plus an output arbiter and mux.  ``2·S`` data slots for ``S``
  threads; every thread can always overlap a stall with a refill, so a
  lone active thread keeps 100% throughput no matter what the other
  threads do.

* :class:`ReducedMEB` — the proposed buffer of Fig. 6: one main register
  per thread plus a **single auxiliary register dynamically shared by all
  threads** (``S + 1`` slots).  Each thread runs the 3-state
  EMPTY/HALF/FULL elastic control FSM; a 2-state FSM on the shared slot
  guarantees that only one thread is in FULL at a time.  Under uniform
  utilization each active thread still gets ``1/M`` throughput; the only
  degradation (paper §III-A, Fig. 5(b)) is the 50% case when every other
  thread is blocked and the shared slots up to the source are all held by
  a blocked thread.

Both expose the same interface: an upstream :class:`MTChannel` whose
``ready[i]`` they drive and a downstream :class:`MTChannel` whose
``valid[i]``/``data`` they drive.  ``ready[i]`` and the per-thread
occupancies are functions of registered state only, so MEB-to-MEB links
have no backward combinational paths.
"""

from __future__ import annotations

from typing import Any

from repro.core.arbiter import GrantPolicy, RoundRobinArbiter
from repro.core.mtchannel import MTChannel
from repro.kernel.component import Component
from repro.kernel.errors import ProtocolError, SimulationError
from repro.kernel.slots import SeqPlan
from repro.kernel.values import X, as_bool, bools, same_value, state_changed

#: Per-thread elastic control states (paper Fig. 6).
EMPTY = "EMPTY"
HALF = "HALF"
FULL = "FULL"


def _seq_input_thread(values, uvb, uve, urb, path, up_path):
    """Slot-level ``_input_thread``: the enqueueing thread, or ``None``.

    Shared by the Full/Reduced compiled tick captures; keeps the exact
    scalar-path semantics and ordering — X anywhere in the valid vector
    raises first (like ``bools``), then the one-valid-per-cycle
    invariant, then the ready gate.
    """
    valids = values[uvb:uve]
    if X in valids:
        bools(valids)  # raises exactly like the scalar as_bool path
    count = valids.count(True)
    if count == 0:
        return None
    if count > 1:
        raise ProtocolError(
            f"{path}: {count} threads valid on "
            f"{up_path} in one cycle (MT channels carry one)"
        )
    thread = valids.index(True)
    if as_bool(values[urb + thread]):
        return thread
    return None


class _MEBBase(Component):
    """Shared scaffolding: channels, arbiter, output stage, input checks."""

    #: Queues/slots store payloads by reference; grants look only at
    #: handshakes, never inside the data.
    ENSEMBLE_DATA = "opaque"

    def __init__(
        self,
        name: str,
        up: MTChannel,
        down: MTChannel,
        policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
        rotate_on_stall: bool = True,
        latch_style: bool = False,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if up.threads != down.threads:
            raise SimulationError(
                f"{name}: thread-count mismatch {up.threads} vs {down.threads}"
            )
        self.threads = up.threads
        self.up = up
        self.down = down
        self.policy = policy
        # Paper §III: MEBs "can be designed in a modular manner either
        # with regular edge-triggered flip flops or level sensitive
        # latches".  The cycle behaviour is identical; only the storage
        # primitive reported to the cost model changes.
        self.latch_style = latch_style
        self.arbiter = RoundRobinArbiter(self.threads, rotate_on_stall)
        up.connect_consumer(self)
        down.connect_producer(self)
        # Occupancy and per-thread ready are registered; the only
        # combinational inputs are the downstream readies masking the
        # arbiter's request vector.
        self.declare_reads(down.ready)
        # Hot-path caches: the per-thread signal lists are scanned every
        # evaluation, so avoid re-resolving them through the channels.
        self._down_ready_sigs = list(down.ready)
        self._down_valid_sigs = list(down.valid)
        self._up_ready_sigs = list(up.ready)
        self._up_valid_sigs = list(up.valid)
        self._grant: int | None = None

    @property
    def _storage_kind(self) -> str:
        return "latch" if self.latch_style else "ff"

    # -- subclass contract -------------------------------------------------
    def occupancy(self, thread: int) -> int:
        raise NotImplementedError

    def head(self, thread: int) -> Any:
        raise NotImplementedError

    def can_accept(self, thread: int) -> bool:
        raise NotImplementedError

    def _valid_vector(self) -> list[bool]:
        """Per-thread occupancy > 0, in one pass (hot path).

        Subclasses install a storage-specific fast variant from their
        constructor — but only when the scalar hooks are not overridden
        further down, so ablation subclasses that tweak ``occupancy`` /
        ``can_accept`` keep their semantics.
        """
        return [self.occupancy(i) > 0 for i in range(self.threads)]

    def _accept_vector(self) -> list[bool]:
        """Per-thread can_accept, in one pass (hot path)."""
        return [self.can_accept(i) for i in range(self.threads)]

    # -- common occupancy helpers ------------------------------------------
    def total_occupancy(self) -> int:
        return sum(self.occupancy(i) for i in range(self.threads))

    def occupied_threads(self) -> list[int]:
        return [i for i in range(self.threads) if self.occupancy(i) > 0]

    # -- evaluation ----------------------------------------------------------
    def combinational(self) -> None:
        valids = self._valid_vector()
        readies = [as_bool(sig.value) for sig in self._down_ready_sigs]
        requests = self.policy.requests(valids, readies)
        grant = self.arbiter.grant(requests)
        self._grant = grant
        for i, sig in enumerate(self._down_valid_sigs):
            sig.set(grant == i)
        for sig, accept in zip(self._up_ready_sigs, self._accept_vector()):
            sig.set(accept)
        self.down.data.set(self.head(grant) if grant is not None else X)

    def compile_comb(self, store):
        """Slot-compiled :meth:`combinational`: batched handshake IO.

        Reads the S downstream readies as one slice, grants through the
        arbiter's index-scan fast path, and writes the S ``valid`` and S
        ``ready`` outputs with one slice compare-and-assign each instead
        of 2S ``Signal.set`` calls — marking the declared readers of a
        block only when it actually changed.  Storage semantics stay
        behind the :meth:`_valid_vector`/:meth:`_accept_vector`/
        :meth:`head` hooks, so Full/Reduced MEBs and their ablation
        subclasses all share this one step.  Bails out (``None`` = engine
        falls back to ``combinational()``) when a subclass replaced the
        combinational logic or the arbiter's grant rule, or when the
        handshake signals did not land on packed slots.
        """
        if type(self).combinational is not _MEBBase.combinational:
            return None
        if type(self.arbiter).grant is not RoundRobinArbiter.grant:
            return None
        layout = self._compile_layout(store)
        if layout is None:
            return None
        (values, dirty, vb, ve, rb, re_, ub, ue, data_slot,
         valid_readers, accept_readers, data_readers) = layout
        valid_vec = self._valid_vector
        accept_vec = self._accept_vector
        head = self.head
        unmasked = self.policy is GrantPolicy.UNMASKED
        masked_only = self.policy is GrantPolicy.MASKED
        grant_fast = self.arbiter.grant_fast
        falses = [False] * self.threads
        unknown = X

        def step() -> bool:
            valids = valid_vec()
            readies = bools(values[rb:re_])
            if unmasked:
                requests = valids
            else:
                requests = [v and r for v, r in zip(valids, readies)]
                if not masked_only and True not in requests:
                    requests = valids
            grant = grant_fast(requests)
            self._grant = grant
            if grant is None:
                new_valid = falses
                new_data = unknown
            else:
                new_valid = falses[:]
                new_valid[grant] = True
                new_data = head(grant)
            changed = False
            if values[vb:ve] != new_valid:
                values[vb:ve] = new_valid
                if valid_readers:
                    dirty.update(valid_readers)
                changed = True
            accepts = accept_vec()
            if values[ub:ue] != accepts:
                values[ub:ue] = accepts
                if accept_readers:
                    dirty.update(accept_readers)
                changed = True
            old = values[data_slot]
            if old is not new_data and not same_value(old, new_data):
                values[data_slot] = new_data
                if data_readers:
                    dirty.update(data_readers)
                changed = True
            return changed

        return step

    def _compile_layout(self, store) -> tuple | None:
        """Resolve the slot/reader plumbing shared by every MEB step."""
        down_valid = store.range_of(self._down_valid_sigs)
        down_ready = store.range_of(self._down_ready_sigs)
        up_ready = store.range_of(self._up_ready_sigs)
        data_slot = store.slot_or_none(self.down.data)
        if None in (down_valid, down_ready, up_ready, data_slot):
            return None
        return (
            store.values,
            store.dirty,
            down_valid[0], down_valid[1],
            down_ready[0], down_ready[1],
            up_ready[0], up_ready[1],
            data_slot,
            store.readers_of(self._down_valid_sigs),
            store.readers_of(self._up_ready_sigs),
            store.readers_of((self.down.data,)),
        )

    def _seq_layout(self, seq):
        """Resolve the capture-side slot layout shared by the MEB plans.

        Returns ``(down_ready, up_valid, up_ready, up_data, watch)`` or
        ``None`` when any handshake signal did not land on store slots.
        """
        store = seq.store
        down_ready = store.range_of(self._down_ready_sigs)
        up_valid = store.range_of(self._up_valid_sigs)
        up_ready = store.range_of(self._up_ready_sigs)
        up_data = store.slot_or_none(self.up.data)
        if None in (down_ready, up_valid, up_ready, up_data):
            return None
        watch = (down_ready, up_valid, up_ready, (up_data, up_data + 1))
        return down_ready, up_valid, up_ready, up_data, watch

    def compile_seq(self, seq):
        """Watch-gated tick plan wrapping the stock capture/commit.

        Valid for any MEB whose ``capture``/``commit`` are the stock
        Full/Reduced implementations — storage-hook overrides (ablation
        variants tweaking ``occupancy``/``can_accept``) keep their
        semantics because the plan calls the methods, not a vectorized
        inline.  The watch set is the union of everything an MEB capture
        may read: the downstream readies (output transfer), the upstream
        valid/ready handshakes and the upstream data (input transfer).
        Subclasses that override capture or commit fall back to the
        legacy per-cycle dispatch (``None``).
        """
        cls = type(self)
        if cls.capture not in (FullMEB.capture, ReducedMEB.capture):
            return None
        if cls.commit not in (FullMEB.commit, ReducedMEB.commit):
            return None
        layout = self._seq_layout(seq)
        if layout is None:
            return None
        capture = self.capture
        return SeqPlan(self, lambda cycle: capture(), self.commit,
                       layout[4])

    def _input_thread(self) -> int | None:
        """The (single) thread transferring in this cycle, with checks."""
        valids = self.up.valids()
        count = valids.count(True)
        if count > 1:
            raise ProtocolError(
                f"{self.path}: {count} threads valid on "
                f"{self.up.path} in one cycle (MT channels carry one)"
            )
        if count:
            thread = valids.index(True)
            if as_bool(self.up.ready[thread].value):
                return thread
        return None

    def _output_transferred(self) -> bool:
        grant = self._grant
        return grant is not None and as_bool(self.down.ready[grant].value)

    def commit(self) -> bool:
        return self.arbiter.commit()

    def reset(self) -> None:
        self.arbiter.reset()
        self._grant = None


class FullMEB(_MEBBase):
    """Baseline MEB: a private 2-slot FIFO per thread (paper Fig. 4)."""

    SLOTS_PER_THREAD = 2

    def __init__(
        self,
        name: str,
        up: MTChannel,
        down: MTChannel,
        policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
        rotate_on_stall: bool = True,
        latch_style: bool = False,
        parent: Component | None = None,
    ):
        super().__init__(name, up, down, policy, rotate_on_stall,
                         latch_style=latch_style, parent=parent)
        # Slot-backed sequential state: the S per-thread queues live in
        # `_sstore[_sq + t]` — a private list until compile_seq re-homes
        # them into the design-wide SeqStore (exactly like Signal's
        # private one-element store before SlotStore re-homing).  The
        # `_queues` property views/updates the same cells.
        self._sstore: list[Any] = [[] for _ in range(self.threads)]
        self._sq = 0
        self._next_queues: list[list[Any]] | None = None
        # Only take the storage-specific fast paths when the scalar
        # hooks are not overridden by a subclass (see _MEBBase).
        if type(self).occupancy is FullMEB.occupancy:
            self._valid_vector = self._fast_valid_vector
        if type(self).can_accept is FullMEB.can_accept:
            self._accept_vector = self._fast_accept_vector

    # -- storage interface ---------------------------------------------------
    @property
    def _queues(self) -> list[list[Any]]:
        sq = self._sq
        return self._sstore[sq:sq + self.threads]

    @_queues.setter
    def _queues(self, queues: list[list[Any]]) -> None:
        sq = self._sq
        self._sstore[sq:sq + self.threads] = queues

    def occupancy(self, thread: int) -> int:
        return len(self._sstore[self._sq + thread])

    def head(self, thread: int) -> Any:
        return self._sstore[self._sq + thread][0]

    def can_accept(self, thread: int) -> bool:
        return len(self._sstore[self._sq + thread]) < self.SLOTS_PER_THREAD

    def _fast_valid_vector(self) -> list[bool]:
        sq = self._sq
        return [bool(q) for q in self._sstore[sq:sq + self.threads]]

    def _fast_accept_vector(self) -> list[bool]:
        sq = self._sq
        capacity = self.SLOTS_PER_THREAD
        return [
            len(q) < capacity for q in self._sstore[sq:sq + self.threads]
        ]

    def compile_comb(self, store):
        """Fully inlined step for plain FullMEBs (no hook indirection).

        Subclasses (ablations, fault injectors) fall back to the generic
        hook-based step of :class:`_MEBBase`, which respects their
        ``occupancy``/``can_accept``/``head`` overrides.
        """
        if type(self) is not FullMEB:
            return super().compile_comb(store)
        if type(self.arbiter).grant is not RoundRobinArbiter.grant:
            return None
        layout = self._compile_layout(store)
        if layout is None:
            return None
        (values, dirty, vb, ve, rb, re_, ub, ue, data_slot,
         valid_readers, accept_readers, data_readers) = layout
        unmasked = self.policy is GrantPolicy.UNMASKED
        masked_only = self.policy is GrantPolicy.MASKED
        grant_fast = self.arbiter.grant_fast
        falses = [False] * self.threads
        unknown = X
        capacity = self.SLOTS_PER_THREAD
        # Compile-time binding of the (possibly re-homed) queue block;
        # rebuild()/reset() recompiles, so the binding stays fresh.
        sstore = self._sstore
        sq = self._sq
        sqe = sq + self.threads

        def step() -> bool:
            queues = sstore[sq:sqe]
            readies = bools(values[rb:re_])
            if unmasked:
                requests = [bool(q) for q in queues]
            else:
                requests = [bool(q) and r for q, r in zip(queues, readies)]
                if not masked_only and True not in requests:
                    requests = [bool(q) for q in queues]
            grant = grant_fast(requests)
            self._grant = grant
            if grant is None:
                new_valid = falses
                new_data = unknown
            else:
                new_valid = falses[:]
                new_valid[grant] = True
                new_data = queues[grant][0]
            changed = False
            if values[vb:ve] != new_valid:
                values[vb:ve] = new_valid
                if valid_readers:
                    dirty.update(valid_readers)
                changed = True
            accepts = [len(q) < capacity for q in queues]
            if values[ub:ue] != accepts:
                values[ub:ue] = accepts
                if accept_readers:
                    dirty.update(accept_readers)
                changed = True
            old = values[data_slot]
            if old is not new_data and not same_value(old, new_data):
                values[data_slot] = new_data
                if data_readers:
                    dirty.update(data_readers)
                changed = True
            return changed

        return step

    def compile_seq(self, seq):
        """Columnar tick plan for plain FullMEBs: re-homed queues,
        slot-level transfer detection, delta-gated by the watch set.

        Subclasses fall back to the generic watch-gated plan of
        :class:`_MEBBase` (which respects their storage-hook overrides)
        or to legacy dispatch.
        """
        if type(self) is not FullMEB:
            return super().compile_seq(seq)
        layout = self._seq_layout(seq)
        if layout is None:
            return super().compile_seq(seq)
        down_ready, up_valid, up_ready, up_data, watch = layout
        # Re-home the per-thread queues into the columnar store,
        # carrying the live values across (state-preserving rebuild).
        threads = self.threads
        sq = seq.alloc(self._sstore[self._sq:self._sq + threads])
        self._sstore = seq.values
        self._sq = sq
        svalues = seq.values
        sqe = sq + threads
        values = seq.store.values
        drb = down_ready[0]
        uvb, uve = up_valid
        urb = up_ready[0]
        arb = self.arbiter
        capacity = self.SLOTS_PER_THREAD
        path = self.path
        up_path = self.up.path
        input_thread = _seq_input_thread

        def capture(cycle) -> None:
            grant = self._grant
            transferred = grant is not None and as_bool(values[drb + grant])
            enq = input_thread(values, uvb, uve, urb, path, up_path)
            if not transferred and enq is None:
                # Idle cycle: nothing moves, keep the queues as they are.
                self._next_queues = None
                arb.note(grant, False)
                return
            queues = svalues[sq:sqe]
            if transferred:
                queues[grant] = queues[grant][1:]
            if enq is not None:
                if len(queues[enq]) >= capacity:
                    raise SimulationError(
                        f"{path}: enqueue into full per-thread EB {enq}"
                    )
                queues[enq] = queues[enq] + [values[up_data]]
            self._next_queues = queues
            arb.note(grant, transferred)

        def commit() -> bool:
            changed = arb.commit()
            nxt = self._next_queues
            if nxt is not None:
                changed = changed or state_changed(svalues[sq:sqe], nxt)
                svalues[sq:sqe] = nxt
                self._next_queues = None
            return changed

        return SeqPlan(self, capture, commit, watch, state=((sq, sqe),))

    def thread_state(self, thread: int) -> str:
        return (EMPTY, HALF, FULL)[len(self._queues[thread])]

    def contents(self, thread: int) -> list[Any]:
        return list(self._queues[thread])

    @property
    def total_slots(self) -> int:
        return self.SLOTS_PER_THREAD * self.threads

    # -- evaluation ------------------------------------------------------------
    def capture(self) -> None:
        transferred = self._output_transferred()
        enq = self._input_thread()
        if not transferred and enq is None:
            # Idle cycle: nothing moves, keep the queues as they are.
            self._next_queues = None
            self.arbiter.note(self._grant, False)
            return
        # Copy-on-write: only the touched per-thread queues get fresh
        # list objects; untouched ones share state with the current
        # cycle (capture/commit never mutate a queue in place).
        queues = list(self._queues)
        if transferred:
            assert self._grant is not None
            queues[self._grant] = queues[self._grant][1:]
        if enq is not None:
            if len(queues[enq]) >= self.SLOTS_PER_THREAD:
                raise SimulationError(
                    f"{self.path}: enqueue into full per-thread EB {enq}"
                )
            queues[enq] = queues[enq] + [self.up.data.value]
        self._next_queues = queues
        self.arbiter.note(self._grant, transferred)

    def commit(self) -> bool:
        changed = super().commit()
        if self._next_queues is not None:
            changed = changed or state_changed(self._queues, self._next_queues)
            self._queues = self._next_queues
            self._next_queues = None
        return changed

    def reset(self) -> None:
        super().reset()
        self._queues = [[] for _ in range(self.threads)]
        self._next_queues = None

    # -- cost model --------------------------------------------------------------
    def area_items(self) -> list[tuple[str, int, int]]:
        width = self.down.width
        s = self.threads
        items: list[tuple[str, int, int]] = [
            (self._storage_kind, 2 * s, width),  # two data slots per thread
            ("mux2", s, width),          # head select inside each EB
            ("mux2", s - 1, width),      # output thread mux tree
            ("ff", s, 2),                # per-thread occupancy FSM
            ("lut", 3 * s, 1),           # per-thread handshake control
        ]
        items.extend(self.arbiter.area_items())
        return items


class ReducedMEB(_MEBBase):
    """The proposed MEB: one slot per thread + one shared slot (Fig. 6).

    State per thread: ``main[i]`` register and the EMPTY/HALF/FULL FSM.
    State for the shared slot: item + owning thread (the FSM's
    ``Empty``/``Full``).  The invariant tying them together — thread *i*
    is FULL iff it owns the occupied shared slot — is asserted after every
    commit.
    """

    def __init__(
        self,
        name: str,
        up: MTChannel,
        down: MTChannel,
        policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
        rotate_on_stall: bool = True,
        latch_style: bool = False,
        parent: Component | None = None,
    ):
        super().__init__(name, up, down, policy, rotate_on_stall,
                         latch_style=latch_style, parent=parent)
        # Slot-backed sequential state, laid out columnar as
        # [main×S][state×S][shared_item][shared_owner] in `_sstore`
        # starting at `_sq` — private until compile_seq re-homes the
        # block into the design-wide SeqStore.  The `_main`/`_state`/
        # `_shared_*` properties view/update the same cells.
        self._sstore: list[Any] = (
            [X] * self.threads + [EMPTY] * self.threads + [X, None]
        )
        self._sq = 0
        self._next: (
            tuple[list[Any], list[str], Any, int | None] | None
        ) = None
        # Only take the storage-specific fast paths when the scalar
        # hooks are not overridden by a subclass (see _MEBBase).
        if type(self).occupancy is ReducedMEB.occupancy:
            self._valid_vector = self._fast_valid_vector
        if type(self).can_accept is ReducedMEB.can_accept:
            self._accept_vector = self._fast_accept_vector

    # -- storage interface ---------------------------------------------------
    @property
    def _main(self) -> list[Any]:
        b = self._sq
        return self._sstore[b:b + self.threads]

    @_main.setter
    def _main(self, main: list[Any]) -> None:
        b = self._sq
        self._sstore[b:b + self.threads] = main

    @property
    def _state(self) -> list[str]:
        b = self._sq + self.threads
        return self._sstore[b:b + self.threads]

    @_state.setter
    def _state(self, state: list[str]) -> None:
        b = self._sq + self.threads
        self._sstore[b:b + self.threads] = state

    @property
    def _shared_item(self) -> Any:
        return self._sstore[self._sq + 2 * self.threads]

    @_shared_item.setter
    def _shared_item(self, item: Any) -> None:
        self._sstore[self._sq + 2 * self.threads] = item

    @property
    def _shared_owner(self) -> int | None:
        return self._sstore[self._sq + 2 * self.threads + 1]

    @_shared_owner.setter
    def _shared_owner(self, owner: int | None) -> None:
        self._sstore[self._sq + 2 * self.threads + 1] = owner

    @property
    def shared_full(self) -> bool:
        return self._shared_owner is not None

    @property
    def shared_owner(self) -> int | None:
        return self._shared_owner

    def thread_state(self, thread: int) -> str:
        return self._sstore[self._sq + self.threads + thread]

    def occupancy(self, thread: int) -> int:
        return {EMPTY: 0, HALF: 1, FULL: 2}[
            self._sstore[self._sq + self.threads + thread]
        ]

    def head(self, thread: int) -> Any:
        return self._sstore[self._sq + thread]

    def can_accept(self, thread: int) -> bool:
        # Paper §IV-A: EMPTY threads always accept (into their main
        # register); HALF threads accept only while the shared slot is
        # free (they would claim it and go FULL).
        state = self._sstore[self._sq + self.threads + thread]
        if state == EMPTY:
            return True
        if state == HALF:
            return not self.shared_full
        return False

    def _fast_valid_vector(self) -> list[bool]:
        return [s != EMPTY for s in self._state]

    def _fast_accept_vector(self) -> list[bool]:
        shared_free = self._shared_owner is None
        return [
            s == EMPTY or (s == HALF and shared_free) for s in self._state
        ]

    def compile_comb(self, store):
        """Fully inlined step for plain ReducedMEBs (see FullMEB's)."""
        if type(self) is not ReducedMEB:
            return super().compile_comb(store)
        if type(self.arbiter).grant is not RoundRobinArbiter.grant:
            return None
        layout = self._compile_layout(store)
        if layout is None:
            return None
        (values, dirty, vb, ve, rb, re_, ub, ue, data_slot,
         valid_readers, accept_readers, data_readers) = layout
        unmasked = self.policy is GrantPolicy.UNMASKED
        masked_only = self.policy is GrantPolicy.MASKED
        grant_fast = self.arbiter.grant_fast
        falses = [False] * self.threads
        unknown = X
        empty = EMPTY
        half = HALF
        # Compile-time binding of the (possibly re-homed) state block;
        # rebuild()/reset() recompiles, so the binding stays fresh.
        sstore = self._sstore
        mb = self._sq
        sb = mb + self.threads
        se = sb + self.threads
        ob = se + 1

        def step() -> bool:
            state = sstore[sb:se]
            readies = bools(values[rb:re_])
            if unmasked:
                requests = [s != empty for s in state]
            else:
                requests = [
                    s != empty and r for s, r in zip(state, readies)
                ]
                if not masked_only and True not in requests:
                    requests = [s != empty for s in state]
            grant = grant_fast(requests)
            self._grant = grant
            if grant is None:
                new_valid = falses
                new_data = unknown
            else:
                new_valid = falses[:]
                new_valid[grant] = True
                new_data = sstore[mb + grant]
            changed = False
            if values[vb:ve] != new_valid:
                values[vb:ve] = new_valid
                if valid_readers:
                    dirty.update(valid_readers)
                changed = True
            shared_free = sstore[ob] is None
            accepts = [
                s == empty or (s == half and shared_free) for s in state
            ]
            if values[ub:ue] != accepts:
                values[ub:ue] = accepts
                if accept_readers:
                    dirty.update(accept_readers)
                changed = True
            old = values[data_slot]
            if old is not new_data and not same_value(old, new_data):
                values[data_slot] = new_data
                if data_readers:
                    dirty.update(data_readers)
                changed = True
            return changed

        return step

    def compile_seq(self, seq):
        """Columnar tick plan for plain ReducedMEBs (see FullMEB's)."""
        if type(self) is not ReducedMEB:
            return super().compile_seq(seq)
        layout = self._seq_layout(seq)
        if layout is None:
            return super().compile_seq(seq)
        down_ready, up_valid, up_ready, up_data, watch = layout
        # Re-home [main×S][state×S][shared_item][shared_owner].
        threads = self.threads
        block = self._sstore[self._sq:self._sq + 2 * threads + 2]
        mb = seq.alloc(block)
        self._sstore = seq.values
        self._sq = mb
        svalues = seq.values
        sb = mb + threads
        se = sb + threads
        ib = se
        ob = se + 1
        values = seq.store.values
        drb = down_ready[0]
        uvb, uve = up_valid
        urb = up_ready[0]
        arb = self.arbiter
        path = self.path
        up_path = self.up.path
        input_thread = _seq_input_thread

        def capture(cycle) -> None:
            grant = self._grant
            transferred = grant is not None and as_bool(values[drb + grant])
            enq = input_thread(values, uvb, uve, urb, path, up_path)
            if not transferred and enq is None:
                # Idle cycle: no dequeue, no enqueue, state is untouched.
                self._next = None
                arb.note(grant, False)
                return
            main = svalues[mb:sb]
            state = svalues[sb:se]
            shared_item = svalues[ib]
            shared_owner = svalues[ob]

            if transferred:
                g = grant
                if state[g] == FULL:
                    # Refill the main register from the shared slot (see
                    # the legacy capture for the paper argument).
                    if shared_owner != g:
                        raise SimulationError(
                            f"{path}: FULL thread {g} does not own the "
                            f"shared slot (owner={shared_owner})"
                        )
                    main[g] = shared_item
                    shared_item, shared_owner = X, None
                    state[g] = HALF
                elif state[g] == HALF:
                    if enq == g:
                        # Simultaneous dequeue+enqueue refills directly.
                        main[g] = values[up_data]
                        enq = None
                    else:
                        main[g] = X
                        state[g] = EMPTY
                else:  # pragma: no cover - grant implies occupancy
                    raise SimulationError(f"{path}: granted EMPTY thread {g}")

            if enq is not None:
                if state[enq] == EMPTY:
                    main[enq] = values[up_data]
                    state[enq] = HALF
                elif state[enq] == HALF:
                    if shared_owner is not None:
                        raise SimulationError(
                            f"{path}: thread {enq} claimed an occupied "
                            f"shared slot"
                        )
                    shared_item = values[up_data]
                    shared_owner = enq
                    state[enq] = FULL
                else:
                    raise SimulationError(
                        f"{path}: enqueue into FULL thread {enq}"
                    )

            self._next = (main, state, shared_item, shared_owner)
            arb.note(grant, transferred)

        check_invariants = self._check_invariants

        def commit() -> bool:
            changed = arb.commit()
            nxt = self._next
            if nxt is not None:
                changed = changed or state_changed(
                    (svalues[mb:sb], svalues[sb:se], svalues[ib],
                     svalues[ob]),
                    nxt,
                )
                svalues[mb:sb] = nxt[0]
                svalues[sb:se] = nxt[1]
                svalues[ib] = nxt[2]
                svalues[ob] = nxt[3]
                self._next = None
            check_invariants()
            return changed

        return SeqPlan(self, capture, commit, watch, state=((mb, ob + 1),))

    def contents(self, thread: int) -> list[Any]:
        state = self._state[thread]
        if state == EMPTY:
            return []
        if state == HALF:
            return [self._main[thread]]
        return [self._main[thread], self._shared_item]

    @property
    def total_slots(self) -> int:
        return self.threads + 1

    # -- evaluation ------------------------------------------------------------
    def capture(self) -> None:
        transferred = self._output_transferred()
        enq = self._input_thread()
        if not transferred and enq is None:
            # Idle cycle: no dequeue, no enqueue, state is untouched.
            self._next = None
            self.arbiter.note(self._grant, False)
            return
        main = list(self._main)
        state = list(self._state)
        shared_item = self._shared_item
        shared_owner = self._shared_owner

        if transferred:
            g = self._grant
            assert g is not None
            if state[g] == FULL:
                # Refill the main register from the shared slot; the slot
                # itself frees up.  No thread can write the shared slot in
                # this same cycle because ready-for-HALF required it free
                # at the (registered) start of the cycle — exactly the
                # paper's "the shared buffer cannot receive a new word in
                # the same cycle".
                if shared_owner != g:
                    raise SimulationError(
                        f"{self.path}: FULL thread {g} does not own the "
                        f"shared slot (owner={shared_owner})"
                    )
                main[g] = shared_item
                shared_item, shared_owner = X, None
                state[g] = HALF
            elif state[g] == HALF:
                if enq == g:
                    # Simultaneous dequeue+enqueue: the freed main register
                    # takes the new word directly; state stays HALF.
                    main[g] = self.up.data.value
                    enq = None
                else:
                    main[g] = X
                    state[g] = EMPTY
            else:  # pragma: no cover - grant implies occupancy
                raise SimulationError(f"{self.path}: granted EMPTY thread {g}")

        if enq is not None:
            if state[enq] == EMPTY:
                main[enq] = self.up.data.value
                state[enq] = HALF
            elif state[enq] == HALF:
                if shared_owner is not None:
                    raise SimulationError(
                        f"{self.path}: thread {enq} claimed an occupied "
                        f"shared slot"
                    )
                shared_item = self.up.data.value
                shared_owner = enq
                state[enq] = FULL
            else:
                raise SimulationError(
                    f"{self.path}: enqueue into FULL thread {enq}"
                )

        self._next = (main, state, shared_item, shared_owner)
        self.arbiter.note(self._grant, transferred)

    def commit(self) -> bool:
        changed = super().commit()
        if self._next is not None:
            changed = changed or state_changed(
                (self._main, self._state, self._shared_item,
                 self._shared_owner),
                self._next,
            )
            self._main, self._state, self._shared_item, self._shared_owner = (
                self._next
            )
            self._next = None
        self._check_invariants()
        return changed

    def _check_invariants(self) -> None:
        # Hot path: C-speed count/index scans; diagnostics are built
        # only on the failing paths.
        state = self._state
        fulls = state.count(FULL)
        if fulls == 0:
            if self._shared_owner is not None:
                raise SimulationError(
                    f"{self.path}: shared slot owned by "
                    f"{self._shared_owner} but no thread is FULL"
                )
            return
        if fulls > 1:
            full_threads = [
                i for i in range(self.threads) if state[i] == FULL
            ]
            raise SimulationError(
                f"{self.path}: threads {full_threads} simultaneously FULL"
            )
        full_thread = state.index(FULL)
        if self._shared_owner != full_thread:
            raise SimulationError(
                f"{self.path}: FULL thread {full_thread} but shared "
                f"owner is {self._shared_owner}"
            )

    def reset(self) -> None:
        super().reset()
        self._main = [X] * self.threads
        self._state = [EMPTY] * self.threads
        self._shared_item = X
        self._shared_owner = None
        self._next = None

    # -- cost model --------------------------------------------------------------
    def area_items(self) -> list[tuple[str, int, int]]:
        width = self.down.width
        s = self.threads
        items: list[tuple[str, int, int]] = [
            (self._storage_kind, s + 1, width),  # S mains + shared slot
            ("mux2", s, width),          # refill path main[i] <- shared
            ("mux2", s - 1, width),      # output thread mux tree
            ("ff", s, 2),                # per-thread EMPTY/HALF/FULL FSM
            ("ff", 1, 1),                # shared-slot FSM
            ("lut", 4 * s + 2, 1),       # goFull/goHalf aggregation + control
        ]
        items.extend(self.arbiter.area_items())
        return items
