"""Multithreaded elastic control operators (paper §IV-B, Fig. 7).

Each operator replicates the handshake logic of its single-thread
counterpart once per thread, exactly as the paper describes ("the
handshake signals of both inputs are first gathered per thread and then
connected to the baseline single-thread join and fork operators"), while
the data path stays shared.

The M-Merge additionally arbitrates *between paths* when two paths present
different threads in the same cycle — a situation that arises as soon as
more than one thread is in flight and that the output channel's
one-valid-per-cycle invariant forbids from passing through unfiltered.
The paper's figure elides this; DESIGN.md §5 records the decision.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.arbiter import RoundRobinArbiter
from repro.core.mtchannel import MTChannel, one_hot_thread
from repro.kernel.component import Component
from repro.kernel.errors import ProtocolError, SimulationError
from repro.kernel.values import X, as_bool, bools, same_value


def _check_same_threads(channels: Sequence[MTChannel], who: str) -> int:
    threads = {ch.threads for ch in channels}
    if len(threads) != 1:
        raise SimulationError(f"{who}: thread-count mismatch {sorted(threads)}")
    return threads.pop()


class MJoin(Component):
    """Per-thread join of N multithreaded channels (Fig. 7(a)).

    Thread *t* transfers only in cycles where **every** input presents
    thread *t*; upstream MEBs running the fallback grant policy converge
    on a common thread during the settle phase (see
    :mod:`repro.core.arbiter`).
    """

    #: ``combine`` builds a new payload out of N input payloads (tuples
    #: by default) — rows would nest, so ensembles fall back to serial.
    ENSEMBLE_DATA = "unsafe"

    def __init__(
        self,
        name: str,
        inputs: Sequence[MTChannel],
        out: MTChannel,
        combine: Callable[..., Any] | None = None,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(inputs) < 2:
            raise ValueError("MJoin needs at least two inputs")
        self.threads = _check_same_threads([*inputs, out], name)
        self.inputs = list(inputs)
        self.out = out
        self._combine = combine if combine is not None else lambda *xs: tuple(xs)
        for ch in self.inputs:
            ch.connect_consumer(self)
            self.declare_reads(ch.valid, ch.data)
        out.connect_producer(self)
        self.declare_reads(out.ready)

    def combinational(self) -> None:
        valids = [
            [as_bool(ch.valid[t].value) for t in range(self.threads)]
            for ch in self.inputs
        ]
        joined_thread: int | None = None
        for t in range(self.threads):
            joined = all(v[t] for v in valids)
            self.out.valid[t].set(joined)
            if joined:
                joined_thread = t
        if joined_thread is not None:
            self.out.data.set(
                self._combine(*[ch.data.value for ch in self.inputs])
            )
        else:
            self.out.data.set(X)
        for k, ch in enumerate(self.inputs):
            for t in range(self.threads):
                others = all(
                    v[t] for j, v in enumerate(valids) if j != k
                )
                ch.ready[t].set(
                    as_bool(self.out.ready[t].value) and others
                )

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", 2 * len(self.inputs) * self.threads, 1)]


class MFork(Component):
    """Per-thread lazy fork of one MT channel to N consumers (Fig. 7(b))."""

    #: Data is copied to the outputs by reference, never inspected.
    ENSEMBLE_DATA = "opaque"

    def __init__(
        self,
        name: str,
        inp: MTChannel,
        outputs: Sequence[MTChannel],
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(outputs) < 2:
            raise ValueError("MFork needs at least two outputs")
        self.threads = _check_same_threads([inp, *outputs], name)
        self.inp = inp
        self.outputs = list(outputs)
        inp.connect_consumer(self)
        self.declare_reads(inp.valid, inp.data)
        for ch in self.outputs:
            ch.connect_producer(self)
            self.declare_reads(ch.ready)

    def combinational(self) -> None:
        readies = [
            [as_bool(ch.ready[t].value) for t in range(self.threads)]
            for ch in self.outputs
        ]
        data = self.inp.data.value
        active = self.inp.active_thread()
        for t in range(self.threads):
            in_valid = as_bool(self.inp.valid[t].value)
            self.inp.ready[t].set(all(r[t] for r in readies))
            for k, ch in enumerate(self.outputs):
                others = all(
                    r[t] for j, r in enumerate(readies) if j != k
                )
                ch.valid[t].set(in_valid and others)
        for ch in self.outputs:
            ch.data.set(data if active is not None else X)

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", 2 * len(self.outputs) * self.threads, 1)]


class MBranch(Component):
    """Condition-directed routing of an MT channel (Fig. 7(c)).

    The active ``valid(i)`` bit of the input channel identifies which
    thread the condition belongs to; the selected output's thread-*i*
    handshake is wired through, all other outputs stay silent.
    """

    #: Data is inspected through ``selector``/``route``, which ensemble
    #: execution rebinds: the selector becomes an all-lanes-must-agree
    #: vote (control stays shared), the route a lane-wise map.
    ENSEMBLE_DATA = "lift"

    def __init__(
        self,
        name: str,
        inp: MTChannel,
        outputs: Sequence[MTChannel],
        selector: Callable[[Any], int | bool],
        route: Callable[[Any], Any] | None = None,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(outputs) < 2:
            raise ValueError("MBranch needs at least two outputs")
        self.threads = _check_same_threads([inp, *outputs], name)
        self.inp = inp
        self.outputs = list(outputs)
        self._selector = selector
        self._route = route if route is not None else lambda d: d
        inp.connect_consumer(self)
        self.declare_reads(inp.valid, inp.data)
        for ch in self.outputs:
            ch.connect_producer(self)
            self.declare_reads(ch.ready)

    def combinational(self) -> None:
        # Single assignment per signal per evaluation: compute the routing
        # decision first, then drive every output exactly once, so the
        # event engine sees only net transitions.
        active = self.inp.active_thread()
        sel: int | None = None
        if active is not None:
            data = self.inp.data.value
            sel = int(self._selector(data))
            if not 0 <= sel < len(self.outputs):
                raise ProtocolError(
                    f"{self.path}: selector returned {sel!r} for "
                    f"{len(self.outputs)} outputs"
                )
        for k, ch in enumerate(self.outputs):
            take = k == sel
            for t in range(self.threads):
                ch.valid[t].set(take and t == active)
            ch.data.set(self._route(data) if take else X)
        for t in range(self.threads):
            if t == active:
                assert sel is not None
                target = self.outputs[sel]
                self.inp.ready[t].set(as_bool(target.ready[t].value))
            else:
                self.inp.ready[t].set(False)

    def compile_comb(self, store):
        """Slot-compiled routing: whole valid/ready vectors per slice."""
        if type(self).combinational is not MBranch.combinational:
            return None
        in_valid = store.range_of(self.inp.valid)
        in_ready = store.range_of(self.inp.ready)
        in_data = store.slot_or_none(self.inp.data)
        out_valid = [store.range_of(ch.valid) for ch in self.outputs]
        out_ready = [store.range_of(ch.ready) for ch in self.outputs]
        out_data = [store.slot_or_none(ch.data) for ch in self.outputs]
        if (
            None in (in_valid, in_ready, in_data)
            or None in out_valid
            or None in out_ready
            or None in out_data
        ):
            return None
        values = store.values
        dirty = store.dirty
        out_valid_readers = [
            store.readers_of(ch.valid) for ch in self.outputs
        ]
        out_data_readers = [
            store.readers_of((ch.data,)) for ch in self.outputs
        ]
        in_ready_readers = store.readers_of(self.inp.ready)
        ivb, ive = in_valid
        irb, ire = in_ready
        selector = self._selector
        route = self._route
        n_out = len(self.outputs)
        falses = [False] * self.threads
        inp_path = self.inp.path

        def step() -> bool:
            active = one_hot_thread(bools(values[ivb:ive]), inp_path)
            if active is None:
                sel = None
            else:
                data = values[in_data]
                sel = int(selector(data))
                if not 0 <= sel < n_out:
                    raise ProtocolError(
                        f"{self.path}: selector returned {sel!r} for "
                        f"{n_out} outputs"
                    )
            changed = False
            for k in range(n_out):
                if k == sel:
                    new_valid = falses[:]
                    new_valid[active] = True
                    new_data = route(data)
                else:
                    new_valid = falses
                    new_data = X
                vb, ve = out_valid[k]
                if values[vb:ve] != new_valid:
                    values[vb:ve] = new_valid
                    readers = out_valid_readers[k]
                    if readers:
                        dirty.update(readers)
                    changed = True
                data_slot = out_data[k]
                old = values[data_slot]
                if old is not new_data and not same_value(old, new_data):
                    values[data_slot] = new_data
                    readers = out_data_readers[k]
                    if readers:
                        dirty.update(readers)
                    changed = True
            if sel is None:
                new_ready = falses
            else:
                new_ready = falses[:]
                new_ready[active] = as_bool(
                    values[out_ready[sel][0] + active]
                )
            if values[irb:ire] != new_ready:
                values[irb:ire] = new_ready
                if in_ready_readers:
                    dirty.update(in_ready_readers)
                changed = True
            return changed

        return step

    def ensemble_lift(self, ctx) -> None:
        if getattr(self._selector, "__ensemble_lifted__", False):
            return
        self._selector = ctx.lift_selector(self._selector, self.path)
        self._route = ctx.lift_route(self._route)

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", 2 * len(self.outputs) * self.threads, 1)]


class MMerge(Component):
    """Merge mutually exclusive per-thread paths into one MT channel
    (Fig. 7(d)).

    Per thread, at most one path carries data (guaranteed by the paired
    M-Branch).  Across threads, several paths may be active in the same
    cycle with *different* threads; a path arbiter picks one so the output
    stays one-valid-per-cycle, and the losing path simply keeps its data
    (its ready stays low).
    """

    #: Data moves from the winning path by reference, never inspected.
    ENSEMBLE_DATA = "opaque"

    def __init__(
        self,
        name: str,
        inputs: Sequence[MTChannel],
        out: MTChannel,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(inputs) < 2:
            raise ValueError("MMerge needs at least two inputs")
        self.threads = _check_same_threads([*inputs, out], name)
        self.inputs = list(inputs)
        self.out = out
        self.path_arbiter = RoundRobinArbiter(len(inputs), rotate_on_stall=True)
        for ch in self.inputs:
            ch.connect_consumer(self)
            self.declare_reads(ch.valid, ch.data)
        out.connect_producer(self)
        self.declare_reads(out.ready)
        self._winner: int | None = None

    def combinational(self) -> None:
        actives = [ch.active_thread() for ch in self.inputs]
        # Same thread on two paths would mean the branch duplicated a token.
        seen: dict[int, int] = {}
        for k, t in enumerate(actives):
            if t is None:
                continue
            if t in seen:
                raise ProtocolError(
                    f"{self.path}: thread {t} active on paths {seen[t]} and "
                    f"{k} simultaneously"
                )
            seen[t] = k
        requests = [t is not None for t in actives]
        winner = self.path_arbiter.grant(requests)
        self._winner = winner
        for t in range(self.threads):
            self.out.valid[t].set(
                winner is not None and actives[winner] == t
            )
        self.out.data.set(
            self.inputs[winner].data.value if winner is not None else X
        )
        for k, ch in enumerate(self.inputs):
            for t in range(self.threads):
                take = (
                    winner == k
                    and actives[k] == t
                    and as_bool(self.out.ready[t].value)
                )
                ch.ready[t].set(take)

    def compile_comb(self, store):
        """Slot-compiled path merge: per-path vectors via slices."""
        if type(self).combinational is not MMerge.combinational:
            return None
        if type(self.path_arbiter).grant is not RoundRobinArbiter.grant:
            return None
        in_valid = [store.range_of(ch.valid) for ch in self.inputs]
        in_ready = [store.range_of(ch.ready) for ch in self.inputs]
        in_data = [store.slot_or_none(ch.data) for ch in self.inputs]
        out_valid = store.range_of(self.out.valid)
        out_ready = store.range_of(self.out.ready)
        out_data = store.slot_or_none(self.out.data)
        if (
            None in (out_valid, out_ready, out_data)
            or None in in_valid
            or None in in_ready
            or None in in_data
        ):
            return None
        values = store.values
        dirty = store.dirty
        out_valid_readers = store.readers_of(self.out.valid)
        out_data_readers = store.readers_of((self.out.data,))
        in_ready_readers = [
            store.readers_of(ch.ready) for ch in self.inputs
        ]
        ovb, ove = out_valid
        orb, ore = out_ready
        grant_fast = self.path_arbiter.grant_fast
        n_in = len(self.inputs)
        in_paths = [ch.path for ch in self.inputs]
        falses = [False] * self.threads

        def step() -> bool:
            actives = [
                one_hot_thread(
                    bools(values[in_valid[k][0]:in_valid[k][1]]),
                    in_paths[k],
                )
                for k in range(n_in)
            ]
            seen: dict[int, int] = {}
            for k, thread in enumerate(actives):
                if thread is None:
                    continue
                if thread in seen:
                    raise ProtocolError(
                        f"{self.path}: thread {thread} active on paths "
                        f"{seen[thread]} and {k} simultaneously"
                    )
                seen[thread] = k
            winner = grant_fast([t is not None for t in actives])
            self._winner = winner
            if winner is None:
                new_valid = falses
                new_data = X
            else:
                new_valid = falses[:]
                new_valid[actives[winner]] = True
                new_data = values[in_data[winner]]
            changed = False
            if values[ovb:ove] != new_valid:
                values[ovb:ove] = new_valid
                if out_valid_readers:
                    dirty.update(out_valid_readers)
                changed = True
            old = values[out_data]
            if old is not new_data and not same_value(old, new_data):
                values[out_data] = new_data
                if out_data_readers:
                    dirty.update(out_data_readers)
                changed = True
            # Like the interpreted path, consult out.ready only for the
            # winning thread (an un-granted thread's ready may be X
            # without consequence).
            take_thread = None
            if winner is not None:
                thread = actives[winner]
                if as_bool(values[orb + thread]):
                    take_thread = thread
            for k in range(n_in):
                if winner == k and take_thread is not None:
                    new_ready = falses[:]
                    new_ready[take_thread] = True
                else:
                    new_ready = falses
                rb, re_ = in_ready[k]
                if values[rb:re_] != new_ready:
                    values[rb:re_] = new_ready
                    readers = in_ready_readers[k]
                    if readers:
                        dirty.update(readers)
                    changed = True
            return changed

        return step

    def capture(self) -> None:
        transferred = False
        if self._winner is not None:
            t = self.inputs[self._winner].active_thread()
            if t is not None and as_bool(self.out.ready[t].value):
                transferred = True
        self.path_arbiter.note(self._winner, transferred)

    def commit(self) -> bool:
        return self.path_arbiter.commit()

    def reset(self) -> None:
        self.path_arbiter.reset()
        self._winner = None

    def area_items(self) -> list[tuple[str, int, int]]:
        n = len(self.inputs)
        width = self.out.width
        items: list[tuple[str, int, int]] = [
            ("mux2", n - 1, width),
            ("lut", 2 * n * self.threads, 1),
        ]
        items.extend(self.path_arbiter.area_items())
        return items
