"""The paper's core contribution: multithreaded elastic primitives.

Multithreaded channels (:class:`MTChannel`), the full and reduced
multithreaded elastic buffers (:class:`FullMEB`, :class:`ReducedMEB`),
the per-thread control operators (:class:`MJoin`, :class:`MFork`,
:class:`MBranch`, :class:`MMerge`), the synchronization barrier
(:class:`Barrier`), shared function units and traffic endpoints.
"""

from repro.core.arbiter import FixedPriorityArbiter, GrantPolicy, RoundRobinArbiter
from repro.core.barrier import FREE, IDLE, WAIT, Barrier
from repro.core.endpoints import MTSink, MTSource
from repro.core.function import MTContextFunction, MTFunction, MTVariableLatencyUnit
from repro.core.meb import EMPTY, FULL, HALF, FullMEB, ReducedMEB
from repro.core.monitor import MTMonitor
from repro.core.mtchannel import MTChannel, mt_channels, trace_mt_channel
from repro.core.operators import MBranch, MFork, MJoin, MMerge
from repro.core.structural import StructuralFullMEB

__all__ = [
    "Barrier",
    "EMPTY",
    "FREE",
    "FULL",
    "FixedPriorityArbiter",
    "FullMEB",
    "GrantPolicy",
    "HALF",
    "IDLE",
    "MBranch",
    "MFork",
    "MJoin",
    "MMerge",
    "MTChannel",
    "MTContextFunction",
    "MTFunction",
    "MTMonitor",
    "MTSink",
    "MTSource",
    "MTVariableLatencyUnit",
    "ReducedMEB",
    "RoundRobinArbiter",
    "StructuralFullMEB",
    "WAIT",
    "mt_channels",
    "trace_mt_channel",
]
