"""Multithreaded traffic endpoints: sources and sinks for MT channels.

An :class:`MTSource` holds an independent item stream per thread and
injects at most one thread per cycle (the MT channel carries one), picking
among pending threads with the same round-robin + downstream-ready masking
an MEB uses.  An :class:`MTSink` applies an independent readiness (stall)
pattern per thread — the mechanism behind the paper's Fig. 5 experiment
where "thread B stalls" for a window while thread A keeps draining.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.arbiter import GrantPolicy, RoundRobinArbiter
from repro.core.mtchannel import MTChannel, one_hot_thread
from repro.elastic.endpoints import Pattern, _pattern_fn
from repro.kernel.component import Component
from repro.kernel.slots import SeqPlan
from repro.kernel.values import X, as_bool, bools, same_value


class MTSource(Component):
    """Injects per-thread item streams into an MT channel.

    Parameters
    ----------
    items:
        One iterable of items per thread (length must equal the channel's
        thread count).  A thread with an empty list simply never injects.
    patterns:
        Optional per-thread injection gates; a thread only competes for
        the channel in cycles where its gate is open.
    policy:
        Grant policy for choosing among pending threads (default: masked
        by downstream ready with fallback, like the MEBs).
    """

    #: Items (rows, for an ensemble) are presented on the data bus by
    #: reference; injection decisions read only gates and handshakes.
    ENSEMBLE_DATA = "opaque"

    def __init__(
        self,
        name: str,
        channel: MTChannel,
        items: Sequence[Iterable[Any]],
        patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
        policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.channel = channel
        self.threads = channel.threads
        if len(items) != self.threads:
            raise ValueError(
                f"{name}: need one item stream per thread "
                f"({self.threads}), got {len(items)}"
            )
        self._items: list[list[Any]] = [list(seq) for seq in items]
        self._gates: list[Callable[[int], bool]] = []
        self._gates_trivial = patterns is None
        for t in range(self.threads):
            if patterns is None:
                pat: Pattern = None
            elif isinstance(patterns, Mapping):
                pat = patterns.get(t)
            else:
                pat = patterns[t]
            self._gates.append(_pattern_fn(pat))
        self.policy = policy
        self.arbiter = RoundRobinArbiter(self.threads, rotate_on_stall=True)
        channel.connect_producer(self)
        # Downstream readies mask the injection arbiter's requests.
        self.declare_reads(channel.ready)
        if patterns is not None:
            # Injection gates consult the cycle counter, which advances
            # outside the signal graph.
            self.declare_volatile()
        # Registered state; the per-thread stream positions are
        # slot-backed ([index×S], private until compile_seq re-homes
        # them into the SeqStore).
        self._sstore: list[Any] = [0] * self.threads
        self._sq = 0
        self._cycle = 0
        self._blocked: set[int] = set()
        self._chosen: int | None = None
        self._next: tuple[list[int], int] | None = None
        self.sent: list[tuple[int, int, Any]] = []

    @property
    def _index(self) -> list[int]:
        sq = self._sq
        return self._sstore[sq:sq + self.threads]

    @_index.setter
    def _index(self, index: list[int]) -> None:
        sq = self._sq
        self._sstore[sq:sq + self.threads] = index

    # ------------------------------------------------------------------
    # external control
    # ------------------------------------------------------------------
    def push(self, thread: int, item: Any) -> None:
        """Append an item to a thread's stream (usable mid-simulation)."""
        self._items[thread].append(item)
        self.invalidate()

    def block(self, thread: int) -> None:
        """Stop injecting for *thread* until :meth:`unblock` (flow gating)."""
        self._blocked.add(thread)
        self.invalidate()

    def unblock(self, thread: int) -> None:
        self._blocked.discard(thread)
        self.invalidate()

    def pending(self, thread: int) -> int:
        return len(self._items[thread]) - self._sstore[self._sq + thread]

    @property
    def exhausted(self) -> bool:
        return all(self.pending(t) == 0 for t in range(self.threads))

    def sent_by_thread(self, thread: int) -> list[Any]:
        return [d for _c, t, d in self.sent if t == thread]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _eligible(self) -> list[bool]:
        return [
            self.pending(t) > 0
            and t not in self._blocked
            and self._gates[t](self._cycle)
            for t in range(self.threads)
        ]

    def combinational(self) -> None:
        eligible = self._eligible()
        readies = [as_bool(sig.value) for sig in self.channel.ready]
        requests = self.policy.requests(eligible, readies)
        chosen = self.arbiter.grant(requests)
        self._chosen = chosen
        for t in range(self.threads):
            self.channel.valid[t].set(chosen == t)
        if chosen is not None:
            self.channel.data.set(self._items[chosen][self._index[chosen]])
        else:
            self.channel.data.set(X)

    def compile_comb(self, store):
        """Slot-compiled injection: slice-read readies, slice-write valids."""
        if type(self).combinational is not MTSource.combinational:
            return None
        if type(self.arbiter).grant is not RoundRobinArbiter.grant:
            return None
        valid_blk = store.range_of(self.channel.valid)
        ready_blk = store.range_of(self.channel.ready)
        data_slot = store.slot_or_none(self.channel.data)
        if None in (valid_blk, ready_blk, data_slot):
            return None
        values = store.values
        dirty = store.dirty
        valid_readers = store.readers_of(self.channel.valid)
        data_readers = store.readers_of((self.channel.data,))
        vb, ve = valid_blk
        rb, re_ = ready_blk
        requests_of = self.policy.requests
        grant_fast = self.arbiter.grant_fast
        rng = range(self.threads)
        falses = [False] * self.threads
        trivial = self._gates_trivial
        sstore = self._sstore
        sq = self._sq
        sqe = sq + self.threads

        def step() -> bool:
            index = sstore[sq:sqe]
            items = self._items
            if trivial and not self._blocked:
                eligible = [index[t] < len(items[t]) for t in rng]
            else:
                # General gates may return truthy non-bools; normalize so
                # the arbiter's index scan stays exact.
                eligible = list(map(bool, self._eligible()))
            chosen = grant_fast(
                requests_of(eligible, bools(values[rb:re_]))
            )
            self._chosen = chosen
            if chosen is None:
                new_valid = falses
                new_data = X
            else:
                new_valid = falses[:]
                new_valid[chosen] = True
                new_data = items[chosen][index[chosen]]
            changed = False
            if values[vb:ve] != new_valid:
                values[vb:ve] = new_valid
                if valid_readers:
                    dirty.update(valid_readers)
                changed = True
            old = values[data_slot]
            if old is not new_data and not same_value(old, new_data):
                values[data_slot] = new_data
                if data_readers:
                    dirty.update(data_readers)
                changed = True
            return changed

        return step

    def compile_seq(self, seq):
        """Columnar tick plan: slot-level transfer check on re-homed
        stream positions; idle stretches advance the pattern clock in
        bulk through ``repeat``.

        Valid for patterned sources too: the injection gates only act
        through the combinational offer, which the watched valid/data
        slots reflect, and the pattern clock advances identically on the
        replay path.
        """
        cls = type(self)
        if (cls.capture is not MTSource.capture
                or cls.commit is not MTSource.commit):
            return None
        store = seq.store
        valid = store.range_of(self.channel.valid)
        ready = store.range_of(self.channel.ready)
        data_slot = store.slot_or_none(self.channel.data)
        if None in (valid, ready, data_slot):
            return None
        # Re-home the per-thread stream positions.
        threads = self.threads
        sq = seq.alloc(self._sstore[self._sq:self._sq + threads])
        self._sstore = seq.values
        self._sq = sq
        svalues = seq.values
        sqe = sq + threads
        values = store.values
        rb = ready[0]
        arb = self.arbiter
        sent = self.sent

        def capture(cycle) -> None:
            chosen = self._chosen
            transferred = chosen is not None and as_bool(values[rb + chosen])
            index = svalues[sq:sqe]
            if transferred:
                sent.append((cycle, chosen, values[data_slot]))
                index[chosen] += 1
            arb.note(chosen, transferred)
            self._next = (index, cycle + 1)

        def commit() -> bool:
            changed = arb.commit()
            nxt = self._next
            if nxt is not None:
                changed = changed or svalues[sq:sqe] != nxt[0]
                svalues[sq:sqe] = nxt[0]
                self._cycle = nxt[1]
                self._next = None
            return changed

        def repeat(k, start_cycle) -> None:
            self._cycle += k

        watch = (ready, valid, (data_slot, data_slot + 1))
        return SeqPlan(self, capture, commit, watch, repeat=repeat,
                       state=((sq, sqe),))

    def capture(self) -> None:
        index = list(self._index)
        transferred = False
        if self._chosen is not None and as_bool(
            self.channel.ready[self._chosen].value
        ):
            transferred = True
            self.sent.append(
                (self._cycle, self._chosen, self.channel.data.value)
            )
            index[self._chosen] += 1
        self.arbiter.note(self._chosen, transferred)
        self._next = (index, self._cycle + 1)

    def commit(self) -> bool:
        changed = self.arbiter.commit()
        if self._next is not None:
            changed = changed or self._index != self._next[0]
            self._index, self._cycle = self._next
            self._next = None
        return changed

    def reset(self) -> None:
        self.arbiter.reset()
        self._index = [0] * self.threads
        self._cycle = 0
        self._chosen = None
        self._next = None
        # In-place clear: the compiled tick plan binds this list.
        self.sent.clear()


class MTSink(Component):
    """Consumes an MT channel under independent per-thread stall patterns."""

    #: Received payloads (rows, for an ensemble) are logged by reference;
    #: stall decisions read only patterns and handshakes.
    ENSEMBLE_DATA = "opaque"

    def __init__(
        self,
        name: str,
        channel: MTChannel,
        patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.channel = channel
        self.threads = channel.threads
        self._gates: list[Callable[[int], bool]] = []
        self._gates_trivial = patterns is None
        for t in range(self.threads):
            if patterns is None:
                pat: Pattern = None
            elif isinstance(patterns, Mapping):
                pat = patterns.get(t)
            else:
                pat = patterns[t]
            self._gates.append(_pattern_fn(pat))
        channel.connect_consumer(self)
        self.declare_reads()
        if patterns is not None:
            self.declare_volatile()
        self._cycle = 0
        self._next_cycle: int | None = None
        self.received: list[tuple[int, int, Any]] = []

    @property
    def count(self) -> int:
        return len(self.received)

    def count_for(self, thread: int) -> int:
        return sum(1 for _c, t, _d in self.received if t == thread)

    def values_for(self, thread: int) -> list[Any]:
        return [d for _c, t, d in self.received if t == thread]

    def cycles_for(self, thread: int) -> list[int]:
        return [c for c, t, _d in self.received if t == thread]

    def combinational(self) -> None:
        for t in range(self.threads):
            self.channel.ready[t].set(self._gates[t](self._cycle))

    def compile_comb(self, store):
        """Slot-compiled stall gating: one slice write for all S readies."""
        if type(self).combinational is not MTSink.combinational:
            return None
        ready_blk = store.range_of(self.channel.ready)
        if ready_blk is None:
            return None
        values = store.values
        dirty = store.dirty
        ready_readers = store.readers_of(self.channel.ready)
        rb, re_ = ready_blk
        gates = self._gates
        trues = [True] * self.threads
        trivial = self._gates_trivial

        def step() -> bool:
            if trivial:
                new_ready = trues
            else:
                cycle = self._cycle
                new_ready = [gate(cycle) for gate in gates]
            if values[rb:re_] != new_ready:
                values[rb:re_] = new_ready
                if ready_readers:
                    dirty.update(ready_readers)
                return True
            return False

        return step

    def capture(self) -> None:
        t = self.channel.transfer_thread()
        if t is not None:
            self.received.append((self._cycle, t, self.channel.data.value))
        self._next_cycle = self._cycle + 1

    def compile_seq(self, seq):
        """Delta-gated tick plan with bulk replay (see MTSource's)."""
        cls = type(self)
        if (cls.capture is not MTSink.capture
                or cls.commit is not MTSink.commit):
            return None
        store = seq.store
        valid = store.range_of(self.channel.valid)
        ready = store.range_of(self.channel.ready)
        data_slot = store.slot_or_none(self.channel.data)
        if None in (valid, ready, data_slot):
            return None
        values = store.values
        vb, ve = valid
        rb = ready[0]
        ch_path = self.channel.path
        received = self.received
        #: last observation: (thread, data) of a repeating transfer, or None
        last: list[Any] = [None]

        def capture(cycle) -> None:
            # Valid slots are written as canonical bools by producing
            # steps, so raw count/index scans are exact once X has been
            # ruled out — the X check comes first, exactly like the
            # scalar path's bools() normalization.
            vs = values[vb:ve]
            if X in vs:
                bools(vs)  # raises exactly like the scalar path
            count = vs.count(True)
            if count == 1:
                active = vs.index(True)
                if as_bool(values[rb + active]):
                    data = values[data_slot]
                    received.append((cycle, active, data))
                    last[0] = (active, data)
                else:
                    last[0] = None
            elif count == 0:
                last[0] = None
            else:
                one_hot_thread(bools(vs), ch_path)  # raises ProtocolError
            self._next_cycle = cycle + 1

        def repeat(k, start_cycle) -> None:
            transfer = last[0]
            if transfer is not None:
                t, data = transfer
                received.extend(
                    (c, t, data)
                    for c in range(start_cycle, start_cycle + k)
                )
            self._cycle += k

        watch = (valid, ready, (data_slot, data_slot + 1))
        return SeqPlan(self, capture, self.commit, watch, repeat=repeat)

    def commit(self) -> bool:
        if self._next_cycle is not None:
            self._cycle = self._next_cycle
            self._next_cycle = None
        # ready is a pure function of the (volatile-covered) gates.
        return False

    def reset(self) -> None:
        self._cycle = 0
        self._next_cycle = None
        # In-place clear: the compiled tick plan binds this list.
        self.received.clear()
