"""Shared multithreaded function units.

The whole point of multithreaded elasticity (paper §I) is that one copy of
the datapath logic serves all threads in a time-multiplexed way.  These
units implement that sharing on MT channels:

* :class:`MTFunction` — combinational logic shared by all threads
  (handshakes pass through per thread, data is transformed in place).
* :class:`MTVariableLatencyUnit` — a single-occupancy variable-latency
  unit (the processor's memories and execution units): it accepts the
  active thread's item, remembers the owning thread, and presents the
  result on that thread's valid wire when done.
* :class:`MTContextFunction` — like :class:`MTFunction` but the function
  also receives the thread index, for per-thread context such as the
  processor's per-thread register files.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.core.mtchannel import MTChannel, one_hot_thread
from repro.elastic.function import LatencyPolicy
from repro.kernel.component import Component
from repro.kernel.errors import EnsembleUnsupported, SimulationError
from repro.kernel.slots import SeqPlan
from repro.kernel.values import X, as_bool, bools, same_value, state_changed


class MTFunction(Component):
    """Combinational datapath logic shared by all threads.

    ``pure=True`` asserts that ``fn`` is a pure function of the payload
    (and thread index), letting the event settle engine skip evaluations
    whose inputs did not change.  Leave it False (the default) when the
    function closes over mutable context — register files, the MD5
    message store and round counter — or take responsibility for calling
    :meth:`~repro.kernel.component.Component.invalidate` whenever that
    context changes, as :class:`repro.apps.md5.circuit.MD5Circuit` does.
    """

    #: Data is inspected only through ``fn``, which ensemble execution
    #: rebinds to a lane-wise map (pure functions only — a volatile fn
    #: may close over context mutated once per item, which a K-wide map
    #: would advance K times).
    ENSEMBLE_DATA = "lift"

    def __init__(
        self,
        name: str,
        inp: MTChannel,
        out: MTChannel,
        fn: Callable[[Any], Any],
        area_luts: int = 0,
        pure: bool = False,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if inp.threads != out.threads:
            raise SimulationError(f"{name}: thread-count mismatch")
        self.threads = inp.threads
        self.inp = inp
        self.out = out
        self.fn = fn
        self._area_luts = int(area_luts)
        inp.connect_consumer(self)
        out.connect_producer(self)
        self.declare_reads(inp.valid, inp.data, out.ready)
        if not pure:
            self.declare_volatile()

    def combinational(self) -> None:
        active = self.inp.active_thread()
        for t in range(self.threads):
            self.out.valid[t].set(active == t)
            self.inp.ready[t].set(as_bool(self.out.ready[t].value))
        self.out.data.set(
            self.fn(self.inp.data.value) if active is not None else X
        )

    def compile_comb(self, store):
        if type(self).combinational is not MTFunction.combinational:
            return None
        return self._compile_step(store, with_thread=False)

    def _compile_step(self, store, with_thread: bool):
        """Shared slot-compiled step for the MT function-unit family.

        One slice read resolves the active thread (with the channel's
        one-hot protocol check), one slice copy passes the S downstream
        readies through to the upstream, and one slice compare-and-assign
        publishes the S valids — only the payload transform remains a per
        evaluation Python call.
        """
        in_valid = store.range_of(self.inp.valid)
        in_ready = store.range_of(self.inp.ready)
        out_valid = store.range_of(self.out.valid)
        out_ready = store.range_of(self.out.ready)
        in_data = store.slot_or_none(self.inp.data)
        out_data = store.slot_or_none(self.out.data)
        if None in (in_valid, in_ready, out_valid, out_ready,
                    in_data, out_data):
            return None
        values = store.values
        dirty = store.dirty
        valid_readers = store.readers_of(self.out.valid)
        ready_readers = store.readers_of(self.inp.ready)
        data_readers = store.readers_of((self.out.data,))
        ivb, ive = in_valid
        irb, ire = in_ready
        ovb, ove = out_valid
        orb, ore = out_ready
        fn = self.fn
        falses = [False] * self.threads
        inp_path = self.inp.path

        def step() -> bool:
            active = one_hot_thread(bools(values[ivb:ive]), inp_path)
            if active is None:
                new_valid = falses
                new_data = X
            else:
                new_valid = falses[:]
                new_valid[active] = True
                data = values[in_data]
                new_data = fn(data, active) if with_thread else fn(data)
            changed = False
            if values[ovb:ove] != new_valid:
                values[ovb:ove] = new_valid
                if valid_readers:
                    dirty.update(valid_readers)
                changed = True
            new_ready = bools(values[orb:ore])
            if values[irb:ire] != new_ready:
                values[irb:ire] = new_ready
                if ready_readers:
                    dirty.update(ready_readers)
                changed = True
            old = values[out_data]
            if old is not new_data and not same_value(old, new_data):
                values[out_data] = new_data
                if data_readers:
                    dirty.update(data_readers)
                changed = True
            return changed

        return step

    def ensemble_lift(self, ctx) -> None:
        if getattr(self.fn, "__ensemble_lifted__", False):
            return
        if self.volatile:
            raise EnsembleUnsupported(
                f"{self.path}: fn is not declared pure; a lane-wise map "
                "would re-run its side effects once per lane"
            )
        self.fn = ctx.lift_fn(self.fn)

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", self._area_luts, 1)] if self._area_luts else []


class MTContextFunction(MTFunction):
    """Combinational logic that also sees the active thread index.

    Used for per-thread architectural context (register files, PCs): the
    datapath is shared, the context is selected by the thread id carried
    on the active valid wire — paper §V-B, "each thread sees a different
    copy of the register file".
    """

    #: The fn reads per-thread context selected by the live thread index
    #: (register files); lane independence cannot be proven, so designs
    #: containing one fall back to serial execution.
    ENSEMBLE_DATA = "unsafe"

    def combinational(self) -> None:
        active = self.inp.active_thread()
        for t in range(self.threads):
            self.out.valid[t].set(active == t)
            self.inp.ready[t].set(as_bool(self.out.ready[t].value))
        self.out.data.set(
            self.fn(self.inp.data.value, active) if active is not None else X
        )

    def compile_comb(self, store):
        if type(self).combinational is not MTContextFunction.combinational:
            return None
        return self._compile_step(store, with_thread=True)


class MTVariableLatencyUnit(Component):
    """Single-occupancy variable-latency unit shared by all threads.

    Timing: an item of thread *t* accepted in cycle *c* with latency *L*
    (≥ 1) presents its result on ``valid[t]`` from cycle *c+L* until the
    downstream takes it.  While occupied, no thread is ready upstream —
    other threads' items wait in the surrounding MEBs, which is exactly
    how multithreading "hides the latency of each operation" (paper §I):
    the *channel* keeps moving other threads while this unit is busy.

    With ``bypass=True`` (the default) the unit accepts a new item in the
    same cycle its result drains downstream, sustaining one item per L
    cycles; with ``bypass=False`` an idle handoff cycle separates items
    (and ``ready`` has no combinational dependence on downstream
    ``ready``).

    The registered state — ``[busy, owner, remaining, result, accepted]``
    — is slot-backed: a private five-cell list until :meth:`compile_seq`
    re-homes the block into the design-wide
    :class:`~repro.kernel.slots.SeqStore` (exactly like the MEB queues),
    so the compiled engine's settle step and tick plan read the same
    cells every other engine does.
    """

    #: Whether ``fn`` receives the accepting thread index as a second
    #: argument (the :class:`~repro.apps.processor.stages.MTSequencedUnit`
    #: variant for side-effecting per-thread stage functions).
    _fn_takes_thread = False

    #: The latency policy may read the payload (data-dependent latency
    #: would diverge control flow across lanes), so the unit is not
    #: ensemble-safe even though ``fn`` itself could be lifted.
    ENSEMBLE_DATA = "unsafe"

    def __init__(
        self,
        name: str,
        inp: MTChannel,
        out: MTChannel,
        fn: Callable[[Any], Any],
        latency: LatencyPolicy = 1,
        area_luts: int = 0,
        bypass: bool = True,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if inp.threads != out.threads:
            raise SimulationError(f"{name}: thread-count mismatch")
        self.threads = inp.threads
        self.inp = inp
        self.out = out
        self.fn = fn
        self.bypass = bypass
        self._latency_policy = latency
        self._latency_iter = None
        self._area_luts = int(area_luts)
        inp.connect_consumer(self)
        out.connect_producer(self)
        # Without bypass the handshakes are functions of registered state
        # only; with bypass, accepting depends on the owner's downstream
        # ready draining the result this very cycle.
        if bypass:
            self.declare_reads(out.ready)
        else:
            self.declare_reads()
        # Slot-backed registered state [busy, owner, remaining, result,
        # accepted]; see the class docstring.
        self._sstore: list[Any] = [False, None, 0, X, 0]
        self._sq = 0
        self._next: tuple[bool, int | None, int, Any, int] | None = None

    # -- slot-backed state views -------------------------------------------
    @property
    def _busy(self) -> bool:
        return self._sstore[self._sq]

    @_busy.setter
    def _busy(self, value: bool) -> None:
        self._sstore[self._sq] = value

    @property
    def _owner(self) -> int | None:
        return self._sstore[self._sq + 1]

    @_owner.setter
    def _owner(self, value: int | None) -> None:
        self._sstore[self._sq + 1] = value

    @property
    def _remaining(self) -> int:
        return self._sstore[self._sq + 2]

    @_remaining.setter
    def _remaining(self, value: int) -> None:
        self._sstore[self._sq + 2] = value

    @property
    def _result(self) -> Any:
        return self._sstore[self._sq + 3]

    @_result.setter
    def _result(self, value: Any) -> None:
        self._sstore[self._sq + 3] = value

    @property
    def _accepted(self) -> int:
        return self._sstore[self._sq + 4]

    @_accepted.setter
    def _accepted(self, value: int) -> None:
        self._sstore[self._sq + 4] = value

    def _latency_for(self, data: Any) -> int:
        policy = self._latency_policy
        if isinstance(policy, int):
            lat = policy
        elif callable(policy):
            lat = policy(data, self._accepted)
        else:
            if self._latency_iter is None:
                self._latency_iter = iter(policy)
            try:
                lat = next(self._latency_iter)
            except StopIteration as exc:
                raise SimulationError(
                    f"{self.path}: latency iterable exhausted"
                ) from exc
        if lat < 1:
            raise SimulationError(f"{self.path}: latency must be >= 1, got {lat}")
        return int(lat)

    @property
    def done(self) -> bool:
        return self._busy and self._remaining == 0

    @property
    def owner(self) -> int | None:
        return self._owner

    def combinational(self) -> None:
        draining = (
            self.bypass
            and self.done
            and as_bool(self.out.ready[self._owner].value)
        )
        accepting = (not self._busy) or draining
        for t in range(self.threads):
            self.inp.ready[t].set(accepting)
            self.out.valid[t].set(self.done and self._owner == t)
        self.out.data.set(self._result if self.done else X)

    def compile_comb(self, store):
        """Slot-compiled :meth:`combinational`: the whole handshake is
        two constant slice writes (all-S ``ready``, one-hot ``valid``)
        plus a data compare-and-assign, with the busy/owner/remaining
        cells read straight out of the (possibly re-homed) state block.
        """
        if type(self).combinational is not MTVariableLatencyUnit.combinational:
            return None
        in_ready = store.range_of(self.inp.ready)
        out_valid = store.range_of(self.out.valid)
        out_ready = store.range_of(self.out.ready)
        out_data = store.slot_or_none(self.out.data)
        if None in (in_ready, out_valid, out_ready, out_data):
            return None
        values = store.values
        dirty = store.dirty
        ready_readers = store.readers_of(self.inp.ready)
        valid_readers = store.readers_of(self.out.valid)
        data_readers = store.readers_of((self.out.data,))
        irb, ire = in_ready
        ovb, ove = out_valid
        orb = out_ready[0]
        bypass = self.bypass
        falses = [False] * self.threads
        trues = [True] * self.threads
        unknown = X
        # Compile-time binding of the (possibly re-homed) state block;
        # rebuild()/reset() recompiles, so the binding stays fresh.
        sstore = self._sstore
        sq = self._sq

        def step() -> bool:
            busy = sstore[sq]
            if busy and sstore[sq + 2] == 0:
                owner = sstore[sq + 1]
                new_valid = falses[:]
                new_valid[owner] = True
                new_data = sstore[sq + 3]
                accepting = bypass and as_bool(values[orb + owner])
            else:
                new_valid = falses
                new_data = unknown
                accepting = not busy
            changed = False
            new_ready = trues if accepting else falses
            if values[irb:ire] != new_ready:
                values[irb:ire] = new_ready
                if ready_readers:
                    dirty.update(ready_readers)
                changed = True
            if values[ovb:ove] != new_valid:
                values[ovb:ove] = new_valid
                if valid_readers:
                    dirty.update(valid_readers)
                changed = True
            old = values[out_data]
            if old is not new_data and not same_value(old, new_data):
                values[out_data] = new_data
                if data_readers:
                    dirty.update(data_readers)
                changed = True
            return changed

        return step

    def capture(self) -> None:
        busy, owner = self._busy, self._owner
        remaining, result = self._remaining, self._result
        accepted = self._accepted
        if self.done and as_bool(self.out.ready[self._owner].value):
            busy, owner, result = False, None, X
        if not busy:
            t = self.inp.transfer_thread()
            if t is not None:
                data = self.inp.data.value
                remaining = self._latency_for(data) - 1
                result = (
                    self.fn(data, t) if self._fn_takes_thread
                    else self.fn(data)
                )
                busy, owner = True, t
                accepted += 1
        elif remaining > 0:
            remaining -= 1
        self._next = (busy, owner, remaining, result, accepted)

    def commit(self) -> bool:
        if self._next is None:
            return False
        changed = state_changed(
            (self._busy, self._owner, self._remaining, self._result),
            self._next[:4],
        )
        (
            self._busy,
            self._owner,
            self._remaining,
            self._result,
            self._accepted,
        ) = self._next
        self._next = None
        return changed

    def compile_seq(self, seq):
        """Columnar tick plan: busy/owner/remaining/result re-homed into
        a :class:`~repro.kernel.slots.SeqStore` block, the acceptance
        handshake resolved with slot-level one-hot probes, and the whole
        capture/commit delta-gated by the declared watch set (a parked
        result or an idle unit costs nothing per cycle).

        Subclasses that override capture/commit fall back to legacy
        dispatch (``None``); the latency policy and ``fn`` are bound
        through ``self``, so overrides of those still apply.
        """
        cls = type(self)
        if (cls.capture is not MTVariableLatencyUnit.capture
                or cls.commit is not MTVariableLatencyUnit.commit):
            return None
        store = seq.store
        in_valid = store.range_of(self.inp.valid)
        in_ready = store.range_of(self.inp.ready)
        out_ready = store.range_of(self.out.ready)
        in_data = store.slot_or_none(self.inp.data)
        if None in (in_valid, in_ready, out_ready, in_data):
            return None
        # Re-home [busy, owner, remaining, result, accepted], carrying
        # the live values across (state-preserving rebuild).
        sq = seq.alloc(self._sstore[self._sq:self._sq + 5])
        self._sstore = seq.values
        self._sq = sq
        svalues = seq.values
        sqe = sq + 5
        values = store.values
        ivb, ive = in_valid
        irb = in_ready[0]
        orb = out_ready[0]
        fn = self.fn
        with_thread = self._fn_takes_thread
        inp_path = self.inp.path
        unknown = X

        def capture(cycle) -> None:
            busy = svalues[sq]
            if busy:
                remaining = svalues[sq + 2]
                if remaining > 0:
                    self._next = (
                        True, svalues[sq + 1], remaining - 1,
                        svalues[sq + 3], svalues[sq + 4],
                    )
                    return
                if not as_bool(values[orb + svalues[sq + 1]]):
                    # Parked: result presented, downstream not ready.
                    self._next = None
                    return
                # Drained this cycle; may accept a new item right away.
            t = one_hot_thread(bools(values[ivb:ive]), inp_path)
            if t is not None and as_bool(values[irb + t]):
                data = values[in_data]
                remaining = self._latency_for(data) - 1
                result = fn(data, t) if with_thread else fn(data)
                self._next = (True, t, remaining, result,
                              svalues[sq + 4] + 1)
            elif busy:
                # Drain with no refill: back to idle.
                self._next = (False, None, 0, unknown, svalues[sq + 4])
            else:
                # Idle cycle: nothing accepted, state untouched.
                self._next = None

        def commit() -> bool:
            nxt = self._next
            if nxt is None:
                return False
            changed = state_changed(tuple(svalues[sq:sqe - 1]), nxt[:4])
            svalues[sq:sqe] = nxt
            self._next = None
            return changed

        watch = (out_ready, in_valid, in_ready, (in_data, in_data + 1))
        return SeqPlan(self, capture, commit, watch, state=((sq, sqe),))

    def reset(self) -> None:
        sq = self._sq
        self._sstore[sq:sq + 5] = [False, None, 0, X, 0]
        self._next = None
        self._latency_iter = None

    def area_items(self) -> list[tuple[str, int, int]]:
        width = self.out.width
        owner_bits = max(1, math.ceil(math.log2(self.threads)))
        items: list[tuple[str, int, int]] = [
            ("ff", 1, width),
            ("ff", 1, 4 + owner_bits),
            ("lut", 4 + self.threads, 1),
        ]
        if self._area_luts:
            items.append(("lut", self._area_luts, 1))
        return items
