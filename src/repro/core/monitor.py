"""Protocol monitors and activity recorders for MT channels.

:class:`MTMonitor` enforces the structural invariant of the multithreaded
elastic protocol — at most one ``valid(i)`` per cycle — and records every
transfer with its thread, which the analysis layer turns into per-thread
throughput, channel utilization and the Fig.-5-style activity tables.

Unlike the single-thread monitor, *valid withdrawal* is legal here: the
MEB arbiter may present a different thread each cycle, so a stalled
``valid(i)`` may drop when the arbiter moves on.  What must still hold is
per-thread token conservation, which the recorded transfer streams let
tests assert end-to-end.
"""

from __future__ import annotations

from typing import Any

from repro.core.mtchannel import MTChannel
from repro.kernel.component import Component
from repro.kernel.values import as_bool


class MTMonitor(Component):
    """Passive checker/recorder for one multithreaded channel."""

    def __init__(
        self,
        name: str,
        channel: MTChannel,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.channel = channel
        self.threads = channel.threads
        # Registered observation state.
        self._cycle = 0
        self._next_cycle: int | None = None
        #: per-cycle activity: (thread or None, data, transferred)
        self.activity: list[tuple[int | None, Any, bool]] = []
        #: transfers: (cycle, thread, data)
        self.transfers: list[tuple[int, int, Any]] = []

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def cycles_observed(self) -> int:
        return self._cycle

    def transfer_count(self, thread: int | None = None) -> int:
        if thread is None:
            return len(self.transfers)
        return sum(1 for _c, t, _d in self.transfers if t == thread)

    def values_for(self, thread: int) -> list[Any]:
        return [d for _c, t, d in self.transfers if t == thread]

    def transfer_cycles(self, thread: int) -> list[int]:
        return [c for c, t, _d in self.transfers if t == thread]

    def throughput(self, thread: int | None = None) -> float:
        """Transfers per cycle, overall or for one thread."""
        if not self._cycle:
            return 0.0
        return self.transfer_count(thread) / self._cycle

    def throughput_window(
        self, start: int, end: int, thread: int | None = None
    ) -> float:
        """Transfers per cycle within ``[start, end)``."""
        if end <= start:
            return 0.0
        n = sum(
            1
            for c, t, _d in self.transfers
            if start <= c < end and (thread is None or t == thread)
        )
        return n / (end - start)

    def utilization(self) -> float:
        """Fraction of observed cycles in which any transfer happened."""
        if not self._cycle:
            return 0.0
        return len(self.transfers) / self._cycle

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def capture(self) -> None:
        # active_thread() raises ProtocolError on a non-one-hot valid
        # vector, making this monitor the protocol assertion point.
        # One vector read serves both the assertion and the transfer
        # check (channel.valids() is a packed slot-slice once finalized).
        channel = self.channel
        active = channel.active_thread()
        if active is None:
            self.activity.append((None, None, False))
        else:
            data = channel.data.value
            transferred = as_bool(channel.ready[active].value)
            self.activity.append((active, data, transferred))
            if transferred:
                self.transfers.append((self._cycle, active, data))
        self._next_cycle = self._cycle + 1

    def commit(self) -> bool:
        if self._next_cycle is not None:
            self._cycle = self._next_cycle
            self._next_cycle = None
        # Pure observer: nothing combinational depends on this state.
        return False

    def reset(self) -> None:
        self._cycle = 0
        self._next_cycle = None
        self.activity = []
        self.transfers = []
