"""Protocol monitors and activity recorders for MT channels.

:class:`MTMonitor` enforces the structural invariant of the multithreaded
elastic protocol — at most one ``valid(i)`` per cycle — and records every
transfer with its thread, which the analysis layer turns into per-thread
throughput, channel utilization and the Fig.-5-style activity tables.

Unlike the single-thread monitor, *valid withdrawal* is legal here: the
MEB arbiter may present a different thread each cycle, so a stalled
``valid(i)`` may drop when the arbiter moves on.  What must still hold is
per-thread token conservation, which the recorded transfer streams let
tests assert end-to-end.

Rows are stored **columnar** — parallel per-field lists — so the
statistics helpers run as C-speed ``count``/``zip`` scans and the
compiled tick plan can bulk-replay idle stretches; the public
``activity``/``transfers`` attributes remain row-major views.
"""

from __future__ import annotations

from typing import Any

from repro.core.mtchannel import MTChannel, one_hot_thread
from repro.kernel.component import Component
from repro.kernel.slots import SeqPlan
from repro.kernel.values import as_bool, bools


class MTMonitor(Component):
    """Passive checker/recorder for one multithreaded channel."""

    #: Observes handshakes; data is only compared for stability (rows
    #: compare lane-wise through ``same_value``), never transformed.
    ENSEMBLE_DATA = "opaque"

    def __init__(
        self,
        name: str,
        channel: MTChannel,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.channel = channel
        self.threads = channel.threads
        # Registered observation state, columnar.
        self._cycle = 0
        self._next_cycle: int | None = None
        self._act_thread: list[int | None] = []
        self._act_data: list[Any] = []
        self._act_moved: list[bool] = []
        self._tr_cycle: list[int] = []
        self._tr_thread: list[int] = []
        self._tr_data: list[Any] = []

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def activity(self) -> list[tuple[int | None, Any, bool]]:
        """Per-cycle activity rows: (thread or None, data, transferred)."""
        return list(zip(self._act_thread, self._act_data, self._act_moved))

    @property
    def transfers(self) -> list[tuple[int, int, Any]]:
        """Transfer rows: (cycle, thread, data)."""
        return list(zip(self._tr_cycle, self._tr_thread, self._tr_data))

    def transfer_columns(self) -> tuple[list[int], list[int]]:
        """The raw (cycle, thread) transfer columns, ascending by cycle.

        Zero-copy views of the live recording for columnar consumers
        (:func:`repro.analysis.throughput.channel_stats` does one pass
        over these instead of re-materializing row tuples per thread);
        callers must not mutate them.
        """
        return self._tr_cycle, self._tr_thread

    @property
    def cycles_observed(self) -> int:
        return self._cycle

    def transfer_count(self, thread: int | None = None) -> int:
        if thread is None:
            return len(self._tr_cycle)
        return self._tr_thread.count(thread)

    def values_for(self, thread: int) -> list[Any]:
        return [
            d for t, d in zip(self._tr_thread, self._tr_data) if t == thread
        ]

    def transfer_cycles(self, thread: int) -> list[int]:
        return [
            c for c, t in zip(self._tr_cycle, self._tr_thread) if t == thread
        ]

    def throughput(self, thread: int | None = None) -> float:
        """Transfers per cycle, overall or for one thread."""
        if not self._cycle:
            return 0.0
        return self.transfer_count(thread) / self._cycle

    def throughput_window(
        self, start: int, end: int, thread: int | None = None
    ) -> float:
        """Transfers per cycle within ``[start, end)``."""
        if end <= start:
            return 0.0
        n = sum(
            1
            for c, t in zip(self._tr_cycle, self._tr_thread)
            if start <= c < end and (thread is None or t == thread)
        )
        return n / (end - start)

    def utilization(self) -> float:
        """Fraction of observed cycles in which any transfer happened."""
        if not self._cycle:
            return 0.0
        return len(self._tr_cycle) / self._cycle

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def capture(self) -> None:
        # active_thread() raises ProtocolError on a non-one-hot valid
        # vector, making this monitor the protocol assertion point.
        # One vector read serves both the assertion and the transfer
        # check (channel.valids() is a packed slot-slice once finalized).
        channel = self.channel
        active = channel.active_thread()
        if active is None:
            self._act_thread.append(None)
            self._act_data.append(None)
            self._act_moved.append(False)
        else:
            data = channel.data.value
            transferred = as_bool(channel.ready[active].value)
            self._act_thread.append(active)
            self._act_data.append(data)
            self._act_moved.append(transferred)
            if transferred:
                self._tr_cycle.append(self._cycle)
                self._tr_thread.append(active)
                self._tr_data.append(data)
        self._next_cycle = self._cycle + 1

    def compile_seq(self, seq):
        """Columnar tick plan: slice-read observation, bulk idle replay.

        The observation is a pure function of the watched channel slots,
        so an unchanged watch set means the previous row repeats — the
        ``repeat`` hook appends it ``k`` times (with advancing cycle
        stamps for transfer rows), which is also how settle+tick fusion
        accounts whole idle stretches in one call.
        """
        cls = type(self)
        if (cls.capture is not MTMonitor.capture
                or cls.commit is not MTMonitor.commit):
            return None
        store = seq.store
        valid = store.range_of(self.channel.valid)
        ready = store.range_of(self.channel.ready)
        data_slot = store.slot_or_none(self.channel.data)
        if None in (valid, ready, data_slot):
            return None
        values = store.values
        vb, ve = valid
        rb = ready[0]
        ch_path = self.channel.path
        act_thread = self._act_thread
        act_data = self._act_data
        act_moved = self._act_moved
        tr_cycle = self._tr_cycle
        tr_thread = self._tr_thread
        tr_data = self._tr_data
        last: list[Any] = [None, None, False]
        from repro.kernel.values import X as unknown

        def capture(cycle) -> None:
            # Valid slots are only ever written as canonical bools by
            # the producing steps, so raw count/index scans are exact
            # once X has been ruled out — the X check comes first,
            # exactly like the scalar path's bools() normalization.
            vs = values[vb:ve]
            if unknown in vs:
                bools(vs)  # raises exactly like the scalar path
            count = vs.count(True)
            if count == 0:
                act_thread.append(None)
                act_data.append(None)
                act_moved.append(False)
                last[0] = last[1] = None
                last[2] = False
            elif count == 1:
                active = vs.index(True)
                data = values[data_slot]
                moved = as_bool(values[rb + active])
                act_thread.append(active)
                act_data.append(data)
                act_moved.append(moved)
                if moved:
                    tr_cycle.append(cycle)
                    tr_thread.append(active)
                    tr_data.append(data)
                last[0], last[1], last[2] = active, data, moved
            else:
                one_hot_thread(bools(vs), ch_path)  # raises ProtocolError
            self._next_cycle = cycle + 1

        def repeat(k, start_cycle) -> None:
            active, data, moved = last
            act_thread.extend([active] * k)
            act_data.extend([data] * k)
            act_moved.extend([moved] * k)
            if moved:
                tr_cycle.extend(range(start_cycle, start_cycle + k))
                tr_thread.extend([active] * k)
                tr_data.extend([data] * k)
            self._cycle += k

        watch = (valid, ready, (data_slot, data_slot + 1))
        return SeqPlan(self, capture, self.commit, watch, repeat=repeat)

    def commit(self) -> bool:
        if self._next_cycle is not None:
            self._cycle = self._next_cycle
            self._next_cycle = None
        # Pure observer: nothing combinational depends on this state.
        return False

    def reset(self) -> None:
        self._cycle = 0
        self._next_cycle = None
        # In-place clears: the compiled tick plan's closures bind these
        # column lists at compile time, so the identities must persist.
        self._act_thread.clear()
        self._act_data.clear()
        self._act_moved.clear()
        self._tr_cycle.clear()
        self._tr_thread.clear()
        self._tr_data.clear()
