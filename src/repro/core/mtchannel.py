"""Multithreaded elastic channels (paper §III).

An MT elastic channel carries the data of **one** thread per cycle plus as
many ``valid(i)/ready(i)`` handshake pairs as the number of threads the
system supports.  The structural invariant — at most one ``valid(i)``
asserted per cycle — is enforced by :meth:`MTChannel.active_thread` and by
the protocol monitors.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.component import Component
from repro.kernel.errors import ProtocolError
from repro.kernel.values import as_bool, onehot_index


class MTChannel(Component):
    """A time-multiplexed elastic channel for ``threads`` concurrent threads.

    Signals:

    * ``valid[i]`` / ``ready[i]`` — one handshake pair per thread.
    * ``data`` — shared data bus, meaningful for the single active thread.
    """

    def __init__(
        self,
        name: str,
        threads: int,
        width: int = 32,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if threads < 1:
            raise ValueError("an MT channel needs at least one thread")
        self.threads = int(threads)
        self.width = int(width)
        self.valid = [
            self.signal(f"valid{i}", width=1, init=False)
            for i in range(self.threads)
        ]
        self.ready = [
            self.signal(f"ready{i}", width=1, init=False)
            for i in range(self.threads)
        ]
        self.data = self.signal("data", width=self.width)

    # ------------------------------------------------------------------
    # connection bookkeeping
    # ------------------------------------------------------------------
    def connect_producer(self, component: Component) -> "MTChannel":
        for sig in self.valid:
            sig.set_driver(component)
        self.data.set_driver(component)
        return self

    def connect_consumer(self, component: Component) -> "MTChannel":
        for sig in self.ready:
            sig.set_driver(component)
        return self

    # ------------------------------------------------------------------
    # settled-value helpers
    # ------------------------------------------------------------------
    def valids(self) -> list[bool]:
        return [as_bool(sig.value) for sig in self.valid]

    def readies(self) -> list[bool]:
        return [as_bool(sig.value) for sig in self.ready]

    def active_thread(self) -> int | None:
        """Index of the thread presenting data this cycle (None if idle).

        Raises :class:`ProtocolError` when the one-valid-per-cycle
        invariant of the MT protocol is violated.
        """
        try:
            return onehot_index(self.valids())
        except ValueError as exc:
            raise ProtocolError(f"{self.path}: {exc}") from exc

    def transfer_thread(self) -> int | None:
        """Thread completing a transfer this cycle, or None."""
        active = self.active_thread()
        if active is not None and as_bool(self.ready[active].value):
            return active
        return None

    def transfers(self, thread: int) -> bool:
        """True when *thread* moves a data item across this cycle."""
        return as_bool(self.valid[thread].value) and as_bool(
            self.ready[thread].value
        )

    def payload(self) -> Any:
        return self.data.value

    def __repr__(self) -> str:
        return (
            f"<MTChannel {self.path} threads={self.threads} "
            f"width={self.width}>"
        )


def mt_channels(
    prefix: str, count: int, threads: int, width: int = 32
) -> list[MTChannel]:
    """Create *count* MT channels named ``{prefix}0 .. {prefix}{count-1}``."""
    return [
        MTChannel(f"{prefix}{i}", threads=threads, width=width)
        for i in range(count)
    ]


def trace_mt_channel(sim, channel: MTChannel, prefix: str | None = None):
    """Attach a :class:`~repro.kernel.trace.TraceRecorder` to *channel*.

    Records every per-thread valid/ready pair plus the shared data bus,
    so an MT channel's handshake activity can be rendered as an ASCII
    waveform or dumped to VCD like any single-thread channel.
    """
    from repro.kernel.trace import TraceRecorder

    if prefix is None:
        prefix = channel.name
    signals = []
    labels = []
    for i in range(channel.threads):
        signals.append(channel.valid[i])
        labels.append(f"{prefix}.v{i}")
        signals.append(channel.ready[i])
        labels.append(f"{prefix}.r{i}")
    signals.append(channel.data)
    labels.append(f"{prefix}.data")
    return TraceRecorder(signals, labels=labels).attach(sim)
