"""Multithreaded elastic channels (paper §III).

An MT elastic channel carries the data of **one** thread per cycle plus as
many ``valid(i)/ready(i)`` handshake pairs as the number of threads the
system supports.  The structural invariant — at most one ``valid(i)``
asserted per cycle — is enforced by :meth:`MTChannel.active_thread` and by
the protocol monitors.

The per-thread ``valid``/``ready`` signal lists are created back to back,
so once the simulator finalizes they occupy **packed consecutive slots**
of the flat :class:`~repro.kernel.slots.SlotStore`.  The channel caches
those slot blocks lazily (:meth:`_blocks`) and serves its S-wide vector
reads — :meth:`valids`, :meth:`readies`, :meth:`active_thread` — as one
list slice plus C-speed ``count``/``index`` scans instead of S attribute
chases, which speeds up every engine's capture phase as well as the
compiled engine's settle steps.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.component import Component
from repro.kernel.errors import ProtocolError
from repro.kernel.values import as_bool, bools


def one_hot_thread(valids: list, path: str) -> int | None:
    """Index of the single asserted bit in a normalized valid vector.

    The MT protocol's one-valid-per-cycle invariant, as two C-speed
    ``count``/``index`` scans; raises :class:`ProtocolError` naming
    *path* when more than one bit is set.  Shared by
    :meth:`MTChannel.active_thread` and the slot-compiled steps of the
    MT operators and function units.
    """
    count = valids.count(True)
    if count == 0:
        return None
    first = valids.index(True)
    if count == 1:
        return first
    second = valids.index(True, first + 1)
    raise ProtocolError(
        f"{path}: expected one-hot vector, bits {first} and "
        f"{second} both set"
    )


class MTChannel(Component):
    """A time-multiplexed elastic channel for ``threads`` concurrent threads.

    Signals:

    * ``valid[i]`` / ``ready[i]`` — one handshake pair per thread.
    * ``data`` — shared data bus, meaningful for the single active thread.
    """

    #: The data bus carries payloads by reference, never inspected.
    ENSEMBLE_DATA = "opaque"

    def __init__(
        self,
        name: str,
        threads: int,
        width: int = 32,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if threads < 1:
            raise ValueError("an MT channel needs at least one thread")
        self.threads = int(threads)
        self.width = int(width)
        self.valid = [
            self.signal(f"valid{i}", width=1, init=False)
            for i in range(self.threads)
        ]
        self.ready = [
            self.signal(f"ready{i}", width=1, init=False)
            for i in range(self.threads)
        ]
        self.data = self.signal("data", width=self.width)
        # Packed-slot cache for the vector helpers, keyed on the store
        # list the signals are currently homed in (it changes exactly
        # once, when the simulator finalizes and re-homes every signal
        # into the design-wide SlotStore).
        self._blk_store: list[Any] | None = None
        self._blk_valid: tuple[int, int] | None = None
        self._blk_ready: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # packed slot blocks
    # ------------------------------------------------------------------
    def _blocks(self) -> None:
        """Refresh the cached (store, valid-range, ready-range) triple."""
        store = self.valid[0]._store
        self._blk_store = store
        self._blk_valid = self._contiguous(self.valid, store)
        self._blk_ready = self._contiguous(self.ready, store)

    @staticmethod
    def _contiguous(sigs, store) -> tuple[int, int] | None:
        base = sigs[0]._slot
        for off, sig in enumerate(sigs):
            if sig._store is not store or sig._slot != base + off:
                return None
        return base, base + len(sigs)

    # ------------------------------------------------------------------
    # connection bookkeeping
    # ------------------------------------------------------------------
    def connect_producer(self, component: Component) -> "MTChannel":
        for sig in self.valid:
            sig.set_driver(component)
        self.data.set_driver(component)
        return self

    def connect_consumer(self, component: Component) -> "MTChannel":
        for sig in self.ready:
            sig.set_driver(component)
        return self

    # ------------------------------------------------------------------
    # settled-value helpers
    # ------------------------------------------------------------------
    def valids(self) -> list[bool]:
        if self.valid[0]._store is not self._blk_store:
            self._blocks()
        blk = self._blk_valid
        if blk is not None:
            # One slice read + one C-speed bool() sweep; raises on X
            # exactly like the scalar as_bool path would.
            return bools(self._blk_store[blk[0]:blk[1]])
        return [as_bool(sig.value) for sig in self.valid]

    def readies(self) -> list[bool]:
        if self.valid[0]._store is not self._blk_store:
            self._blocks()
        blk = self._blk_ready
        if blk is not None:
            return bools(self._blk_store[blk[0]:blk[1]])
        return [as_bool(sig.value) for sig in self.ready]

    def active_thread(self) -> int | None:
        """Index of the thread presenting data this cycle (None if idle).

        Raises :class:`ProtocolError` when the one-valid-per-cycle
        invariant of the MT protocol is violated.
        """
        return one_hot_thread(self.valids(), self.path)

    def transfer_thread(self) -> int | None:
        """Thread completing a transfer this cycle, or None."""
        active = self.active_thread()
        if active is not None and as_bool(self.ready[active].value):
            return active
        return None

    def transfers(self, thread: int) -> bool:
        """True when *thread* moves a data item across this cycle."""
        return as_bool(self.valid[thread].value) and as_bool(
            self.ready[thread].value
        )

    def payload(self) -> Any:
        return self.data.value

    def __repr__(self) -> str:
        return (
            f"<MTChannel {self.path} threads={self.threads} "
            f"width={self.width}>"
        )


def mt_channels(
    prefix: str, count: int, threads: int, width: int = 32
) -> list[MTChannel]:
    """Create *count* MT channels named ``{prefix}0 .. {prefix}{count-1}``."""
    return [
        MTChannel(f"{prefix}{i}", threads=threads, width=width)
        for i in range(count)
    ]


def trace_mt_channel(sim, channel: MTChannel, prefix: str | None = None):
    """Attach a :class:`~repro.kernel.trace.TraceRecorder` to *channel*.

    Records every per-thread valid/ready pair plus the shared data bus,
    so an MT channel's handshake activity can be rendered as an ASCII
    waveform or dumped to VCD like any single-thread channel.
    """
    from repro.kernel.trace import TraceRecorder

    if prefix is None:
        prefix = channel.name
    signals = []
    labels = []
    for i in range(channel.threads):
        signals.append(channel.valid[i])
        labels.append(f"{prefix}.v{i}")
        signals.append(channel.ready[i])
        labels.append(f"{prefix}.r{i}")
    signals.append(channel.data)
    labels.append(f"{prefix}.data")
    return TraceRecorder(signals, labels=labels).attach(sim)
