"""Thread arbiters and grant policies for MEBs (paper §III).

The paper states that "an arbiter is responsible for selecting the active
thread after taking into account which threads are ready downstream".
Between two MEBs this downstream-ready masking is safe because an MEB's
``ready`` outputs are functions of registered state.  Where the downstream
readiness itself depends on what is being presented (M-Join between two
MEBs, M-Branch, the barrier), pure masking creates a combinational
chicken-and-egg that settles at all-zero, i.e. deadlock.  DESIGN.md §5
discusses this; the three policies below make the trade-off explicit:

* :attr:`GrantPolicy.MASKED` — grant only among threads that are valid
  *and* ready downstream (paper's description; every grant is a transfer).
* :attr:`GrantPolicy.UNMASKED` — grant among valid threads regardless of
  downstream readiness (a granted thread may stall for a cycle).
* :attr:`GrantPolicy.MASKED_FALLBACK` — the default: behave exactly like
  ``MASKED`` whenever some thread is both valid and ready; otherwise
  *probe* by presenting a valid thread anyway.  Combined with
  rotate-on-stall this lets barriers observe arrivals and lets paired
  join-feeding MEBs converge on a common thread, while remaining
  cycle-for-cycle identical to ``MASKED`` in ordinary pipelines.
"""

from __future__ import annotations

import enum
import math


class GrantPolicy(enum.Enum):
    """How an MEB arbiter filters its request vector (see module docs)."""

    MASKED = "masked"
    UNMASKED = "unmasked"
    MASKED_FALLBACK = "masked_fallback"

    def requests(self, valids: list[bool], readies: list[bool]) -> list[bool]:
        """Combine per-thread occupancy and downstream readiness."""
        masked = [v and r for v, r in zip(valids, readies)]
        if self is GrantPolicy.MASKED:
            return masked
        if self is GrantPolicy.UNMASKED:
            return list(valids)
        return masked if any(masked) else list(valids)


class RoundRobinArbiter:
    """Rotating-priority arbiter with two-phase pointer update.

    The grant computation (:meth:`grant`) is pure so it can be called from
    a component's ``combinational()`` any number of times; the pointer
    advances through the owner's capture/commit phases via
    :meth:`note`/:meth:`commit`.

    ``rotate_on_stall=True`` advances the pointer even when the granted
    thread did not transfer, so a probing grant (see
    :attr:`GrantPolicy.MASKED_FALLBACK`) sweeps across all waiting threads
    instead of pinning one forever — required for barrier arrival
    detection and join agreement.
    """

    def __init__(self, n: int, rotate_on_stall: bool = True):
        if n < 1:
            raise ValueError("arbiter needs at least one requester")
        self.n = int(n)
        self.rotate_on_stall = rotate_on_stall
        self._pointer = 0
        self._next_pointer: int | None = None

    @property
    def pointer(self) -> int:
        return self._pointer

    def grant(self, requests: list[bool]) -> int | None:
        """Pick the first requesting index at or after the pointer."""
        if len(requests) != self.n:
            raise ValueError(
                f"expected {self.n} request bits, got {len(requests)}"
            )
        for k in range(self.n):
            i = (self._pointer + k) % self.n
            if requests[i]:
                return i
        return None

    def grant_fast(self, requests: list[bool]) -> int | None:
        """:meth:`grant` for canonical-bool request vectors (hot path).

        Replaces the rotating modulo scan with two C-speed
        ``list.index(True, ...)`` probes (at-or-after the pointer, then
        the wrapped prefix).  Callers must pass real ``True``/``False``
        entries — the batched handshake paths all normalize through
        :func:`repro.kernel.values.bools` first — since ``index`` matches
        by equality, not truthiness.
        """
        pointer = self._pointer
        try:
            return requests.index(True, pointer)
        except ValueError:
            try:
                return requests.index(True, 0, pointer)
            except ValueError:
                return None

    def note(self, granted: int | None, transferred: bool) -> None:
        """Record this cycle's outcome (called from the owner's capture)."""
        if granted is None:
            self._next_pointer = self._pointer
        elif transferred or self.rotate_on_stall:
            self._next_pointer = (granted + 1) % self.n
        else:
            self._next_pointer = self._pointer

    def commit(self) -> bool:
        """Apply the pointer update; True when the pointer actually moved."""
        if self._next_pointer is None:
            return False
        changed = self._next_pointer != self._pointer
        self._pointer = self._next_pointer
        self._next_pointer = None
        return changed

    def reset(self) -> None:
        self._pointer = 0
        self._next_pointer = None

    def area_items(self) -> list[tuple[str, int, int]]:
        # Rotating priority encoder + pointer register.
        bits = max(1, math.ceil(math.log2(self.n)))
        return [("ff", 1, bits), ("lut", 2 * self.n, 1)]


class FixedPriorityArbiter(RoundRobinArbiter):
    """Static-priority arbiter (lowest index wins).  Used in ablations to
    show why rotating priority is needed for per-thread fairness."""

    def __init__(self, n: int):
        super().__init__(n, rotate_on_stall=False)

    def note(self, granted: int | None, transferred: bool) -> None:
        self._next_pointer = 0

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", self.n, 1)]
