"""Structural full MEB: the literal micro-architecture of Fig. 4.

:class:`StructuralFullMEB` instantiates one real single-thread
:class:`~repro.elastic.buffer.ElasticBuffer` per thread, an input
demultiplexer, and an output arbiter + data mux — wire for wire the
figure's "replicating one EB per thread and adding an arbiter and a
multiplexer".  It exists to *validate* the flat behavioural
:class:`~repro.core.meb.FullMEB`: the property test in
``tests/test_core_structural.py`` drives both with identical random
traffic and asserts cycle-identical transfers.

(The flat model is what the rest of the library uses — it is ~5x faster
to simulate — but the structural build is the ground truth tying the
implementation back to the paper's figure.)
"""

from __future__ import annotations

from typing import Any

from repro.core.arbiter import GrantPolicy, RoundRobinArbiter
from repro.core.mtchannel import MTChannel
from repro.elastic.buffer import ElasticBuffer
from repro.elastic.channel import ElasticChannel
from repro.kernel.component import Component
from repro.kernel.errors import ProtocolError, SimulationError
from repro.kernel.values import X, as_bool


class _InputDemux(Component):
    """Steers the shared MT input onto the per-thread EB channels."""

    def __init__(self, name: str, up: MTChannel,
                 eb_ins: list[ElasticChannel], parent: Component):
        super().__init__(name, parent=parent)
        self.up = up
        self.eb_ins = eb_ins
        up.connect_consumer(self)
        self.declare_reads(up.valid, up.data)
        for ch in eb_ins:
            ch.connect_producer(self)
            self.declare_reads(ch.ready)

    def combinational(self) -> None:
        actives = [
            i for i in range(self.up.threads)
            if as_bool(self.up.valid[i].value)
        ]
        if len(actives) > 1:
            raise ProtocolError(
                f"{self.path}: {len(actives)} threads valid on {self.up.path}"
            )
        for i, ch in enumerate(self.eb_ins):
            take = bool(actives) and actives[0] == i
            ch.valid.set(take)
            ch.data.set(self.up.data.value if take else X)
            self.up.ready[i].set(as_bool(ch.ready.value))

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", self.up.threads, 1)]


class _OutputArbiterMux(Component):
    """Grants one per-thread EB output onto the shared MT channel."""

    def __init__(self, name: str, eb_outs: list[ElasticChannel],
                 down: MTChannel, policy: GrantPolicy,
                 parent: Component):
        super().__init__(name, parent=parent)
        self.eb_outs = eb_outs
        self.down = down
        self.policy = policy
        self.arbiter = RoundRobinArbiter(down.threads, rotate_on_stall=True)
        for ch in eb_outs:
            ch.connect_consumer(self)
            self.declare_reads(ch.valid, ch.data)
        down.connect_producer(self)
        self.declare_reads(down.ready)
        self._grant: int | None = None

    def combinational(self) -> None:
        valids = [as_bool(ch.valid.value) for ch in self.eb_outs]
        readies = [as_bool(sig.value) for sig in self.down.ready]
        requests = self.policy.requests(valids, readies)
        grant = self.arbiter.grant(requests)
        self._grant = grant
        for i, ch in enumerate(self.eb_outs):
            take = grant == i
            self.down.valid[i].set(take)
            ch.ready.set(take and readies[i])
        self.down.data.set(
            self.eb_outs[grant].data.value if grant is not None else X
        )

    def capture(self) -> None:
        transferred = (
            self._grant is not None
            and as_bool(self.down.ready[self._grant].value)
        )
        self.arbiter.note(self._grant, transferred)

    def commit(self) -> bool:
        return self.arbiter.commit()

    def reset(self) -> None:
        self.arbiter.reset()
        self._grant = None

    def area_items(self) -> list[tuple[str, int, int]]:
        s = self.down.threads
        items: list[tuple[str, int, int]] = [
            ("mux2", s - 1, self.down.width),
            ("lut", 2 * s, 1),
        ]
        items.extend(self.arbiter.area_items())
        return items


class StructuralFullMEB(Component):
    """Fig. 4 exactly: S elastic buffers + demux + arbiter + mux."""

    def __init__(
        self,
        name: str,
        up: MTChannel,
        down: MTChannel,
        policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if up.threads != down.threads:
            raise SimulationError(
                f"{name}: thread-count mismatch {up.threads} vs {down.threads}"
            )
        self.threads = up.threads
        self.up = up
        self.down = down
        width = down.width
        self._eb_ins = [
            ElasticChannel(f"in{i}", width=width, parent=self)
            for i in range(self.threads)
        ]
        self._eb_outs = [
            ElasticChannel(f"out{i}", width=width, parent=self)
            for i in range(self.threads)
        ]
        self.ebs = [
            ElasticBuffer(f"eb{i}", self._eb_ins[i], self._eb_outs[i],
                          parent=self)
            for i in range(self.threads)
        ]
        self.demux = _InputDemux("demux", up, self._eb_ins, parent=self)
        self.arb_mux = _OutputArbiterMux("arbmux", self._eb_outs, down,
                                         policy, parent=self)

    # Interface parity with the flat MEBs -------------------------------
    def occupancy(self, thread: int) -> int:
        return self.ebs[thread].occupancy

    def thread_state(self, thread: int) -> str:
        return self.ebs[thread].state

    def contents(self, thread: int) -> list[Any]:
        return self.ebs[thread].contents()

    def total_occupancy(self) -> int:
        return sum(eb.occupancy for eb in self.ebs)

    @property
    def total_slots(self) -> int:
        return 2 * self.threads

    def meb_components(self) -> list[Component]:
        return [self]
