"""Thread synchronization barrier (paper §IV-C, Fig. 8).

The barrier sits on a multithreaded elastic channel and blocks the data
flow until every participating thread has *arrived* (presented valid
data).  Implementation mirrors the paper's Fig. 8:

* a per-thread FSM with states IDLE → WAIT → FREE,
* a counter of arrived threads, compared against the participant count,
* a global ``go`` flag that flips when the last thread arrives; threads
  whose local ``lgo`` snapshot differs from ``go`` move to FREE.

While a thread is IDLE or WAIT the barrier keeps its ``ready`` low, so the
waiting data items stay parked in the upstream MEB; arrival is detected
from ``valid`` alone, which is why the upstream MEB must keep presenting
waiting threads (the fallback grant policy with rotate-on-stall, see
:mod:`repro.core.arbiter`).  Once FREE, a thread's handshake passes
through transparently until its transfer completes, returning it to IDLE
"waiting for the barrier to re-open".
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.core.mtchannel import MTChannel
from repro.kernel.component import Component
from repro.kernel.errors import SimulationError
from repro.kernel.slots import SeqPlan
from repro.kernel.values import as_bool, bools, same_value

IDLE = "IDLE"
WAIT = "WAIT"
FREE = "FREE"


class Barrier(Component):
    """MT-elastic barrier: releases all participants together.

    Parameters
    ----------
    participants:
        Thread indices that take part in the synchronization.  Defaults to
        all threads of the channel.  Non-participating threads pass
        through unsynchronized.
    on_release:
        Optional callback invoked (during commit) every time the barrier
        opens — the MD5 circuit uses it to advance its global round
        counter, the paper's "allowing the round counter to be
        incremented".
    """

    def __init__(
        self,
        name: str,
        up: MTChannel,
        down: MTChannel,
        participants: Sequence[int] | None = None,
        on_release: Callable[[int], None] | None = None,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if up.threads != down.threads:
            raise SimulationError(
                f"{name}: thread-count mismatch {up.threads} vs {down.threads}"
            )
        self.threads = up.threads
        self.up = up
        self.down = down
        if participants is None:
            participants = list(range(self.threads))
        self.participants = sorted(set(participants))
        if not self.participants:
            raise ValueError("barrier needs at least one participant")
        for t in self.participants:
            if not 0 <= t < self.threads:
                raise ValueError(f"participant {t} out of range")
        self.limit = len(self.participants)
        self._on_release = on_release
        up.connect_consumer(self)
        down.connect_producer(self)
        self.declare_reads(up.valid, up.data, down.ready)
        # Registered state, slot-backed: [fsm×S][count][go] (private
        # until compile_seq re-homes the block into the SeqStore); the
        # release counter is a pure statistic and stays a plain attribute.
        self._sstore: list = [IDLE] * self.threads + [0, False]
        self._sq = 0
        self._releases = 0
        self._next: tuple[list[str], int, bool] | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def _fsm(self) -> list[str]:
        b = self._sq
        return self._sstore[b:b + self.threads]

    @_fsm.setter
    def _fsm(self, fsm: list[str]) -> None:
        b = self._sq
        self._sstore[b:b + self.threads] = fsm

    @property
    def _count(self) -> int:
        return self._sstore[self._sq + self.threads]

    @_count.setter
    def _count(self, count: int) -> None:
        self._sstore[self._sq + self.threads] = count

    @property
    def _go(self) -> bool:
        return self._sstore[self._sq + self.threads + 1]

    @_go.setter
    def _go(self, go: bool) -> None:
        self._sstore[self._sq + self.threads + 1] = go

    def thread_state(self, thread: int) -> str:
        return self._sstore[self._sq + thread]

    @property
    def count(self) -> int:
        """Number of participants currently waiting at the barrier."""
        return self._count

    @property
    def go(self) -> bool:
        """The global go flag (flips on every release, paper Fig. 8)."""
        return self._go

    @property
    def releases(self) -> int:
        """How many times the barrier has opened since reset."""
        return self._releases

    def is_open_for(self, thread: int) -> bool:
        return (
            thread not in self.participants
            or self._sstore[self._sq + thread] == FREE
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def combinational(self) -> None:
        for t in range(self.threads):
            passing = self.is_open_for(t)
            vin = as_bool(self.up.valid[t].value)
            rin = as_bool(self.down.ready[t].value)
            self.down.valid[t].set(vin and passing)
            self.up.ready[t].set(rin and passing)
        self.down.data.set(self.up.data.value)

    def compile_comb(self, store):
        """Slot-compiled gating: per-thread pass masks ANDed as slices."""
        if type(self).combinational is not Barrier.combinational:
            return None
        up_valid = store.range_of(self.up.valid)
        up_ready = store.range_of(self.up.ready)
        down_valid = store.range_of(self.down.valid)
        down_ready = store.range_of(self.down.ready)
        up_data = store.slot_or_none(self.up.data)
        down_data = store.slot_or_none(self.down.data)
        if None in (up_valid, up_ready, down_valid, down_ready,
                    up_data, down_data):
            return None
        values = store.values
        dirty = store.dirty
        valid_readers = store.readers_of(self.down.valid)
        ready_readers = store.readers_of(self.up.ready)
        data_readers = store.readers_of((self.down.data,))
        uvb, uve = up_valid
        urb, ure = up_ready
        dvb, dve = down_valid
        drb, dre = down_ready
        participants = frozenset(self.participants)
        everyone = len(participants) == self.threads
        rng = range(self.threads)
        sstore = self._sstore
        fb = self._sq
        fe = fb + self.threads

        def step() -> bool:
            fsm = sstore[fb:fe]
            if everyone:
                passing = [state == FREE for state in fsm]
            else:
                passing = [
                    t not in participants or fsm[t] == FREE for t in rng
                ]
            in_valid = bools(values[uvb:uve])
            in_ready = bools(values[drb:dre])
            new_valid = [v and p for v, p in zip(in_valid, passing)]
            new_ready = [r and p for r, p in zip(in_ready, passing)]
            changed = False
            if values[dvb:dve] != new_valid:
                values[dvb:dve] = new_valid
                if valid_readers:
                    dirty.update(valid_readers)
                changed = True
            if values[urb:ure] != new_ready:
                values[urb:ure] = new_ready
                if ready_readers:
                    dirty.update(ready_readers)
                changed = True
            new_data = values[up_data]
            old = values[down_data]
            if old is not new_data and not same_value(old, new_data):
                values[down_data] = new_data
                if data_readers:
                    dirty.update(data_readers)
                changed = True
            return changed

        return step

    def compile_seq(self, seq):
        """Columnar tick plan: arrival masks in re-homed slots, slice
        reads of the handshake vectors, delta-gated on up-valid /
        up-ready / down-ready plus the state block."""
        cls = type(self)
        if cls.capture is not Barrier.capture or cls.commit is not Barrier.commit:
            return None
        store = seq.store
        up_valid = store.range_of(self.up.valid)
        up_ready = store.range_of(self.up.ready)
        down_ready = store.range_of(self.down.ready)
        if None in (up_valid, up_ready, down_ready):
            return None
        threads = self.threads
        fb = seq.alloc(self._sstore[self._sq:self._sq + threads + 2])
        self._sstore = seq.values
        self._sq = fb
        svalues = seq.values
        fe = fb + threads
        cb = fe
        gb = fe + 1
        values = store.values
        uvb, uve = up_valid
        urb, ure = up_ready
        participants = self.participants
        limit = self.limit
        on_release = self._on_release

        def capture(cycle) -> None:
            old_fsm = svalues[fb:fe]
            fsm = svalues[fb:fe]
            count = svalues[cb]
            released = False
            valids = bools(values[uvb:uve])
            readies = bools(values[urb:ure])
            # Transfers first: FREE threads whose item passed -> IDLE.
            for t in participants:
                if fsm[t] == FREE and valids[t] and readies[t]:
                    fsm[t] = IDLE
            # Arrivals gate on the pre-transition state (old_fsm) so the
            # item that just passed is not double counted.
            for t in participants:
                if old_fsm[t] == IDLE and valids[t]:
                    fsm[t] = WAIT
                    count += 1
            if count >= limit:
                count = 0
                released = True
                for t in participants:
                    if fsm[t] == WAIT:
                        fsm[t] = FREE
            self._next = (fsm, count, released)

        def commit() -> bool:
            nxt = self._next
            if nxt is None:
                return False
            fsm, count, released = nxt
            self._next = None
            changed = released or fsm != svalues[fb:fe]
            svalues[fb:fe] = fsm
            svalues[cb] = count
            if released:
                svalues[gb] = not svalues[gb]
                self._releases += 1
                if on_release is not None:
                    on_release(self._releases)
            return changed

        watch = (up_valid, up_ready, down_ready)
        return SeqPlan(self, capture, commit, watch,
                       state=((fb, gb + 1),))

    def capture(self) -> None:
        fsm = list(self._fsm)
        count = self._count
        released = False
        valids = self.up.valids()
        readies = self.up.readies()  # our own registered-state outputs
        # Transfers first: FREE threads whose item passed return to IDLE.
        for t in self.participants:
            if fsm[t] == FREE and valids[t] and readies[t]:
                fsm[t] = IDLE
        # Arrivals: an IDLE participant presenting valid data moves to
        # WAIT and bumps the counter (paper: load lgo(i), cntEn(i)).
        # Note `self._fsm` (pre-transition state) gates arrival detection
        # so the item that just passed is not double counted.
        for t in self.participants:
            if self._fsm[t] == IDLE and valids[t]:
                fsm[t] = WAIT
                count += 1
        if count >= self.limit:
            # Last thread arrived: counter resets, go flips, every WAIT
            # thread is released.
            count = 0
            released = True
            for t in self.participants:
                if fsm[t] == WAIT:
                    fsm[t] = FREE
        self._next = (fsm, count, released)

    def commit(self) -> bool:
        if self._next is None:
            return False
        fsm, count, released = self._next
        self._next = None
        changed = released or fsm != self._fsm
        self._fsm = fsm
        self._count = count
        if released:
            self._go = not self._go
            self._releases += 1
            if self._on_release is not None:
                self._on_release(self._releases)
        return changed

    def reset(self) -> None:
        self._fsm = [IDLE] * self.threads
        self._count = 0
        self._go = False
        self._releases = 0
        self._next = None

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def area_items(self) -> list[tuple[str, int, int]]:
        s = len(self.participants)
        counter_bits = max(1, math.ceil(math.log2(s + 1)))
        return [
            ("ff", s, 2),                  # per-thread FSM
            ("ff", s, 1),                  # lgo snapshots
            ("ff", 1, counter_bits),       # arrival counter
            ("ff", 1, 1),                  # go flag
            ("lut", 3 * s + counter_bits, 1),
        ]
