"""repro — reproduction of "Hardware Primitives for the Synthesis of
Multithreaded Elastic Systems" (Dimitrakopoulos et al., DATE 2014).

Package map
-----------
``repro.kernel``
    Cycle-accurate structural RTL simulator (two-phase evaluation).
``repro.elastic``
    Single-thread elastic substrate: channels, 2-slot elastic buffers,
    join/fork/branch/merge, variable-latency units, protocol monitors.
``repro.core``
    **The paper's contribution**: multithreaded elastic channels, the
    full and reduced MEBs, M-Join/M-Fork/M-Branch/M-Merge, the thread
    synchronization barrier, shared function units.
``repro.netlist``
    Dataflow-graph IR + elaboration to single- or multithreaded circuits.
``repro.cost``
    FPGA LE area and wire-delay timing models (the Table I substitution).
``repro.apps.md5`` / ``repro.apps.processor``
    The paper's two design examples, fully executable.
``repro.analysis``
    Throughput/equivalence measurement and figure rendering.

Quick start::

    from repro.core import MTChannel, MTSource, MTSink, ReducedMEB
    from repro.kernel import build

    a = MTChannel("a", threads=2)
    b = MTChannel("b", threads=2)
    src = MTSource("src", a, items=[[1, 2, 3], [10, 20]])
    meb = ReducedMEB("meb", a, b)
    snk = MTSink("snk", b)
    sim = build(a, b, src, meb, snk)
    sim.run(until=lambda s: snk.count == 5, max_cycles=100)
    assert snk.values_for(0) == [1, 2, 3]
"""

__version__ = "0.1.0"

__all__ = [
    "analysis",
    "apps",
    "core",
    "cost",
    "elastic",
    "kernel",
    "netlist",
]
