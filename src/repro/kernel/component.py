"""Component base class: the structural unit of a simulated circuit.

A component owns signals and implements up to three evaluation hooks:

``combinational()``
    Pure function from input-signal values to output-signal values.  Called
    repeatedly by the settle loop until the whole design is stable, so it
    must be idempotent and must not mutate registered state.

``capture()``
    Called once per cycle after the design has settled.  Reads settled
    signal values and stores the *next* register state internally.  Must
    not write any signal (this keeps register updates race-free regardless
    of component ordering).

``commit()``
    Called once per cycle after every component has captured.  Applies the
    stored next state and drives registered output signals.

Components form a tree (``parent``/``children``) so hierarchical designs
like the processor pipeline get readable hierarchical signal names and so
the cost model can aggregate per-subtree.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.kernel.errors import WiringError
from repro.kernel.signal import Signal
from repro.kernel.values import X


class Component:
    """Base class for all simulated hardware blocks."""

    def __init__(self, name: str, parent: "Component | None" = None):
        self.name = name
        self.parent = parent
        self.children: list[Component] = []
        self._signals: dict[str, Signal] = {}
        if parent is not None:
            parent._add_child(self)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _add_child(self, child: "Component") -> None:
        for existing in self.children:
            if existing.name == child.name:
                raise WiringError(
                    f"component {self.name!r} already has a child named "
                    f"{child.name!r}"
                )
        self.children.append(child)

    @property
    def path(self) -> str:
        """Hierarchical dotted path from the root component."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def iter_tree(self) -> Iterator["Component"]:
        """Yield this component and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    # ------------------------------------------------------------------
    # signal management
    # ------------------------------------------------------------------
    def signal(self, name: str, width: int = 1, init: Any = X) -> Signal:
        """Create and register a signal owned (not necessarily driven) here."""
        if name in self._signals:
            raise WiringError(
                f"component {self.name!r} already owns a signal {name!r}"
            )
        sig = Signal(f"{self.path}.{name}", width=width, init=init)
        self._signals[name] = sig
        return sig

    def output(self, name: str, width: int = 1, init: Any = X) -> Signal:
        """Create a signal and mark this component as its driver."""
        sig = self.signal(name, width=width, init=init)
        sig.set_driver(self)
        return sig

    def adopt(self, sig: Signal, local_name: str | None = None) -> Signal:
        """Register an externally created signal under this component."""
        key = local_name if local_name is not None else sig.name
        if key in self._signals:
            raise WiringError(
                f"component {self.name!r} already owns a signal {key!r}"
            )
        self._signals[key] = sig
        return sig

    def local_signals(self) -> dict[str, Signal]:
        """Signals owned directly by this component (no descendants)."""
        return dict(self._signals)

    def all_signals(self) -> list[Signal]:
        """Every signal owned by this component or any descendant."""
        out: list[Signal] = []
        for comp in self.iter_tree():
            out.extend(comp._signals.values())
        return out

    # ------------------------------------------------------------------
    # evaluation hooks (overridden by subclasses)
    # ------------------------------------------------------------------
    def combinational(self) -> None:
        """Compute combinational outputs from current signal values."""

    def capture(self) -> None:
        """Latch next register state from settled signals (no signal writes)."""

    def commit(self) -> None:
        """Apply captured state; drive registered output signals."""

    def reset(self) -> None:
        """Return registered state to its power-on value."""

    # ------------------------------------------------------------------
    # cost-model hook
    # ------------------------------------------------------------------
    def area_items(self) -> list[tuple[str, int, int]]:
        """Structural inventory for the cost model.

        Returns a list of ``(kind, count, width)`` triples where *kind* is
        one of the primitive names understood by
        :class:`repro.cost.model.AreaModel` (``"ff"``, ``"mux2"``,
        ``"lut"``, ...).  The default is an empty inventory; leaf
        primitives override this.  Aggregation over a subtree is done by
        the cost model, not here.
        """
        return []

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.path}>"
