"""Component base class: the structural unit of a simulated circuit.

A component owns signals and implements up to three evaluation hooks:

``combinational()``
    Pure function from input-signal values to output-signal values.  Called
    repeatedly by the settle loop until the whole design is stable, so it
    must be idempotent and must not mutate registered state.

``capture()``
    Called once per cycle after the design has settled.  Reads settled
    signal values and stores the *next* register state internally.  Must
    not write any signal (this keeps register updates race-free regardless
    of component ordering).

``commit()``
    Called once per cycle after every component has captured.  Applies the
    stored next state and drives registered output signals.

Components form a tree (``parent``/``children``) so hierarchical designs
like the processor pipeline get readable hierarchical signal names and so
the cost model can aggregate per-subtree.

Dependency declarations
-----------------------

The event-driven settle engine (see :mod:`repro.kernel.engine`) schedules
``combinational()`` calls from a static signal dependency graph.  The
*write* side of that graph is already known — every driven signal records
its driver through :meth:`Component.output` /
:meth:`repro.kernel.signal.Signal.set_driver`.  The *read* side is
declared with :meth:`Component.declare_reads`: the set of signals a
component's ``combinational()`` may ever read, across all internal
states.  Declared components are evaluated exactly once per settle in
dependency order and re-evaluated only when a declared input actually
changes.  Components that do not declare (e.g. ad-hoc test helpers) still
work — the engine falls back to naive repeated evaluation for them — but
they forgo the scheduling win.  Over-declaring is always safe (it can
only cause harmless extra re-evaluation); under-declaring is a
correctness bug, so declare the union over every internal state.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.kernel.errors import EnsembleUnsupported, WiringError
from repro.kernel.signal import Signal
from repro.kernel.values import X


class Component:
    """Base class for all simulated hardware blocks."""

    #: Ensemble-safety contract (see :mod:`repro.kernel.ensemble`).
    #:
    #: ``"opaque"``  — the component moves data payloads by reference and
    #: never inspects them, so a row of K per-lane values flows through it
    #: unchanged and the component is ensemble-safe as-is.
    #: ``"lift"``    — the component inspects payloads through callables
    #: that :meth:`ensemble_lift` can rebind to lane-wise lifted forms.
    #: ``"unsafe"``  — the default: payload handling cannot be proven
    #: lane-independent (data-dependent latency, cross-thread context,
    #: tuple-building joins, ...); ensembles must fall back to serial.
    ENSEMBLE_DATA = "unsafe"

    def __init__(self, name: str, parent: "Component | None" = None):
        self.name = name
        self.parent = parent
        self.children: list[Component] = []
        self._signals: dict[str, Signal] = {}
        self._comb_reads: tuple[Signal, ...] | None = None
        self._comb_volatile = False
        self._engine_hook: Any = None
        self._seq_hook: Any = None
        if parent is not None:
            parent._add_child(self)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _add_child(self, child: "Component") -> None:
        for existing in self.children:
            if existing.name == child.name:
                raise WiringError(
                    f"component {self.name!r} already has a child named "
                    f"{child.name!r}"
                )
        self.children.append(child)

    @property
    def path(self) -> str:
        """Hierarchical dotted path from the root component."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def iter_tree(self) -> Iterator["Component"]:
        """Yield this component and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    # ------------------------------------------------------------------
    # signal management
    # ------------------------------------------------------------------
    def signal(self, name: str, width: int = 1, init: Any = X) -> Signal:
        """Create and register a signal owned (not necessarily driven) here."""
        if name in self._signals:
            raise WiringError(
                f"component {self.name!r} already owns a signal {name!r}"
            )
        sig = Signal(f"{self.path}.{name}", width=width, init=init)
        self._signals[name] = sig
        return sig

    def output(self, name: str, width: int = 1, init: Any = X) -> Signal:
        """Create a signal and mark this component as its driver."""
        sig = self.signal(name, width=width, init=init)
        sig.set_driver(self)
        return sig

    def adopt(self, sig: Signal, local_name: str | None = None) -> Signal:
        """Register an externally created signal under this component."""
        key = local_name if local_name is not None else sig.name
        if key in self._signals:
            raise WiringError(
                f"component {self.name!r} already owns a signal {key!r}"
            )
        self._signals[key] = sig
        return sig

    def local_signals(self) -> dict[str, Signal]:
        """Signals owned directly by this component (no descendants)."""
        return dict(self._signals)

    # ------------------------------------------------------------------
    # dependency declaration (consumed by the event settle engine)
    # ------------------------------------------------------------------
    def declare_reads(self, *signals: Signal | Iterable[Signal]) -> None:
        """Declare the signals ``combinational()`` may read.

        Accepts :class:`Signal` objects and/or iterables of them; repeated
        calls accumulate.  Call with **no arguments** to declare that the
        component reads no signals combinationally (a registered-output
        component such as an elastic buffer).  The declaration must cover
        every signal the method could read in *any* internal state — a
        state-dependent read (e.g. a half-buffer consulting downstream
        ``ready`` only while full) still belongs in the set.
        """
        flat: list[Signal] = []
        for entry in signals:
            if isinstance(entry, Signal):
                flat.append(entry)
            else:
                flat.extend(entry)
        existing = list(self._comb_reads) if self._comb_reads else []
        seen = {id(sig) for sig in existing}
        for sig in flat:
            if id(sig) not in seen:
                seen.add(id(sig))
                existing.append(sig)
        self._comb_reads = tuple(existing)

    @property
    def declared_reads(self) -> "tuple[Signal, ...] | None":
        """Declared combinational read set, or None when undeclared."""
        return self._comb_reads

    def declare_volatile(self) -> None:
        """Mark ``combinational()`` as depending on non-signal state.

        A volatile component is re-evaluated on every settle even when
        none of its declared inputs changed and its own commit reported
        no state change.  Use it when the combinational function closes
        over mutable context outside the signal graph — e.g. a shared
        register file or a global round counter mutated by another
        component's capture/commit.
        """
        self._comb_volatile = True

    @property
    def volatile(self) -> bool:
        return self._comb_volatile

    def invalidate(self) -> None:
        """Force re-evaluation of ``combinational()`` at the next settle.

        Call this from any out-of-band mutator (``push``, ``block``,
        mid-simulation configuration) that changes state the settle
        engine cannot observe through signals or :meth:`commit` reports.
        Also re-arms this component's compiled tick plan (if any), so a
        delta-skipped capture cannot miss the mutation.  No-op before
        the simulator is finalized (everything starts stale) and under
        the naive engine.
        """
        hook = self._engine_hook
        if hook is not None:
            hook[0].mark_stale(hook[1])
        seq_hook = self._seq_hook
        if seq_hook is not None:
            seq_hook.invalidate()

    def all_signals(self) -> list[Signal]:
        """Every signal owned by this component or any descendant."""
        out: list[Signal] = []
        for comp in self.iter_tree():
            out.extend(comp._signals.values())
        return out

    # ------------------------------------------------------------------
    # evaluation hooks (overridden by subclasses)
    # ------------------------------------------------------------------
    def combinational(self) -> None:
        """Compute combinational outputs from current signal values."""

    def compile_comb(self, store: Any) -> "Any | None":
        """Return a slot-compiled evaluation closure, or None.

        Called once at finalize time by the compiled settle engine with
        the design's :class:`~repro.kernel.slots.SlotStore`.  A component
        may return a zero-argument callable that is *behaviourally
        identical* to :meth:`combinational` but reads and writes
        ``store.values`` slots directly (typically with batched slice
        operations over packed handshake blocks).  The callable has two
        obligations:

        * whenever it changes a signal's value (under
          :func:`~repro.kernel.values.same_value` semantics) it must add
          ``store.readers_of(<the changed signals>)`` — resolved once at
          compile time — to ``store.dirty``, the slot-level analogue of
          ``Signal.set`` notifying declared readers;
        * it should return a truthy value iff it changed at least one
          output (diagnostics and tests rely on it; the engine schedules
          purely from the dirty marks).

        Returning ``None`` (the default) makes the engine fall back to
        calling :meth:`combinational` through the Signal API — always
        correct, just without the slot-level speedup.  Implementations
        should return ``None`` whenever an assumption does not hold
        (non-contiguous signal blocks, subclass overrides of the methods
        they inline, ...) rather than approximate.
        """
        return None

    def compile_seq(self, seq: Any) -> "Any | None":
        """Return a tick-phase :class:`~repro.kernel.slots.SeqPlan`, or None.

        The sibling of :meth:`compile_comb`, called once per engine
        build by the simulator (compiled engine only, and only when
        ``compile_seq`` is enabled) with the design's
        :class:`~repro.kernel.slots.SeqStore`.  A component may:

        * re-home its registered state into a block of ``seq.values``
          via :meth:`SeqStore.alloc` (state must then be read/written
          through the component's own ``(_sstore, base)`` indirection so
          every engine and every introspection path observes the same
          cells — the sequential analogue of Signal re-homing);
        * return a :class:`~repro.kernel.slots.SeqPlan` whose
          ``capture``/``commit`` steps are behaviourally identical to
          :meth:`capture`/:meth:`commit` and whose ``watch`` ranges
          cover **every signal the capture step may read in any internal
          state** (the capture-side analogue of :meth:`declare_reads` —
          under-declaring the watch set is a correctness bug).

        The plan's capture/commit must be pure functions of (watched
        signals, registered state, the passed cycle number): no hidden
        per-cycle side effects outside the ``repeat`` hook.  Out-of-band
        mutations must go through :meth:`invalidate`, which re-arms the
        plan.  Returning ``None`` (the default) keeps the component on
        the legacy per-cycle ``capture()``/``commit()`` dispatch —
        always correct — and implementations must return ``None`` rather
        than approximate whenever an assumption fails (overridden
        capture/commit, unresolvable slots, ...).
        """
        return None

    def ensemble_lift(self, ctx: Any) -> None:
        """Rebind data-inspecting callables to lane-wise lifted forms.

        Called once per design by :func:`repro.kernel.ensemble.lift_simulator`
        with an :class:`~repro.kernel.ensemble.EnsembleContext` for every
        component whose :attr:`ENSEMBLE_DATA` is ``"lift"``.  After lifting,
        the simulator is rebuilt so compiled closures pick up the rebound
        callables.  ``"opaque"`` components need no lifting (this default is
        a no-op for them); ``"unsafe"`` components raise.
        """
        if self.ENSEMBLE_DATA != "opaque":
            raise EnsembleUnsupported(
                f"{self.path} ({type(self).__name__}) is not ensemble-safe "
                f"(ENSEMBLE_DATA={self.ENSEMBLE_DATA!r})"
            )

    def capture(self) -> None:
        """Latch next register state from settled signals (no signal writes)."""

    def commit(self) -> "bool | None":
        """Apply captured state; drive registered output signals.

        May return whether the commit actually changed state the
        component's ``combinational()`` depends on: ``False`` lets the
        event settle engine skip the next re-evaluation entirely,
        ``True`` forces one, and ``None`` (the default, and what any
        legacy override returns implicitly) is treated as "unknown —
        assume changed".  Returning ``False`` when state did change is a
        correctness bug; when unsure, return nothing.
        """

    def reset(self) -> None:
        """Return registered state to its power-on value."""

    # ------------------------------------------------------------------
    # cost-model hook
    # ------------------------------------------------------------------
    def area_items(self) -> list[tuple[str, int, int]]:
        """Structural inventory for the cost model.

        Returns a list of ``(kind, count, width)`` triples where *kind* is
        one of the primitive names understood by
        :class:`repro.cost.model.AreaModel` (``"ff"``, ``"mux2"``,
        ``"lut"``, ...).  The default is an empty inventory; leaf
        primitives override this.  Aggregation over a subtree is done by
        the cost model, not here.
        """
        return []

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.path}>"
