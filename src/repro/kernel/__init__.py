"""Cycle-accurate structural RTL simulation kernel.

This package is the substrate everything else in :mod:`repro` stands on:
a small synchronous-hardware simulator with two-phase evaluation
(combinational fixed point, then race-free register capture/commit).  See
:mod:`repro.kernel.simulator` for the evaluation model.
"""

from repro.kernel.component import Component
from repro.kernel.engine import ENGINES, CompiledEngine, EventEngine, NaiveEngine
from repro.kernel.ensemble import (
    POISON,
    EnsembleContext,
    EnsembleSimulator,
    lift_simulator,
)
from repro.kernel.errors import (
    ConvergenceError,
    EnsembleDivergence,
    EnsembleUnsupported,
    FusionBlockedError,
    KernelError,
    ProtocolError,
    SimulationError,
    SnapshotError,
    WiringError,
)
from repro.kernel.signal import Signal, const
from repro.kernel.simulator import Simulator, WatchedPredicate, build
from repro.kernel.slots import SeqPlan, SeqStore, SlotStore
from repro.kernel.snapshot import SimSnapshot
from repro.kernel.trace import TraceRecorder, trace_signals
from repro.kernel.values import X, as_bool, bit, is_x, onehot_index, popcount, same_value

__all__ = [
    "CompiledEngine",
    "Component",
    "ConvergenceError",
    "ENGINES",
    "EnsembleContext",
    "EnsembleDivergence",
    "EnsembleSimulator",
    "EnsembleUnsupported",
    "EventEngine",
    "FusionBlockedError",
    "NaiveEngine",
    "KernelError",
    "POISON",
    "ProtocolError",
    "SimSnapshot",
    "SimulationError",
    "Signal",
    "Simulator",
    "SnapshotError",
    "SeqPlan",
    "SeqStore",
    "SlotStore",
    "TraceRecorder",
    "WatchedPredicate",
    "WiringError",
    "X",
    "lift_simulator",
    "as_bool",
    "bit",
    "build",
    "const",
    "is_x",
    "onehot_index",
    "popcount",
    "same_value",
    "trace_signals",
]
