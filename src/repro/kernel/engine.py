"""Settle engines: strategies for reaching the combinational fixed point.

The simulator delegates its settle phase to one of two interchangeable
engines, selected with ``Simulator(engine=...)``:

``NaiveEngine`` (the seed behaviour, kept as a differential-testing
oracle)
    Evaluates *every* component's ``combinational()`` in registration
    order, snapshots every signal, and repeats until a whole pass
    produces no net change — O(components x iterations) work per cycle
    plus an O(signals) snapshot per iteration.

``EventEngine`` (the default)
    Builds a static dependency graph at finalize time from the
    components' declared read sets (:meth:`Component.declare_reads`) and
    the recorded signal drivers, collapses it into strongly connected
    components, and orders the SCC condensation topologically
    (:mod:`repro.graphs`).  A settle is then:

    * one sweep over the SCCs in dependency order — acyclic regions
      converge in this single sweep by construction;
    * cyclic regions (combinational handshake loops such as
      lazy-fork/join meshes or the elastic rings of the MD5 and
      processor apps) iterate a **dirty-set worklist** to a local fixed
      point: a member is re-evaluated only when one of its declared
      inputs actually changed, which :meth:`Signal.set` reports straight
      into the engine;
    * components whose ``combinational`` is not overridden (channels,
      monitors, memories) are never visited at all.

    Components that never declared a read set are scheduled the naive
    way — evaluated every pass until the design is globally stable — so
    ad-hoc user components remain correct, just unoptimized.  A design
    built purely from declared components settles with **zero**
    full-design stability passes and no signal snapshots.

Both engines preserve the kernel's contract exactly: same fixed points,
same :class:`ConvergenceError` (with ``iterations`` equal to the budget
and the still-unstable signal names) on true combinational loops.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.graphs import condensation_order
from repro.kernel.component import Component
from repro.kernel.errors import ConvergenceError
from repro.kernel.signal import Signal
from repro.kernel.values import same_value

#: Engine names accepted by :class:`repro.kernel.simulator.Simulator`.
ENGINES = ("event", "naive")


class NaiveEngine:
    """Whole-design fixed-point iteration (the original settle loop)."""

    name = "naive"
    #: Naive settling never uses the Signal.set fast notification path.
    recording = False

    def __init__(
        self,
        components: Sequence[Component],
        signals: Sequence[Signal],
        max_iterations: int,
    ):
        self._components = list(components)
        self._signals = list(signals)
        self._max_iterations = int(max_iterations)

    def settle(self, cycle: int) -> int:
        for iteration in range(1, self._max_iterations + 1):
            # Convergence is judged on net change across the whole pass,
            # so a component may harmlessly clear-then-set a signal within
            # one evaluation (a common idiom in demux-style logic).
            before = [sig.value for sig in self._signals]
            for comp in self._components:
                comp.combinational()
            changed = [
                sig.name
                for sig, old in zip(self._signals, before)
                if not same_value(sig.value, old)
            ]
            if not changed:
                return iteration
        raise ConvergenceError(cycle, self._max_iterations, changed)


class EventEngine:
    """Dependency-ordered, change-driven settling."""

    name = "event"

    def __init__(
        self,
        components: Sequence[Component],
        signals: Sequence[Signal],
        max_iterations: int,
    ):
        self._max_iterations = int(max_iterations)
        #: True only while a settle is in flight; Signal.set checks it.
        self.recording = False

        base = Component.combinational
        active: list[Component] = []
        opaque: list[Component] = []
        for comp in components:
            if type(comp).combinational is base:
                continue  # inert: nothing to evaluate during settle
            if comp.declared_reads is None:
                opaque.append(comp)
            else:
                active.append(comp)
        self._active = active
        self._opaque = opaque
        self._evals = [comp.combinational for comp in active]
        n = len(active)

        # A component is re-evaluated on every settle (not only when an
        # input changed) when it says so (declare_volatile) or when its
        # state updates are unobservable: it captures state but its
        # commit cannot report changes.
        self._volatile = [
            comp.volatile
            or (
                type(comp).capture is not Component.capture
                and type(comp).commit is Component.commit
            )
            for comp in active
        ]

        # signal -> indices of declared readers; component -> successors.
        index_of = {id(comp): i for i, comp in enumerate(active)}
        readers: dict[int, list[int]] = {}
        for i, comp in enumerate(active):
            for sig in comp.declared_reads or ():
                readers.setdefault(id(sig), []).append(i)
        succ: list[list[int]] = [[] for _ in range(n)]
        for sig in signals:
            driver = sig.driver
            if driver is None:
                continue
            writer = index_of.get(id(driver))
            if writer is None:
                continue
            for reader in readers.get(id(sig), ()):
                if reader not in succ[writer]:
                    succ[writer].append(reader)

        # Groups in forward topological order; a group needs local
        # iteration when it is a real SCC or a self-dependent singleton.
        groups = condensation_order(succ)
        self._groups: list[tuple[list[int], bool]] = [
            (grp, len(grp) > 1 or grp[0] in succ[grp[0]]) for grp in groups
        ]

        # Hook every readable signal up to this engine so Signal.set can
        # report real value changes during a settle.
        self._dirty = [False] * n
        self._ndirty = 0
        # Cross-cycle staleness: a component is stale when its commit
        # reported (or could not rule out) a state change, when an input
        # signal was written outside a settle (a test poking a wire), or
        # when it was explicitly invalidated.  Everything starts stale.
        self._stale = [True] * n
        self._index_by_id = index_of
        for i, comp in enumerate(active):
            comp._engine_hook = (self, i)
        # id(sig) -> (sig, value at first change of the current pass /
        # sub-iteration).  Net change is judged against these baselines
        # so a transient clear-then-set within one evaluation (a common
        # idiom in demux-style logic) does not count as instability —
        # exactly the naive engine's snapshot semantics, but touching
        # only the signals that actually moved.
        self._pass_base: dict[int, tuple[Signal, Any]] = {}
        self._sub_base: dict[int, tuple[Signal, Any]] | None = None
        for sig in signals:
            sig._engine = self
            sig._readers = tuple(readers.get(id(sig), ()))

    # ------------------------------------------------------------------
    # change notification (called by Signal.set while recording)
    # ------------------------------------------------------------------
    def note_change(self, sig: Signal, old: Any) -> None:
        if not self.recording:
            # Out-of-settle write (a test or driver poking a wire):
            # remember the affected readers for the next settle.
            stale = self._stale
            for reader in sig._readers:
                stale[reader] = True
            return
        key = id(sig)
        if key not in self._pass_base:
            self._pass_base[key] = (sig, old)
        sub = self._sub_base
        if sub is not None and key not in sub:
            sub[key] = (sig, old)
        dirty = self._dirty
        for reader in sig._readers:
            if not dirty[reader]:
                dirty[reader] = True
                self._ndirty += 1

    # ------------------------------------------------------------------
    # cross-cycle staleness
    # ------------------------------------------------------------------
    def mark_stale(self, index: int) -> None:
        """Schedule one component for re-evaluation at the next settle."""
        self._stale[index] = True

    def invalidate_all(self) -> None:
        """Schedule every component for re-evaluation (e.g. after reset)."""
        self._stale = [True] * len(self._stale)

    def note_state_change(self, comp: Component) -> None:
        """Called per cycle for each component whose commit changed state."""
        index = self._index_by_id.get(id(comp))
        if index is not None:
            self._stale[index] = True

    @staticmethod
    def _net_changed(base: dict[int, tuple[Signal, Any]]) -> list[str]:
        """Names of signals whose value differs from their baseline."""
        return [
            sig.name
            for sig, old in base.values()
            if not same_value(sig.value, old)
        ]

    # ------------------------------------------------------------------
    # settle
    # ------------------------------------------------------------------
    def settle(self, cycle: int) -> int:
        dirty = self._dirty
        stale = self._stale
        volatile = self._volatile
        evals = self._evals
        budget = self._max_iterations
        # Seed the dirty set: components whose state changed at the last
        # commit (or that cannot prove otherwise), volatile components,
        # externally poked readers, and anything left over from an
        # aborted settle.  Everything else still holds correct settled
        # outputs from the previous cycle and is left alone.
        ndirty = 0
        for i in range(len(dirty)):
            if dirty[i] or stale[i] or volatile[i]:
                dirty[i] = True
                ndirty += 1
            stale[i] = False
        self._ndirty = ndirty
        self._pass_base = {}
        self._sub_base = None
        self.recording = True
        worst_local = 1
        passes = 0
        try:
            while True:
                passes += 1
                if passes > budget:
                    raise ConvergenceError(
                        cycle, budget, self._net_changed(self._pass_base)
                    )
                self._pass_base = {}
                for group, cyclic in self._groups:
                    if self._ndirty == 0:
                        break
                    if not cyclic:
                        i = group[0]
                        if dirty[i]:
                            dirty[i] = False
                            self._ndirty -= 1
                            evals[i]()
                        continue
                    # Cyclic region: Gauss-Seidel sweeps in fixed order.
                    # Dirtiness is checked at visit time, so a member
                    # dirtied mid-sweep by an earlier member is evaluated
                    # in the *same* sweep — values propagate coherently
                    # along the cycle exactly as in a naive full pass
                    # (deferring them can chase a stale snapshot around
                    # the loop forever, e.g. an arbiter following the
                    # ready echo of its own previous grant).
                    local = 0
                    last_sub: dict[int, tuple[Signal, Any]] = {}
                    while any(dirty[i] for i in group):
                        local += 1
                        if local > budget:
                            raise ConvergenceError(
                                cycle, budget, self._net_changed(last_sub)
                            )
                        self._sub_base = last_sub = {}
                        for i in group:
                            if dirty[i]:
                                dirty[i] = False
                                self._ndirty -= 1
                                evals[i]()
                    self._sub_base = None
                    if local > worst_local:
                        worst_local = local
                if not self._opaque:
                    if self._ndirty == 0:
                        return max(passes, worst_local)
                    continue  # stray feedback outside the graph: resweep
                for comp in self._opaque:
                    comp.combinational()
                if self._ndirty == 0 and not self._net_changed(self._pass_base):
                    return max(passes, worst_local)
        finally:
            self.recording = False


def make_engine(
    name: str,
    components: Sequence[Component],
    signals: Sequence[Signal],
    max_iterations: int,
) -> NaiveEngine | EventEngine:
    """Instantiate the settle engine called *name* (see :data:`ENGINES`)."""
    if name == "event":
        return EventEngine(components, signals, max_iterations)
    if name == "naive":
        return NaiveEngine(components, signals, max_iterations)
    raise ValueError(
        f"unknown settle engine {name!r}; expected one of {ENGINES}"
    )
