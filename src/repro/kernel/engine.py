"""Settle engines: strategies for reaching the combinational fixed point.

The simulator delegates its settle phase to one of three interchangeable
engines, selected with ``Simulator(engine=...)``:

``NaiveEngine`` (the seed behaviour, kept as a differential-testing
oracle)
    Evaluates *every* component's ``combinational()`` in registration
    order, snapshots every signal, and repeats until a whole pass
    produces no net change — O(components x iterations) work per cycle
    plus an O(signals) snapshot per iteration.

``EventEngine``
    Builds a static dependency graph at finalize time from the
    components' declared read sets (:meth:`Component.declare_reads`) and
    the recorded signal drivers, collapses it into strongly connected
    components, and orders the SCC condensation topologically
    (:mod:`repro.graphs`).  A settle is then:

    * one sweep over the SCCs in dependency order — acyclic regions
      converge in this single sweep by construction;
    * cyclic regions (combinational handshake loops such as
      lazy-fork/join meshes or the elastic rings of the MD5 and
      processor apps) iterate a **dirty-set worklist** to a local fixed
      point: a member is re-evaluated only when one of its declared
      inputs actually changed, which :meth:`Signal.set` reports straight
      into the engine;
    * components whose ``combinational`` is not overridden (channels,
      monitors, memories) are never visited at all.

    Components that never declared a read set are scheduled the naive
    way — evaluated every pass until the design is globally stable — so
    ad-hoc user components remain correct, just unoptimized.  A design
    built purely from declared components settles with **zero**
    full-design stability passes and no signal snapshots.

``CompiledEngine`` (the default)
    The event engine wins by scheduling *fewer* evaluations; on dense
    designs (the paper's elastic rings switch ~74% of components every
    cycle) the bound becomes the *cost of each Python evaluation*.  The
    compiled engine attacks that cost instead: at finalize time every
    signal is assigned a slot in a flat list-backed value store
    (:mod:`repro.kernel.slots`) and each maximal run of acyclic SCCs is
    fused into **one generated straight-line function** that invokes the
    member evaluations back to back with no scheduling bookkeeping in
    between.  Component evaluations themselves come from
    :meth:`Component.compile_comb` where available — slot-indexed,
    batch-vectorized closures (an MEB reads its S downstream readies as
    one slice and writes its S ``valid`` wires with one slice
    compare-and-assign, marking the declared readers of a block only
    when it really changed) — and fall back to the plain
    ``combinational()`` method otherwise.  Cyclic SCCs keep the event
    engine's dirty-set worklist, but over plain component ints instead
    of objects.  Scheduling state is two int-sets (in-settle dirty,
    cross-cycle stale) fed by ``commit()`` change reports,
    ``declare_volatile``, ``invalidate()`` and the compiled steps' block
    change marks — the same scheduling contract as the event engine at a
    fraction of the per-evaluation and per-notification cost.

All engines preserve the kernel's contract exactly: same fixed points,
same :class:`ConvergenceError` (with ``iterations`` equal to the budget
and the still-unstable signal names) on true combinational loops.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.graphs import condensation_order
from repro.kernel.component import Component
from repro.kernel.errors import ConvergenceError
from repro.kernel.signal import Signal
from repro.kernel.slots import SlotStore
from repro.kernel.values import same_value

#: Engine names accepted by :class:`repro.kernel.simulator.Simulator`.
ENGINES = ("compiled", "event", "naive")


def _split_components(
    components: Sequence[Component],
) -> tuple[list[Component], list[Component]]:
    """Partition into (declared-active, opaque) evaluatable components.

    Components that never override ``combinational`` are inert and appear
    in neither list; components with an overridden ``combinational`` but
    no declared read set are *opaque* and must be settled the naive way.
    """
    base = Component.combinational
    active: list[Component] = []
    opaque: list[Component] = []
    for comp in components:
        if type(comp).combinational is base:
            continue  # inert: nothing to evaluate during settle
        if comp.declared_reads is None:
            opaque.append(comp)
        else:
            active.append(comp)
    return active, opaque


def _dependency_graph(
    active: Sequence[Component],
    signals: Sequence[Signal],
    index_of: dict[int, int],
) -> tuple[dict[int, list[int]], list[list[int]]]:
    """Build (signal-id -> reader indices, component successor lists).

    *index_of* maps ``id(component)`` to its position in *active*; the
    caller builds it once and shares it with its own bookkeeping.
    """
    readers: dict[int, list[int]] = {}
    for i, comp in enumerate(active):
        for sig in comp.declared_reads or ():
            readers.setdefault(id(sig), []).append(i)
    succ: list[list[int]] = [[] for _ in range(len(active))]
    for sig in signals:
        driver = sig.driver
        if driver is None:
            continue
        writer = index_of.get(id(driver))
        if writer is None:
            continue
        for reader in readers.get(id(sig), ()):
            if reader not in succ[writer]:
                succ[writer].append(reader)
    return readers, succ


class NaiveEngine:
    """Whole-design fixed-point iteration (the original settle loop)."""

    name = "naive"
    #: Naive settling never uses the Signal.set fast notification path.
    recording = False

    def __init__(
        self,
        components: Sequence[Component],
        signals: Sequence[Signal],
        max_iterations: int,
        profiler=None,
    ):
        self._components = list(components)
        self._signals = list(signals)
        self._max_iterations = int(max_iterations)
        self._evals = [
            profiler.wrap_comb(comp.combinational, comp.path)
            if profiler is not None
            else comp.combinational
            for comp in self._components
        ]

    def settle(self, cycle: int) -> int:
        for iteration in range(1, self._max_iterations + 1):
            # Convergence is judged on net change across the whole pass,
            # so a component may harmlessly clear-then-set a signal within
            # one evaluation (a common idiom in demux-style logic).
            before = [sig.value for sig in self._signals]
            for evaluate in self._evals:
                evaluate()
            changed = [
                sig.name
                for sig, old in zip(self._signals, before)
                if not same_value(sig.value, old)
            ]
            if not changed:
                return iteration
        raise ConvergenceError(cycle, self._max_iterations, changed)


class EventEngine:
    """Dependency-ordered, change-driven settling."""

    name = "event"

    def __init__(
        self,
        components: Sequence[Component],
        signals: Sequence[Signal],
        max_iterations: int,
        profiler=None,
    ):
        self._max_iterations = int(max_iterations)
        #: True only while a settle is in flight; Signal.set checks it.
        self.recording = False

        active, opaque = _split_components(components)
        self._active = active
        self._opaque = opaque
        if profiler is not None:
            self._evals = [
                profiler.wrap_comb(comp.combinational, comp.path)
                for comp in active
            ]
            self._opaque_evals = [
                profiler.wrap_comb(comp.combinational, comp.path)
                for comp in opaque
            ]
        else:
            self._evals = [comp.combinational for comp in active]
            self._opaque_evals = [comp.combinational for comp in opaque]
        n = len(active)

        # A component is re-evaluated on every settle (not only when an
        # input changed) when it says so (declare_volatile) or when its
        # state updates are unobservable: it captures state but its
        # commit cannot report changes.
        self._volatile = [
            comp.volatile
            or (
                type(comp).capture is not Component.capture
                and type(comp).commit is Component.commit
            )
            for comp in active
        ]

        # signal -> indices of declared readers; component -> successors.
        index_of = {id(comp): i for i, comp in enumerate(active)}
        readers, succ = _dependency_graph(active, signals, index_of)

        # Groups in forward topological order; a group needs local
        # iteration when it is a real SCC or a self-dependent singleton.
        groups = condensation_order(succ)
        self._groups: list[tuple[list[int], bool]] = [
            (grp, len(grp) > 1 or grp[0] in succ[grp[0]]) for grp in groups
        ]

        # Hook every readable signal up to this engine so Signal.set can
        # report real value changes during a settle.
        self._dirty = [False] * n
        self._ndirty = 0
        # Cross-cycle staleness: a component is stale when its commit
        # reported (or could not rule out) a state change, when an input
        # signal was written outside a settle (a test poking a wire), or
        # when it was explicitly invalidated.  Everything starts stale.
        self._stale = [True] * n
        self._index_by_id = index_of
        for i, comp in enumerate(active):
            comp._engine_hook = (self, i)
        # id(sig) -> (sig, value at first change of the current pass /
        # sub-iteration).  Net change is judged against these baselines
        # so a transient clear-then-set within one evaluation (a common
        # idiom in demux-style logic) does not count as instability —
        # exactly the naive engine's snapshot semantics, but touching
        # only the signals that actually moved.
        self._pass_base: dict[int, tuple[Signal, Any]] = {}
        self._sub_base: dict[int, tuple[Signal, Any]] | None = None
        for sig in signals:
            sig._engine = self
            sig._readers = tuple(readers.get(id(sig), ()))

    # ------------------------------------------------------------------
    # change notification (called by Signal.set while recording)
    # ------------------------------------------------------------------
    def note_change(self, sig: Signal, old: Any) -> None:
        if not self.recording:
            # Out-of-settle write (a test or driver poking a wire):
            # remember the affected readers for the next settle.
            stale = self._stale
            for reader in sig._readers:
                stale[reader] = True
            return
        key = id(sig)
        if key not in self._pass_base:
            self._pass_base[key] = (sig, old)
        sub = self._sub_base
        if sub is not None and key not in sub:
            sub[key] = (sig, old)
        dirty = self._dirty
        for reader in sig._readers:
            if not dirty[reader]:
                dirty[reader] = True
                self._ndirty += 1

    # ------------------------------------------------------------------
    # cross-cycle staleness
    # ------------------------------------------------------------------
    def mark_stale(self, index: int) -> None:
        """Schedule one component for re-evaluation at the next settle."""
        self._stale[index] = True

    def invalidate_all(self) -> None:
        """Schedule every component for re-evaluation (e.g. after reset)."""
        self._stale = [True] * len(self._stale)

    def note_state_change(self, comp: Component) -> None:
        """Called per cycle for each component whose commit changed state."""
        index = self._index_by_id.get(id(comp))
        if index is not None:
            self._stale[index] = True

    @property
    def tracked_component_ids(self) -> frozenset[int]:
        """ids of the components whose commit reports this engine uses."""
        return frozenset(self._index_by_id)

    @staticmethod
    def _net_changed(base: dict[int, tuple[Signal, Any]]) -> list[str]:
        """Names of signals whose value differs from their baseline."""
        return [
            sig.name
            for sig, old in base.values()
            if not same_value(sig.value, old)
        ]

    # ------------------------------------------------------------------
    # settle
    # ------------------------------------------------------------------
    def settle(self, cycle: int) -> int:
        dirty = self._dirty
        stale = self._stale
        volatile = self._volatile
        evals = self._evals
        budget = self._max_iterations
        # Seed the dirty set: components whose state changed at the last
        # commit (or that cannot prove otherwise), volatile components,
        # externally poked readers, and anything left over from an
        # aborted settle.  Everything else still holds correct settled
        # outputs from the previous cycle and is left alone.
        ndirty = 0
        for i in range(len(dirty)):
            if dirty[i] or stale[i] or volatile[i]:
                dirty[i] = True
                ndirty += 1
            stale[i] = False
        self._ndirty = ndirty
        self._pass_base = {}
        self._sub_base = None
        self.recording = True
        worst_local = 1
        passes = 0
        try:
            while True:
                passes += 1
                if passes > budget:
                    raise ConvergenceError(
                        cycle, budget, self._net_changed(self._pass_base)
                    )
                self._pass_base = {}
                for group, cyclic in self._groups:
                    if self._ndirty == 0:
                        break
                    if not cyclic:
                        i = group[0]
                        if dirty[i]:
                            dirty[i] = False
                            self._ndirty -= 1
                            evals[i]()
                        continue
                    # Cyclic region: Gauss-Seidel sweeps in fixed order.
                    # Dirtiness is checked at visit time, so a member
                    # dirtied mid-sweep by an earlier member is evaluated
                    # in the *same* sweep — values propagate coherently
                    # along the cycle exactly as in a naive full pass
                    # (deferring them can chase a stale snapshot around
                    # the loop forever, e.g. an arbiter following the
                    # ready echo of its own previous grant).
                    local = 0
                    last_sub: dict[int, tuple[Signal, Any]] = {}
                    while any(dirty[i] for i in group):
                        local += 1
                        if local > budget:
                            raise ConvergenceError(
                                cycle, budget, self._net_changed(last_sub)
                            )
                        self._sub_base = last_sub = {}
                        for i in group:
                            if dirty[i]:
                                dirty[i] = False
                                self._ndirty -= 1
                                evals[i]()
                    self._sub_base = None
                    if local > worst_local:
                        worst_local = local
                if not self._opaque:
                    if self._ndirty == 0:
                        return max(passes, worst_local)
                    continue  # stray feedback outside the graph: resweep
                for evaluate in self._opaque_evals:
                    evaluate()
                if self._ndirty == 0 and not self._net_changed(self._pass_base):
                    return max(passes, worst_local)
        finally:
            self.recording = False


class CompiledEngine:
    """Slot-compiled settling: fused straight-line regions + int worklists.

    Built on the same declared dependency graph and the same scheduling
    contract as :class:`EventEngine` (cross-cycle staleness from commit
    reports / ``declare_volatile`` / ``invalidate``, change-driven
    re-evaluation during the settle), but with every mechanism lowered
    onto the flat slot store:

    * each active component evaluates through its
      :meth:`Component.compile_comb` closure when it provides one and
      all its signals resolved to store slots — slot-indexed, with S-wide
      handshake blocks read and written as single slices, and declared
      readers marked per *block* rather than per signal — falling back
      to the plain ``combinational()`` method otherwise (whose
      ``Signal.set`` writes keep signal-precise marking);
    * maximal runs of acyclic SCCs are fused into one generated
      function whose member indices are compile-time constants: a clean
      member costs one set-membership probe, a dirty one is invoked
      directly;
    * cyclic SCCs iterate the dirty-set worklist over component ints.
    """

    name = "compiled"

    def __init__(
        self,
        components: Sequence[Component],
        signals: Sequence[Signal],
        max_iterations: int,
        store: SlotStore,
        profiler=None,
    ):
        self._max_iterations = int(max_iterations)
        self.recording = False
        self._store = store
        self._values = store.values

        active, opaque = _split_components(components)
        self._active = active
        self._opaque = opaque
        self._index_by_id = {id(comp): i for i, comp in enumerate(active)}
        readers, succ = _dependency_graph(active, signals, self._index_by_id)

        #: Component indices needing (re-)evaluation.  Fed with
        #: slot-block precision by the compiled steps (through the
        #: reader map attached to the store) and with signal precision
        #: by note_change for everything still going through Signal.set.
        self._dirty: set[int] = set()
        #: Cross-cycle staleness, exactly the event engine's model: a
        #: component is seeded into the next settle when its commit
        #: reported (or could not rule out) a state change, when an
        #: input signal was written outside a settle, or when it was
        #: explicitly invalidated.  Everything starts stale.
        self._stale: set[int] = set(range(len(active)))
        self._volatile: tuple[int, ...] = tuple(
            i
            for i, comp in enumerate(active)
            if comp.volatile
            or (
                type(comp).capture is not Component.capture
                and type(comp).commit is Component.commit
            )
        )
        self._pass_base: dict[int, tuple[Signal, Any]] = {}
        for sig in signals:
            sig._engine = self
            sig._readers = tuple(readers.get(id(sig), ()))
        for i, comp in enumerate(active):
            comp._engine_hook = (self, i)
        store.attach_readers(readers, self._dirty)

        # One evaluation step per active component: the component's
        # slot-compiled closure, or plain combinational() (whose writes
        # mark readers through Signal.set -> note_change).  With a
        # profiler attached, every step is wrapped in a timing closure
        # *before* region fusion below, so the generated straight-line
        # code bakes the instrumented steps in — and a rebuild without
        # the profiler bakes them back out.
        steps: list[Callable[[], Any]] = [
            comp.compile_comb(store) or comp.combinational
            for comp in active
        ]
        if profiler is not None:
            steps = [
                profiler.wrap_comb(fn, comp.path)
                for fn, comp in zip(steps, active)
            ]
            self._opaque_evals = [
                profiler.wrap_comb(comp.combinational, comp.path)
                for comp in opaque
            ]
        else:
            self._opaque_evals = [comp.combinational for comp in opaque]
        self._steps = steps

        # Slots driven by each active component (ConvergenceError names).
        out_slots: list[list[int]] = [[] for _ in active]
        for sig in signals:
            driver = sig.driver
            if driver is None:
                continue
            writer = self._index_by_id.get(id(driver))
            if writer is not None:
                out_slots[writer].append(store.slot(sig))

        # Fuse maximal runs of acyclic groups into straight-line code;
        # keep cyclic SCCs as worklist regions.  `regions` mirrors the
        # program for introspection/profiling: one entry per compiled
        # region with its member component paths.
        groups = condensation_order(succ)
        program: list[tuple[str, Any]] = []
        regions: list[dict] = []
        pending: list[int] = []  # acyclic member indices awaiting fusion

        def flush() -> None:
            if pending:
                program.append(
                    ("line", self._fuse([steps[i] for i in pending],
                                        pending))
                )
                regions.append(
                    {
                        "kind": "line",
                        "members": [active[i].path for i in pending],
                    }
                )
                del pending[:]

        for grp in groups:
            cyclic = len(grp) > 1 or grp[0] in succ[grp[0]]
            if not cyclic:
                pending.append(grp[0])
                continue
            flush()
            # Keep the condensation's member order: these handshake
            # loops contain probing arbiters whose convergence is
            # order-sensitive, and this order is the one the event
            # engine's differential suite has proven out.
            members = list(grp)
            member_set = frozenset(members)
            region_out = sorted(
                {s for i in members for s in out_slots[i]}
            )
            program.append((
                "scc",
                (
                    members,
                    [steps[i] for i in members],
                    member_set,
                    region_out,
                ),
            ))
            regions.append(
                {
                    "kind": "scc",
                    "members": [active[i].path for i in members],
                }
            )
        flush()
        self._program = program
        #: Compiled-region table, program order: ``{"kind": "line"|"scc",
        #: "members": [component paths]}`` per region.
        self.regions = regions

    def _fuse(
        self, steps: Sequence[Callable[[], Any]], indices: Sequence[int]
    ) -> Callable[[], None]:
        """Generate one straight-line function sweeping *steps* in order.

        Member indices are baked in as constants: each member costs one
        set-membership test when clean and is invoked directly when
        dirty, with no loop bookkeeping, no indirection through member
        lists and no per-member Python frames besides the evaluation
        itself.  A dirty mark placed by an earlier member in the same
        run is consumed by the in-order evaluation; a write *backwards*
        (only possible through an undeclared driver relationship) leaves
        its mark standing and triggers a whole-design resweep, exactly
        like the event engine.
        """
        names = [f"_s{k}" for k in range(len(steps))]
        lines = [f"def _make(_D, {', '.join(names)}):", "    def _run():"]
        for k, idx in enumerate(indices):
            lines.append(f"        if {idx} in _D:")
            lines.append(f"            _D.discard({idx})")
            lines.append(f"            _s{k}()")
        lines.append("    return _run")
        namespace: dict[str, Any] = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        return namespace["_make"](self._dirty, *steps)

    # ------------------------------------------------------------------
    # change notification (called by Signal.set)
    # ------------------------------------------------------------------
    def note_change(self, sig: Signal, old: Any) -> None:
        if not self.recording:
            # Out-of-settle write (a test or driver poking a wire):
            # remember the affected readers for the next settle.
            self._stale.update(sig._readers)
            return
        key = id(sig)
        base = self._pass_base
        if key not in base:
            base[key] = (sig, old)
        readers = sig._readers
        if readers:
            self._dirty.update(readers)

    # ------------------------------------------------------------------
    # cross-cycle staleness (same contract as the event engine)
    # ------------------------------------------------------------------
    def mark_stale(self, index: int) -> None:
        """Schedule one component for re-evaluation at the next settle."""
        self._stale.add(index)

    def invalidate_all(self) -> None:
        """Schedule every component for re-evaluation (e.g. after reset)."""
        self._stale.update(range(len(self._active)))

    def note_state_change(self, comp: Component) -> None:
        """Called per cycle for each component whose commit changed state."""
        index = self._index_by_id.get(id(comp))
        if index is not None:
            self._stale.add(index)

    @property
    def tracked_component_ids(self) -> frozenset[int]:
        """ids of the components whose commit reports this engine uses."""
        return frozenset(self._index_by_id)

    @property
    def stale_set(self) -> set[int]:
        """The live cross-cycle stale set (for the fused tick driver)."""
        return self._stale

    @property
    def component_index(self) -> dict[int, int]:
        """``id(component) -> engine index`` for scheduled components."""
        return self._index_by_id

    @property
    def quiescent(self) -> bool:
        """True when the next settle provably evaluates nothing.

        Holds when no component is stale (commit reports, invalidation,
        out-of-settle pokes), nothing is dirty from an aborted settle,
        and the design has no volatile or opaque components — i.e. a
        settle would walk the program with every probe clean and change
        no signal.  The settle half of settle+tick fusion
        (:meth:`repro.kernel.simulator.Simulator.run` batches whole
        cycles when this holds and every tick plan would delta-skip).
        """
        return not (
            self._stale or self._dirty or self._volatile or self._opaque
        )

    _net_changed = staticmethod(EventEngine._net_changed)

    # ------------------------------------------------------------------
    # settle
    # ------------------------------------------------------------------
    def settle(self, cycle: int) -> int:
        budget = self._max_iterations
        dirty = self._dirty
        # Seed: components whose state changed at the last commit (or
        # that cannot prove otherwise), volatile components, externally
        # poked readers, plus anything left over from an aborted settle.
        # Everything else still holds correct settled outputs from the
        # previous cycle and is skipped at one set-probe of cost.
        stale = self._stale
        if stale:
            dirty.update(stale)
            stale.clear()
        dirty.update(self._volatile)
        self.recording = True
        self._pass_base = {}
        worst_local = 1
        passes = 0
        try:
            while True:
                passes += 1
                if passes > budget:
                    raise ConvergenceError(
                        cycle, budget, self._net_changed(self._pass_base)
                    )
                self._pass_base = {}
                for kind, payload in self._program:
                    if kind == "line":
                        payload()
                    else:
                        local = self._run_scc(payload, cycle, budget)
                        if local > worst_local:
                            worst_local = local
                if not self._opaque:
                    if not dirty:
                        return max(passes, worst_local)
                    continue  # undeclared backward write: resweep
                for evaluate in self._opaque_evals:
                    evaluate()
                if not dirty and not self._net_changed(self._pass_base):
                    return max(passes, worst_local)
        finally:
            self.recording = False

    def _run_scc(self, region: tuple, cycle: int, budget: int) -> int:
        """Iterate one cyclic SCC to a local fixed point (Gauss-Seidel).

        Seeded from the cross-cycle stale set; a member is then re-swept
        only while one of its declared inputs actually changed —
        compiled steps mark the affected readers block-wise through the
        store's reader map, plain ``combinational()`` members mark them
        signal-wise through ``Signal.set`` -> note_change.  Dirtiness is
        checked at visit time so a member dirtied mid-sweep by an
        earlier member is evaluated in the *same* sweep, keeping value
        propagation coherent along the ring.
        """
        members, steps, member_set, out_slots = region
        dirty = self._dirty
        values = self._values
        local = 0
        snap: list[Any] | None = None
        while not dirty.isdisjoint(member_set):
            local += 1
            if local > budget:
                raise ConvergenceError(
                    cycle, budget, self._unstable(out_slots, snap)
                )
            if local == budget:
                snap = [values[s] for s in out_slots]
            for pos, i in enumerate(members):
                if i in dirty:
                    dirty.discard(i)
                    steps[pos]()
        return local

    def _unstable(
        self, out_slots: Sequence[int], snap: Sequence[Any] | None
    ) -> list[str]:
        """Names of region outputs still moving when the budget ran out."""
        store = self._store
        if snap is None:  # pragma: no cover - budget < 2 degenerate case
            return [store.name_of(s) for s in out_slots]
        values = self._values
        return [
            store.name_of(s)
            for s, old in zip(out_slots, snap)
            if not same_value(values[s], old)
        ]


def make_engine(
    name: str,
    components: Sequence[Component],
    signals: Sequence[Signal],
    max_iterations: int,
    store: SlotStore,
    profiler=None,
) -> NaiveEngine | EventEngine | CompiledEngine:
    """Instantiate the settle engine called *name* (see :data:`ENGINES`).

    *profiler*, when given (a :class:`repro.obs.profile.KernelProfiler`),
    is compiled into the engine: every evaluation step is wrapped in a
    timing closure before any region fusion, so attribution covers the
    generated code too.  ``None`` builds the plain engine with zero
    profiling residue.
    """
    if name == "compiled":
        return CompiledEngine(
            components, signals, max_iterations, store, profiler=profiler
        )
    if name == "event":
        return EventEngine(
            components, signals, max_iterations, profiler=profiler
        )
    if name == "naive":
        return NaiveEngine(
            components, signals, max_iterations, profiler=profiler
        )
    raise ValueError(
        f"unknown settle engine {name!r}; expected one of {ENGINES}"
    )
