"""Ensemble lockstep execution: one compiled schedule advances K scenarios.

Scenarios inside a campaign grid cell share the exact compiled
settle/tick schedule and differ only in stimulus payloads and seeds, so
every Python-level dispatch — settle sweeps, plan capture/commit,
handshake updates — is paid K times for work that is identical K ways.
This module lets ONE simulator advance K such scenarios per step.

Row-valued data
---------------

Rather than widening every slot by an ensemble axis (which would tax the
scalar control path that dominates these designs), the ensemble axis
lives **only in the data payloads**: every payload becomes a *row* — a
tuple of K per-lane values.  Control slots (``valid``/``ready``,
occupancy counters, arbiter state) stay scalar and shared, which is
exactly the lockstep contract: all lanes make identical handshake
decisions every cycle, so one settle sweep serves all K.

Components interact with rows in one of three ways, declared through
:attr:`repro.kernel.component.Component.ENSEMBLE_DATA`:

``"opaque"``
    The component moves payloads by reference and never looks inside
    (channels, sources, sinks, elastic buffers, merges, forks,
    monitors).  A row flows through untouched at the cost of moving one
    reference — the marginal cost per extra lane is near zero, which is
    where the ensemble speedup comes from.

``"lift"``
    The component inspects payloads through callables (an
    :class:`~repro.core.function.MTFunction` body, an
    :class:`~repro.core.operators.MBranch` selector/route).
    :func:`lift_simulator` rebinds those callables to lane-wise lifted
    forms via :meth:`Component.ensemble_lift` and rebuilds the
    simulator so compiled closures capture the lifted versions.

``"unsafe"``
    Everything else (the default).  Data-dependent latency, per-thread
    context, tuple-building joins: lane independence cannot be proven,
    so :func:`lift_simulator` raises
    :class:`~repro.kernel.errors.EnsembleUnsupported` and the caller
    runs the scenarios serially instead.

Lane divergence
---------------

A lane whose payload transform raises drops out without stalling the
batch: the lifted callable records the failure on the
:class:`EnsembleContext` and emits the :data:`POISON` sentinel, which
propagates through later transforms.  Control flow keeps advancing for
the surviving lanes; the failed lane's scenario is reported as an error
from the recorded traceback.  If lanes stop agreeing on *control* (an
``MBranch`` selector votes differently per lane), the whole batch raises
:class:`~repro.kernel.errors.EnsembleDivergence` and the caller falls
back to serial execution — correctness never depends on batching.

Because control never reads payloads, every lane observes exactly the
cycles, stalls and transfer times it would have observed running alone
(only batches whose scenarios are provably control-identical are formed
— see :mod:`repro.sweep.runner`), so per-lane results are bit-identical
to serial runs.  An optional numpy backing for rows of fixed-width
integers would slot in behind the same tuple API; it is deliberately not
required — the pure-Python row layout already amortizes the interpreter
dispatch that dominates.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Iterable, Sequence

from repro.kernel.component import Component
from repro.kernel.errors import EnsembleDivergence, EnsembleUnsupported


class _Poison:
    """Sentinel payload of a failed lane (singleton, identity-compared)."""

    __slots__ = ()
    _instance: "_Poison | None" = None

    def __new__(cls) -> "_Poison":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<poison>"

    def __copy__(self) -> "_Poison":
        return self

    def __deepcopy__(self, memo: dict) -> "_Poison":
        return self

    def __reduce__(self):
        return (_Poison, ())


POISON = _Poison()


class EnsembleContext:
    """Shared lane bookkeeping for one lifted design.

    One context is created per lifted design and lives as long as the
    design does (it is captured by the lifted callables, which are in
    turn captured by compiled closures).  Per-batch state — the lane
    width and the failure map — is re-armed with :meth:`reset` before
    every batch, so one lifted design serves batches of any width.
    """

    def __init__(self, width: int = 0):
        self.width = width
        #: lane index -> formatted traceback of the first failure
        self.failures: dict[int, str] = {}
        #: components whose callables were rebound by lifting
        self.lifted: list[Component] = []

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def reset(self, width: int | None = None) -> None:
        """Re-arm for a new batch: clear failures, optionally set width."""
        self.failures.clear()
        if width is not None:
            self.width = width

    def fail(self, lane: int, exc: BaseException) -> None:
        """Record the first failure of *lane* (later ones are ignored)."""
        if lane not in self.failures:
            self.failures[lane] = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )

    def lane_ok(self, lane: int) -> bool:
        return lane not in self.failures

    # ------------------------------------------------------------------
    # row helpers
    # ------------------------------------------------------------------
    def row(self, values: Iterable[Any]) -> tuple:
        """Build a row (tuple of per-lane payloads) checking the width."""
        row = tuple(values)
        if len(row) != self.width:
            raise EnsembleUnsupported(
                f"row of width {len(row)} in an ensemble of width {self.width}"
            )
        return row

    @staticmethod
    def lane(row: Sequence[Any], index: int) -> Any:
        """Extract one lane's payload from a row."""
        return row[index]

    # ------------------------------------------------------------------
    # callable lifting
    # ------------------------------------------------------------------
    def lift_fn(self, fn: Callable[[Any], Any]) -> Callable[[tuple], tuple]:
        """Lift a payload transform to a lane-wise map over rows.

        A lane that raises is failed (first traceback recorded) and
        emits :data:`POISON`; poisoned or already-failed lanes propagate
        :data:`POISON` without calling *fn*.
        """
        ctx = self

        def lifted(row: tuple) -> tuple:
            failures = ctx.failures
            out = []
            for j, value in enumerate(row):
                if value is POISON or (failures and j in failures):
                    out.append(POISON)
                    continue
                try:
                    out.append(fn(value))
                except Exception as exc:  # noqa: BLE001 - contained per lane
                    ctx.fail(j, exc)
                    out.append(POISON)
            return tuple(out)

        lifted.__ensemble_lifted__ = True  # type: ignore[attr-defined]
        lifted.__wrapped__ = fn  # type: ignore[attr-defined]
        return lifted

    def lift_selector(
        self, selector: Callable[[Any], int], path: str
    ) -> Callable[[tuple], int]:
        """Lift a branch selector: all live lanes must agree on the port.

        A lane whose selector raises is failed and excluded from the
        vote.  Disagreement among live lanes — or no live lane at all —
        raises :class:`~repro.kernel.errors.EnsembleDivergence`; the
        caller falls back to serial execution.
        """
        ctx = self

        def lifted(row: tuple) -> int:
            failures = ctx.failures
            chosen: int | None = None
            for j, value in enumerate(row):
                if value is POISON or (failures and j in failures):
                    continue
                try:
                    sel = selector(value)
                except Exception as exc:  # noqa: BLE001 - contained per lane
                    ctx.fail(j, exc)
                    continue
                if chosen is None:
                    chosen = sel
                elif sel != chosen:
                    raise EnsembleDivergence(
                        f"{path}: lanes disagree on branch selection "
                        f"({chosen!r} vs {sel!r} at lane {j})"
                    )
            if chosen is None:
                raise EnsembleDivergence(
                    f"{path}: no live lane left to select a branch port"
                )
            return chosen

        lifted.__ensemble_lifted__ = True  # type: ignore[attr-defined]
        lifted.__wrapped__ = selector  # type: ignore[attr-defined]
        return lifted

    def lift_route(self, route: Callable[[Any], Any]) -> Callable[[tuple], tuple]:
        """Lift a branch route transform (same containment as lift_fn)."""
        return self.lift_fn(route)


def lift_simulator(sim: Any, width: int = 0) -> EnsembleContext:
    """Lift every component of *sim* for ensemble execution and rebuild.

    Walks all components, checking the :attr:`Component.ENSEMBLE_DATA`
    contract: ``"opaque"`` components pass through, ``"lift"`` components
    get :meth:`Component.ensemble_lift` called with a fresh
    :class:`EnsembleContext`, anything else raises
    :class:`~repro.kernel.errors.EnsembleUnsupported`.  The simulator is
    rebuilt afterwards so compiled closures capture the lifted
    callables.  Returns the context (width re-armed per batch via
    :meth:`EnsembleContext.reset`).
    """
    ctx = EnsembleContext(width)
    for node in sim.components:  # already the flattened tree
        mode = node.ENSEMBLE_DATA
        if mode == "opaque":
            continue
        if mode == "lift":
            node.ensemble_lift(ctx)
            ctx.lifted.append(node)
        else:
            raise EnsembleUnsupported(
                f"{node.path} ({type(node).__name__}) is not ensemble-safe "
                f"(ENSEMBLE_DATA={mode!r})"
            )
    if ctx.lifted:
        sim.rebuild()
    return ctx


class EnsembleSimulator:
    """A simulator advancing K control-identical scenarios in lockstep.

    Thin wrapper pairing a lifted :class:`~repro.kernel.simulator.Simulator`
    with its :class:`EnsembleContext`.  Build the design once, call
    :meth:`load` with the batch width before each batch, push rows (use
    :meth:`row` to build them), run, then extract per-lane results with
    :meth:`lane_values`.  Snapshot/restore/fork delegate to the wrapped
    simulator, so a pristine post-lift snapshot makes the design
    reusable across batches of any width.
    """

    def __init__(self, sim: Any, width: int = 0):
        self.sim = sim
        self.ctx = lift_simulator(sim, width)

    @property
    def width(self) -> int:
        return self.ctx.width

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def load(self, width: int) -> None:
        """Arm the context for a batch of *width* lanes."""
        self.ctx.reset(width)

    def row(self, values: Iterable[Any]) -> tuple:
        return self.ctx.row(values)

    def lane_ok(self, lane: int) -> bool:
        return self.ctx.lane_ok(lane)

    def lane_error(self, lane: int) -> str | None:
        return self.ctx.failures.get(lane)

    def lane_values(self, rows: Iterable[Sequence[Any]], lane: int) -> list[Any]:
        """Extract one lane's payloads from an iterable of rows."""
        return [self.ctx.lane(row, lane) for row in rows]

    # ------------------------------------------------------------------
    # delegation
    # ------------------------------------------------------------------
    def run(self, *args: Any, **kwargs: Any) -> int:
        return self.sim.run(*args, **kwargs)

    @property
    def cycle(self) -> int:
        return self.sim.cycle

    def snapshot(self) -> Any:
        return self.sim.snapshot()

    def restore(self, snap: Any) -> None:
        self.sim.restore(snap)

    def fork(self) -> Any:
        return self.sim.fork()

    def __repr__(self) -> str:
        return f"<EnsembleSimulator width={self.width} sim={self.sim!r}>"
