"""Slot-indexed value storage: signals (settle) and sequential state (tick).

A :class:`SlotStore` owns one flat Python list holding the current value
of every signal in a finalized design.  At finalize time the simulator
migrates each :class:`~repro.kernel.signal.Signal` into the store: the
signal keeps its identity (name, width, driver, reader bookkeeping) but
its *value* now lives at ``store.values[slot]``.  Because
:meth:`Signal.get`/:meth:`Signal.set` are already written against the
``(_store, _slot)`` pair, the migration is transparent to every engine
and every component — a signal read costs the same two attribute loads
and one list index before and after.

A :class:`SeqStore` is the tick-phase sibling: one flat list holding the
*sequential* (registered) state of every component that opted in through
:meth:`~repro.kernel.component.Component.compile_seq` — MEB per-thread
queues and main/state registers, elastic-buffer stages, barrier arrival
masks — plus the :class:`SeqPlan` schedule that replaces per-component
``capture()``/``commit()`` dispatch with vectorized, delta-gated slot
steps (see the class docstrings below).

What the flat store buys:

* **Slot-compiled evaluation** — the compiled settle engine's generated
  region functions and the components' ``compile_comb`` closures read
  and write ``values[slot]`` directly, skipping the Signal object (and
  its change-notification branch) entirely on the hot path.
* **Packed handshake blocks** — the per-thread ``valid``/``ready``
  signal lists of an :class:`~repro.core.mtchannel.MTChannel` occupy
  consecutive slots (signals are enumerated in creation order), so an
  S-wide handshake vector is one slice read ``values[base:base + S]``
  and one slice compare-and-assign instead of S per-signal calls.
  :meth:`range_of` discovers such blocks, returning ``None`` when a
  signal set is not contiguous (the caller then falls back to the
  scalar path).

The store never reorders or grows after construction; ``values`` is
mutated in place so every captured reference stays valid.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.kernel.signal import Signal


class SlotStore:
    """Flat list-backed value store for a finalized design's signals."""

    __slots__ = ("signals", "values", "_slot_by_id", "dirty", "_reader_map")

    def __init__(self, signals: Sequence[Signal]):
        self.signals: list[Signal] = list(signals)
        #: The single authoritative value list; index = slot.
        self.values: list[Any] = [sig.get() for sig in self.signals]
        self._slot_by_id = {
            id(sig): slot for slot, sig in enumerate(self.signals)
        }
        # Dependency plumbing for slot-compiled steps, attached by the
        # compiled engine (see attach_readers); inert otherwise.
        self.dirty: set[int] = set()
        self._reader_map: dict[int, tuple[int, ...]] = {}
        # Re-home every signal onto the shared list.  Signal.get/set index
        # `_store[_slot]`, so after this loop reads and writes through the
        # Signal API and through the raw list are one and the same cell.
        values = self.values
        for slot, sig in enumerate(self.signals):
            sig._store = values
            sig._slot = slot

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    # lookups used by compile_comb implementations
    # ------------------------------------------------------------------
    def slot(self, sig: Signal) -> int:
        """The slot index of *sig* (KeyError if not in this store)."""
        return self._slot_by_id[id(sig)]

    def slot_or_none(self, sig: Signal) -> int | None:
        return self._slot_by_id.get(id(sig))

    def name_of(self, slot: int) -> str:
        return self.signals[slot].name

    def range_of(self, signals: Iterable[Signal]) -> tuple[int, int] | None:
        """``(base, end)`` when *signals* occupy consecutive ascending
        slots (a packed block), else ``None``.

        A block lets S-wide handshake vectors be read as one slice
        ``values[base:end]`` and written with one slice compare/assign.
        """
        slots = []
        for sig in signals:
            slot = self._slot_by_id.get(id(sig))
            if slot is None:
                return None
            slots.append(slot)
        if not slots:
            return None
        base = slots[0]
        for offset, slot in enumerate(slots):
            if slot != base + offset:
                return None
        return base, base + len(slots)

    # ------------------------------------------------------------------
    # dependency plumbing (populated by the compiled settle engine)
    # ------------------------------------------------------------------
    def attach_readers(
        self,
        readers: "dict[int, Sequence[int]]",
        dirty: set[int],
    ) -> None:
        """Install the declared-reader map and shared dirty set.

        *readers* maps ``id(signal)`` to the indices of the components
        that declared a combinational read of it; *dirty* is the
        engine's live worklist.  Compiled steps capture both so a block
        write that actually changed values marks exactly the affected
        readers — the batched analogue of ``Signal.set`` notifying its
        ``_readers``.  Before attachment, :meth:`readers_of` returns
        empty tuples and ``dirty`` is an unused scratch set, so compiled
        steps stay correct (just unscheduled) under the other engines.
        """
        self._reader_map = {
            key: tuple(value) for key, value in readers.items()
        }
        self.dirty = dirty

    def readers_of(self, signals: Iterable[Signal]) -> tuple[int, ...]:
        """Union of declared-reader component indices over *signals*."""
        out: set[int] = set()
        for sig in signals:
            out.update(self._reader_map.get(id(sig), ()))
        return tuple(sorted(out))


class SeqPlan:
    """One component's compiled tick-phase schedule entry.

    Produced by :meth:`~repro.kernel.component.Component.compile_seq`;
    the per-cycle driving is code-generated from these fields by
    :meth:`SeqStore.compile_driver`.  Fields:

    ``capture``
        ``fn(cycle) -> None`` — behaviourally identical to the
        component's ``capture()`` (it may stage next state and raise the
        same protocol/simulation errors) but typically reading settled
        handshake inputs as raw slot slices.  Receives the simulator's
        cycle counter so endpoint/monitor steps need no private counter
        reads on the hot path.

    ``commit``
        ``fn() -> bool | None`` — the component's ``commit()`` contract:
        apply staged state, report whether combinationally relevant
        state changed (``False`` enables delta-skipping; anything else
        keeps the plan dirty and, for engine-tracked components, feeds
        the settle engine's cross-cycle staleness).

    ``watch``
        Slot ranges ``((base, end), ...)`` of every *signal* the capture
        step may read.  Together with ``clean`` (last commit returned
        ``False``) an unchanged watch set proves this cycle's
        capture+commit is a no-op, so both are skipped — the delta-driven
        replacement for per-component idle early-outs.

    ``repeat``
        Optional ``fn(k, start_cycle) -> None`` for components with an
        unconditional per-cycle effect (monitors appending activity
        rows, endpoints advancing local cycle counters).  When the plan
        would otherwise skip, ``repeat(1, cycle)`` replays the last
        observation instead; settle+tick fusion calls it with ``k > 1``
        to batch whole quiescent stretches.  ``None`` means skipping has
        no observable effect at all (pure register components).

    ``state``
        Seq-store ranges ``((base, end), ...)`` of the component's own
        re-homed state block.  Included in the delta snapshot so an
        *external* poke of slot-backed state (a fault-injection test
        corrupting registers directly) re-arms the plan without an
        explicit ``invalidate()`` — matching the legacy behaviour where
        capture/commit ran unconditionally every cycle.
    """

    __slots__ = (
        "component", "capture", "commit", "watch", "repeat", "state",
        "clean", "snap", "ran",
    )

    def __init__(self, component, capture, commit, watch, repeat=None,
                 state=()):
        self.component = component
        self.capture = capture
        self.commit = commit
        self.watch = tuple(watch)
        self.repeat = repeat
        self.state = tuple(state)
        #: True when the last commit reported no relevant state change.
        self.clean = False
        #: Watch/state snapshot from the last clean commit (scalar
        #: ranges store the bare value, wider ranges a slice — the
        #: layout the generated driver bakes in).
        self.snap: list[Any] | None = None
        #: Whether capture ran this cycle (commit pairs with it).
        self.ran = False

    def invalidate(self) -> None:
        """Force the next tick to run capture/commit (out-of-band mutation)."""
        self.clean = False


class SeqStore:
    """Columnar store + schedule for the compiled tick phase.

    Mirrors :class:`SlotStore` one phase later: where the slot store
    re-homes every *signal* value into one flat list for the settle
    phase, the seq store re-homes opted-in components' *registered*
    state (``values``) and replaces the simulator's per-component
    ``capture()``/``commit()`` dispatch with :class:`SeqPlan` steps.

    Scheduling is **delta-driven**: a plan whose watch slices are
    unchanged since its last capture and whose last commit reported no
    state change is skipped outright (or handed to its ``repeat`` hook
    when it has an unconditional per-cycle effect).  The same predicate,
    asked over every plan at once (the generated ``_fusible`` sweep), is
    the tick half of settle+tick fusion: when it holds and the settle
    engine is quiescent, :meth:`fast_forward` batches an arbitrary
    number of cycles without re-entering per-component dispatch.

    Component state is migrated exactly like signal values: a component
    keeps its state behind a private ``(_sstore, _sbase)``-style pair
    from construction, and :meth:`alloc` hands it a block of cells in
    the shared ``values`` list at compile time, *copying the current
    values in* — so re-homing (first finalize, or a
    :meth:`~repro.kernel.simulator.Simulator.rebuild` after a
    collaborator swap) preserves all live state.
    """

    __slots__ = ("store", "values", "plans")

    def __init__(self, store: SlotStore):
        self.store = store
        #: Flat columnar sequential-state cells; index = seq slot.
        self.values: list[Any] = []
        self.plans: list[SeqPlan] = []

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    # compilation helpers (used by compile_seq implementations)
    # ------------------------------------------------------------------
    def alloc(self, cells: Sequence[Any]) -> int:
        """Append *cells* (the component's current state) and return the
        base index of the new block."""
        base = len(self.values)
        self.values.extend(cells)
        return base

    # ------------------------------------------------------------------
    # fused driver (code-generated; the per-cycle hot path)
    # ------------------------------------------------------------------
    def compile_driver(self, stale, engine_index):
        """Generate the fused (capture_fn, commit_fn) tick driver.

        Like the compiled settle engine's region fusion, the whole
        schedule becomes two straight-line functions with per-plan
        constants baked in:

        * the capture sweep inlines each plan's skip predicate —
          ``clean`` plus watch/state compares against the stored
          snapshot (scalar ranges compare without slicing) — and calls
          ``capture``/``repeat`` directly;
        * the commit sweep inlines the clean/dirty bookkeeping, rebuilds
          the snapshot only when a plan *ends* clean (a dirty plan will
          re-run regardless, so its snapshot is dead), and marks the
          settle engine's stale set with the component's baked-in index
          instead of going through ``note_state_change``.

        *stale* is the compiled engine's cross-cycle stale set and
        *engine_index* maps ``id(component)`` to engine indices;
        untracked components (pure observers) skip the marking.
        Snapshot timing relies on the kernel-wide invariant that commits
        never write signals (outputs are driven during settle).
        """
        ns: dict[str, Any] = {
            "_V": self.store.values,
            "_S": self.values,
            "_stale": stale,
        }
        cap_lines = ["def _capture(cycle):"]
        com_lines = ["def _commit():"]
        fus_lines = ["def _fusible():", "    try:"]
        for k, plan in enumerate(self.plans):
            p, c, m = f"_p{k}", f"_c{k}", f"_m{k}"
            ns[p] = plan
            ns[c] = plan.capture
            ns[m] = plan.commit
            segments: list[tuple[str, int, int]] = [
                ("_V", b, e) for b, e in plan.watch
            ]
            segments += [("_S", b, e) for b, e in plan.state]
            compares = []
            rebuild = []
            for i, (arr, b, e) in enumerate(segments):
                snap = f"{p}.snap[{i}]"
                if e == b + 1:
                    compares.append(f"{arr}[{b}] == {snap}")
                    rebuild.append(f"{arr}[{b}]")
                else:
                    compares.append(f"{arr}[{b}:{e}] == {snap}")
                    rebuild.append(f"{arr}[{b}:{e}]")
            cond = " and ".join(compares) or "True"
            cap_lines += [
                f"    if {p}.clean:",
                "        try:",
                f"            _skip = {cond}",
                "        except Exception:",
                "            _skip = False",
                "    else:",
                "        _skip = False",
                "    if _skip:",
                f"        {p}.ran = False",
            ]
            if plan.repeat is not None:
                r = f"_r{k}"
                ns[r] = plan.repeat
                cap_lines.append(f"        {r}(1, cycle)")
            cap_lines += [
                "    else:",
                f"        {c}(cycle)",
                f"        {p}.ran = True",
            ]
            com_lines += [
                f"    if {p}.ran:",
                f"        if {m}() is False:",
                f"            {p}.clean = True",
                f"            {p}.snap = [{', '.join(rebuild)}]",
                "        else:",
                f"            {p}.clean = False",
            ]
            index = engine_index.get(id(plan.component))
            if index is not None:
                com_lines.append(f"            _stale.add({index})")
            fus_lines.append(
                f"        if not ({p}.clean and {cond}): return False"
            )
        fus_lines += [
            "    except Exception:",
            "        return False",
            "    return True",
        ]
        exec("\n".join(cap_lines), ns)  # noqa: S102 - trusted codegen
        exec("\n".join(com_lines), ns)  # noqa: S102 - trusted codegen
        exec("\n".join(fus_lines), ns)  # noqa: S102 - trusted codegen
        return ns["_capture"], ns["_commit"], ns["_fusible"]

    # ------------------------------------------------------------------
    # settle+tick fusion
    # ------------------------------------------------------------------
    def fast_forward(self, k: int, start_cycle: int) -> None:
        """Apply *k* quiescent cycles' worth of per-cycle effects at once."""
        for plan in self.plans:
            repeat = plan.repeat
            if repeat is not None:
                repeat(k, start_cycle)
