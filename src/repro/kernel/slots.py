"""Slot-indexed value storage for signals (the compiled engine's core).

A :class:`SlotStore` owns one flat Python list holding the current value
of every signal in a finalized design.  At finalize time the simulator
migrates each :class:`~repro.kernel.signal.Signal` into the store: the
signal keeps its identity (name, width, driver, reader bookkeeping) but
its *value* now lives at ``store.values[slot]``.  Because
:meth:`Signal.get`/:meth:`Signal.set` are already written against the
``(_store, _slot)`` pair, the migration is transparent to every engine
and every component — a signal read costs the same two attribute loads
and one list index before and after.

What the flat store buys:

* **Slot-compiled evaluation** — the compiled settle engine's generated
  region functions and the components' ``compile_comb`` closures read
  and write ``values[slot]`` directly, skipping the Signal object (and
  its change-notification branch) entirely on the hot path.
* **Packed handshake blocks** — the per-thread ``valid``/``ready``
  signal lists of an :class:`~repro.core.mtchannel.MTChannel` occupy
  consecutive slots (signals are enumerated in creation order), so an
  S-wide handshake vector is one slice read ``values[base:base + S]``
  and one slice compare-and-assign instead of S per-signal calls.
  :meth:`range_of` discovers such blocks, returning ``None`` when a
  signal set is not contiguous (the caller then falls back to the
  scalar path).

The store never reorders or grows after construction; ``values`` is
mutated in place so every captured reference stays valid.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.kernel.signal import Signal


class SlotStore:
    """Flat list-backed value store for a finalized design's signals."""

    __slots__ = ("signals", "values", "_slot_by_id", "dirty", "_reader_map")

    def __init__(self, signals: Sequence[Signal]):
        self.signals: list[Signal] = list(signals)
        #: The single authoritative value list; index = slot.
        self.values: list[Any] = [sig.get() for sig in self.signals]
        self._slot_by_id = {
            id(sig): slot for slot, sig in enumerate(self.signals)
        }
        # Dependency plumbing for slot-compiled steps, attached by the
        # compiled engine (see attach_readers); inert otherwise.
        self.dirty: set[int] = set()
        self._reader_map: dict[int, tuple[int, ...]] = {}
        # Re-home every signal onto the shared list.  Signal.get/set index
        # `_store[_slot]`, so after this loop reads and writes through the
        # Signal API and through the raw list are one and the same cell.
        values = self.values
        for slot, sig in enumerate(self.signals):
            sig._store = values
            sig._slot = slot

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    # lookups used by compile_comb implementations
    # ------------------------------------------------------------------
    def slot(self, sig: Signal) -> int:
        """The slot index of *sig* (KeyError if not in this store)."""
        return self._slot_by_id[id(sig)]

    def slot_or_none(self, sig: Signal) -> int | None:
        return self._slot_by_id.get(id(sig))

    def name_of(self, slot: int) -> str:
        return self.signals[slot].name

    def range_of(self, signals: Iterable[Signal]) -> tuple[int, int] | None:
        """``(base, end)`` when *signals* occupy consecutive ascending
        slots (a packed block), else ``None``.

        A block lets S-wide handshake vectors be read as one slice
        ``values[base:end]`` and written with one slice compare/assign.
        """
        slots = []
        for sig in signals:
            slot = self._slot_by_id.get(id(sig))
            if slot is None:
                return None
            slots.append(slot)
        if not slots:
            return None
        base = slots[0]
        for offset, slot in enumerate(slots):
            if slot != base + offset:
                return None
        return base, base + len(slots)

    # ------------------------------------------------------------------
    # dependency plumbing (populated by the compiled settle engine)
    # ------------------------------------------------------------------
    def attach_readers(
        self,
        readers: "dict[int, Sequence[int]]",
        dirty: set[int],
    ) -> None:
        """Install the declared-reader map and shared dirty set.

        *readers* maps ``id(signal)`` to the indices of the components
        that declared a combinational read of it; *dirty* is the
        engine's live worklist.  Compiled steps capture both so a block
        write that actually changed values marks exactly the affected
        readers — the batched analogue of ``Signal.set`` notifying its
        ``_readers``.  Before attachment, :meth:`readers_of` returns
        empty tuples and ``dirty`` is an unused scratch set, so compiled
        steps stay correct (just unscheduled) under the other engines.
        """
        self._reader_map = {
            key: tuple(value) for key, value in readers.items()
        }
        self.dirty = dirty

    def readers_of(self, signals: Iterable[Signal]) -> tuple[int, ...]:
        """Union of declared-reader component indices over *signals*."""
        out: set[int] = set()
        for sig in signals:
            out.update(self._reader_map.get(id(sig), ()))
        return tuple(sorted(out))
