"""Simulator state snapshots: columnar copy, identity-preserving restore.

A :class:`SimSnapshot` captures everything a finalized design needs to
resume from an earlier point in simulated time:

* the flat :class:`~repro.kernel.slots.SlotStore` value list (every
  signal, one columnar copy),
* the :class:`~repro.kernel.slots.SeqStore` cells (re-homed sequential
  state, one columnar copy) when the compiled tick phase is active,
* each component's registered Python state (queues, monitor columns,
  endpoint streams, FSMs) captured generically from its ``__dict__``,
* any extra non-component state registered through
  :meth:`~repro.kernel.simulator.Simulator.add_snapshot_hook` (e.g. the
  MD5 circuit's global round counter).

The copy is *structure-sharing*: every :class:`Component` and
:class:`Signal` is treated as infrastructure and kept by reference (a
``deepcopy`` memo pre-seeded with the design's objects), so only data
values are duplicated.  Aliasing between the live design and the
snapshot is broken for all mutable state — restoring and running never
mutates the snapshot, so one snapshot supports any number of restores
(the basis of rewind-style :meth:`~repro.kernel.simulator.Simulator.fork`).

Restore is **identity-preserving**: compiled settle/tick closures bind
lists (monitor columns, endpoint logs, the seq-store value list) and
helper objects (arbiters) at compile time, so restore writes *through*
those objects — list/dict/set attributes are updated in place and plain
helper objects have their ``__dict__`` rewritten — instead of rebinding
attributes to fresh objects.  After the state is back, everything is
marked stale (engine ``invalidate_all`` plus every tick plan), exactly
as after any out-of-band mutation, and the next settle re-derives the
combinational net from the restored registers.

Contract for components (see ``docs/engines.md``): registered state must
live in ``__dict__`` attributes that ``copy.deepcopy`` can handle —
plain data, or containers of it.  Attributes holding live iterators (an
in-flight latency *iterable*) are the one known exception and raise
:class:`~repro.kernel.errors.SnapshotError` naming the attribute.
Simulator-level observers are not snapshotted; a trace recorder keeps
accumulating across a restore.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

from repro.kernel.component import Component
from repro.kernel.errors import SnapshotError
from repro.kernel.signal import Signal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.simulator import Simulator

#: Component attributes that describe *structure*, not state: identical
#: across the snapshot's lifetime by construction, so never copied.
_STRUCTURAL_KEYS = frozenset(
    {
        "name",
        "parent",
        "children",
        "_signals",
        "_comb_reads",
        "_comb_volatile",
        "_engine_hook",
        "_seq_hook",
    }
)

_MISSING = object()


def _infra_memo(sim: "Simulator") -> tuple[dict[int, Any], frozenset[int]]:
    """A deepcopy memo pre-seeded with the design's shared objects.

    Components and signals are identity — copying them would duplicate
    the design, and every reference a state attribute holds to them
    (``self.channel``, cached signal lists) must stay a reference.
    """
    memo: dict[int, Any] = {}
    for comp in sim._components:
        memo[id(comp)] = comp
    for sig in sim._signals:
        memo[id(sig)] = sig
    return memo, frozenset(memo)


def _is_infra_sequence(value: Any) -> bool:
    """Non-empty list/tuple holding only components/signals (a cache)."""
    if type(value) not in (list, tuple) or not value:
        return False
    return all(isinstance(item, (Component, Signal)) for item in value)


def _snapshot_component(
    comp: Component, memo: dict[int, Any], infra_ids: frozenset[int]
) -> dict[str, Any]:
    blob: dict[str, Any] = {}
    for key, value in comp.__dict__.items():
        if key in _STRUCTURAL_KEYS:
            continue
        if id(value) in infra_ids or _is_infra_sequence(value):
            # A direct reference to a component/signal (or a cached
            # list of them) is structure: shared, never restored.
            continue
        try:
            blob[key] = copy.deepcopy(value, memo)
        except Exception as exc:
            raise SnapshotError(
                f"{comp.path}: attribute {key!r} cannot be snapshotted "
                f"({type(exc).__name__}: {exc}); hold registered state "
                f"in plain data attributes"
            ) from exc
    return blob


def _restore_component(
    comp: Component, blob: dict[str, Any], memo: dict[int, Any]
) -> None:
    ns = comp.__dict__
    for key, snap_val in blob.items():
        cur = ns.get(key, _MISSING)
        if cur is snap_val:
            # Identical object: an infra reference deepcopy kept by
            # identity, or an unchanged interned immutable.
            continue
        val = copy.deepcopy(snap_val, memo)
        # Identity-preserving paths first: compiled closures bind these
        # containers/objects, so the state must flow *through* them.
        if type(cur) is list and type(val) is list:
            cur[:] = val
        elif type(cur) is dict and type(val) is dict:
            cur.clear()
            cur.update(val)
        elif type(cur) is set and type(val) is set:
            cur.clear()
            cur.update(val)
        elif (
            cur is not _MISSING
            and type(cur) is type(val)
            and not isinstance(cur, (Component, Signal))
            and getattr(cur, "__dict__", None) is not None
            and type(cur).__module__ != "builtins"
        ):
            # Plain helper object (e.g. a RoundRobinArbiter): rewrite
            # its state in place so compile-time bindings stay valid.
            cur.__dict__.clear()
            cur.__dict__.update(val.__dict__)
        else:
            ns[key] = val


class SimSnapshot:
    """One point of a simulation's state; see the module docstring.

    Produced by :meth:`Simulator.snapshot`; opaque to callers apart from
    the read-only :attr:`cycle` it was taken at.
    """

    __slots__ = ("cycle", "_values", "_seq_values", "_blobs", "_extras",
                 "_owner")

    def __init__(self, cycle, values, seq_values, blobs, extras, owner):
        self.cycle = cycle
        self._values = values
        self._seq_values = seq_values
        self._blobs = blobs
        self._extras = extras
        self._owner = owner

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"<SimSnapshot cycle={self.cycle} signals={len(self._values)} "
            f"components={len(self._blobs)}>"
        )


def take_snapshot(sim: "Simulator") -> SimSnapshot:
    """Capture *sim*'s complete state (simulator must be finalized)."""
    memo, infra_ids = _infra_memo(sim)
    blobs = [
        _snapshot_component(comp, memo, infra_ids)
        for comp in sim._components
    ]
    values = copy.deepcopy(sim._store.values, memo)
    seq = sim._seq
    seq_values = copy.deepcopy(seq.values, memo) if seq is not None else None
    extras = []
    for save, _load in sim._snapshot_hooks:
        extras.append(copy.deepcopy(save(), memo))
    return SimSnapshot(sim.cycle, values, seq_values, blobs, extras, sim)


def restore_snapshot(sim: "Simulator", snap: SimSnapshot) -> None:
    """Rewind *sim* to *snap*; see :meth:`Simulator.restore`."""
    if snap._owner is not sim:
        raise SnapshotError(
            "snapshot belongs to a different simulator instance"
        )
    if len(snap._blobs) != len(sim._components):
        raise SnapshotError(
            f"snapshot covers {len(snap._blobs)} components but the "
            f"simulator now has {len(sim._components)}"
        )
    if len(snap._extras) != len(sim._snapshot_hooks):
        raise SnapshotError(
            "snapshot hooks changed since the snapshot was taken"
        )
    memo, _infra_ids = _infra_memo(sim)
    store_values = sim._store.values
    if len(snap._values) != len(store_values):
        raise SnapshotError(
            "signal count changed since the snapshot was taken"
        )
    store_values[:] = copy.deepcopy(snap._values, memo)
    seq = sim._seq
    if snap._seq_values is not None and seq is not None:
        if len(snap._seq_values) != len(seq.values):
            raise SnapshotError(
                "sequential-state layout changed since the snapshot "
                "was taken (rebuild with different collaborators?)"
            )
        seq.values[:] = copy.deepcopy(snap._seq_values, memo)
    for comp, blob in zip(sim._components, snap._blobs):
        _restore_component(comp, blob, memo)
    for (_save, load), blob in zip(sim._snapshot_hooks, snap._extras):
        load(copy.deepcopy(blob, memo))
    sim.cycle = snap.cycle
    # Everything is stale after an out-of-band rewrite: force the next
    # settle to re-derive the full combinational net and re-arm every
    # delta-gated tick plan.
    invalidate_all = getattr(sim._engine, "invalidate_all", None)
    if invalidate_all is not None:
        invalidate_all()
    if seq is not None:
        for plan in seq.plans:
            plan.invalidate()


class ForkContext:
    """``with sim.fork():`` — snapshot on entry, rewind on exit.

    The rewind-style fork: warm a design up once, then explore any
    number of stimulus variants from the same branch point::

        sim.run(cycles=warmup)
        with sim.fork():
            src.push(0, item_a)
            sim.run(cycles=100)          # trajectory A
        with sim.fork():                 # state is back at the branch
            src.push(0, item_b)
            sim.run(cycles=100)          # trajectory B

    The snapshot is taken eagerly at construction (so ``fork()`` itself
    marks the branch point) and the rewind happens on ``__exit__`` even
    when the body raises.  Entering yields the snapshot, which remains
    valid for further explicit :meth:`Simulator.restore` calls.
    """

    __slots__ = ("_sim", "snapshot")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self.snapshot = take_snapshot(sim)

    def __enter__(self) -> SimSnapshot:
        return self.snapshot

    def __exit__(self, exc_type, exc, tb) -> None:
        restore_snapshot(self._sim, self.snapshot)
