"""Signals: named value holders connecting components.

A :class:`Signal` is the kernel's wire.  It has exactly one logical driver
(enforced loosely through :meth:`Signal.set_driver`), a current value, and a
declared bit-width used only by the cost model and the trace renderer.

A signal is a mutable cell with change tracking.  Under the simulator's
naive engine the change tracking is purely passive (the settle loop
snapshots and compares); under the event engine every signal additionally
carries the indices of the components that declared a combinational read
of it (``_readers``) plus a back-reference to the live engine, so a
:meth:`Signal.set` that actually changes the value can mark exactly the
affected readers dirty instead of forcing a whole-design re-evaluation.

Storage is **slot-indexed**: a signal's value lives at ``_store[_slot]``
where ``_store`` is a plain Python list.  A freshly created signal owns a
private one-element list; when the simulator finalizes, a
:class:`~repro.kernel.slots.SlotStore` re-homes every signal into one
shared flat list so that the compiled settle engine (and any vectorized
``compile_comb`` path) can read and write raw slots — slices included —
without ever touching the Signal object, while ``Signal.get``/``set``
keep observing the exact same cells.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.kernel.errors import WiringError
from repro.kernel.values import X, same_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.component import Component


class Signal:
    """A named wire carrying an arbitrary Python value.

    Parameters
    ----------
    name:
        Local name; the full hierarchical name is assigned when the owning
        component is registered with a simulator.
    width:
        Declared bit-width.  Purely descriptive for control signals
        (width 1); the cost model uses it for datapath sizing.
    init:
        Initial value (defaults to the unknown sentinel ``X``).
    """

    __slots__ = (
        "name", "width", "_store", "_slot", "_driver", "_touched",
        "_engine", "_readers",
    )

    def __init__(self, name: str, width: int = 1, init: Any = X):
        self.name = name
        self.width = int(width)
        # Slot-indexed storage: a private one-element list until a
        # SlotStore re-homes the signal into the design-wide flat list.
        self._store: list[Any] = [init]
        self._slot = 0
        self._driver: "Component | None" = None
        self._touched = False
        # Filled in by the event engine at finalize time: the engine
        # itself and the indices of the declared reader components.
        self._engine: Any = None
        self._readers: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    # value access
    # ------------------------------------------------------------------
    @property
    def value(self) -> Any:
        """Current value of the signal."""
        return self._store[self._slot]

    def get(self) -> Any:
        """Return the current value (alias of :attr:`value`)."""
        return self._store[self._slot]

    def set(self, value: Any) -> bool:
        """Drive *value* onto the signal.

        Returns True when the value actually changed, which the settle loop
        uses to decide whether another iteration is needed.
        """
        store = self._store
        slot = self._slot
        old = store[slot]
        if old is value or same_value(old, value):
            return False
        store[slot] = value
        self._touched = True
        engine = self._engine
        if engine is not None:
            engine.note_change(self, old)
        return True

    # ------------------------------------------------------------------
    # change tracking (used by the simulator's settle loop)
    # ------------------------------------------------------------------
    def clear_touched(self) -> None:
        self._touched = False

    @property
    def touched(self) -> bool:
        return self._touched

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def set_driver(self, component: "Component") -> None:
        """Record the driving component, rejecting double drivers."""
        if self._driver is not None and self._driver is not component:
            raise WiringError(
                f"signal {self.name!r} already driven by "
                f"{self._driver.name!r}; cannot also be driven by "
                f"{component.name!r}"
            )
        self._driver = component

    @property
    def driver(self) -> "Component | None":
        return self._driver

    def __repr__(self) -> str:
        return (
            f"Signal({self.name!r}, width={self.width}, "
            f"value={self._store[self._slot]!r})"
        )


def const(name: str, value: Any, width: int = 1) -> Signal:
    """Create a signal permanently holding *value* (a tie-off)."""
    return Signal(name, width=width, init=value)
