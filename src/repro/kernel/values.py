"""Value helpers for the simulation kernel.

Signals in this kernel carry arbitrary Python objects.  Control signals
(valids, readies, grants) use plain ``bool``/``int``; datapath signals may
carry tuples, dataclasses, or whole message blocks.  The special sentinel
:data:`X` models an unknown/don't-care value, mirroring the ``X`` of
4-state RTL simulators: it is what every signal holds before its driver has
run, and what a buffer's data output shows while it is empty.

Keeping datapath values opaque is a deliberate design decision (see
DESIGN.md §5): the paper's claims are about *control* behaviour at cycle
granularity, so the kernel only needs exact control semantics, while the
area/timing cost model consumes separately declared bit-widths.
"""

from __future__ import annotations

from typing import Any


class _Unknown:
    """Singleton sentinel for an unknown signal value (RTL ``X``)."""

    _instance: "_Unknown | None" = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "X"

    def __bool__(self) -> bool:
        # An unknown value must never silently steer control flow.
        raise ValueError("attempted boolean coercion of unknown value X")

    def __reduce__(self):
        return (_Unknown, ())


#: The unknown-value sentinel.  Compare with ``is`` (it is a singleton).
X = _Unknown()


def is_x(value: Any) -> bool:
    """Return True when *value* is the unknown sentinel :data:`X`."""
    return value is X


def as_bool(value: Any) -> bool:
    """Coerce a control-signal value to bool, rejecting :data:`X`.

    Control logic in the elastic primitives goes through this helper so a
    signal that was never driven fails loudly instead of being silently
    treated as False.
    """
    if value is X:
        raise ValueError("control signal evaluated while X (undriven?)")
    return bool(value)


def bit(value: Any) -> int:
    """Coerce a control-signal value to the integer 0 or 1."""
    return 1 if as_bool(value) else 0


def bools(seq: list) -> list:
    """Coerce a handshake-value slice to canonical bools, rejecting X.

    The batched counterpart of :func:`as_bool`: one membership test picks
    the fast path (``X`` falls back to identity comparison, so ``in``
    never coerces), and ``map(bool)`` normalizes truthy ints so the
    ``count(True)``/``index(True)`` idioms used by the slot-compiled
    handshake paths are exact.  Raises exactly where a per-signal
    ``as_bool`` loop would.
    """
    if X in seq:
        return [as_bool(v) for v in seq]  # raises on the X entry
    return list(map(bool, seq))


def same_value(a: Any, b: Any) -> bool:
    """Equality that treats :data:`X` specially and never raises.

    Used by the settle loop to detect signal changes and by the protocol
    monitors to check data stability.  Two ``X`` values compare equal; an
    ``X`` never equals a concrete value.  Values that raise on ``==`` are
    considered different (conservative: forces another settle iteration).
    """
    if a is b:
        return True
    if a is X or b is X:
        return False
    try:
        return bool(a == b)
    except Exception:
        return False


def state_changed(a: Any, b: Any) -> bool:
    """Inequality for registered-state snapshots that never raises.

    Used by component ``commit()`` implementations to report whether the
    cycle's state update actually changed anything.  Values that raise on
    ``==`` are considered changed (conservative: forces re-evaluation).
    """
    if a is b:
        return False
    try:
        return not bool(a == b)
    except Exception:
        return True


def onehot_index(bits: list[bool]) -> int | None:
    """Return the index of the single asserted bit, or None if all clear.

    Raises :class:`ValueError` when more than one bit is asserted; the
    multithreaded channel invariant (at most one ``valid(i)`` per cycle)
    is enforced through this helper.
    """
    index: int | None = None
    for i, b in enumerate(bits):
        if b:
            if index is not None:
                raise ValueError(
                    f"expected one-hot vector, bits {index} and {i} both set"
                )
            index = i
    return index


def popcount(bits: list[bool]) -> int:
    """Number of asserted bits in a list of booleans."""
    return sum(1 for b in bits if b)
