"""Two-phase cycle-accurate simulator with pluggable settle engines.

Each simulated clock cycle runs:

1. **Settle** — combinational logic is evaluated until every signal is
   stable (a fixed point).  This models the combinational logic between
   register stages, including the backward combinational propagation of
   elastic ``ready`` signals through joins and forks.  Failure to
   converge within ``max_settle_iterations`` raises
   :class:`~repro.kernel.errors.ConvergenceError` naming the unstable
   signals — the kernel's stand-in for a synthesis tool's combinational
   loop check.
2. **Observe** — registered probes (monitors, trace recorders, user
   callbacks) sample the settled values.
3. **Capture** — every component computes its next register state from the
   settled values without writing any signal.
4. **Commit** — every component applies the captured state and drives its
   registered outputs.  Because capture and commit are split, register
   updates are race-free regardless of component ordering, exactly like
   nonblocking assignment in RTL.

*How* the settle phase reaches its fixed point is delegated to a settle
engine (:mod:`repro.kernel.engine`), chosen per simulator:

* ``engine="event"`` (default) — components' declared read sets
  (:meth:`~repro.kernel.component.Component.declare_reads`) and recorded
  signal drivers are compiled at finalize time into a dependency graph;
  acyclic regions settle in one topologically ordered sweep and
  combinational cycles run a dirty-set worklist to a local fixed point.
  Components whose inputs did not change are never re-evaluated, and
  behaviour-free components (channels, monitors) are never visited.
* ``engine="naive"`` — the original brute-force loop: every component is
  re-evaluated until a whole pass changes nothing.  Kept as the oracle
  for differential testing (``tests/test_engine_differential.py`` drives
  every network under both engines and asserts cycle-identical traces)
  and as an escape hatch for components with undeclarable dependencies.

The default can also be set process-wide through the
``REPRO_SIM_ENGINE`` environment variable, which is how the differential
suite replays unmodified examples under both engines.

Both engines produce identical settled values, identical
:class:`ConvergenceError` diagnostics on true combinational loops, and
identical race-free capture/commit ordering; only the work per cycle
differs (see ``docs/engines.md`` for the contract and the measured
speedups).

The simulator owns a flat list of components (the tree flattened in
registration order) and a cycle counter.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.kernel.component import Component
from repro.kernel.engine import ENGINES, make_engine
from repro.kernel.errors import SimulationError
from repro.kernel.signal import Signal


class Simulator:
    """Drives a set of components through synchronous clock cycles.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on fixed-point iterations per cycle.  The elastic
        networks in this repo settle in a handful of passes; the default
        of 64 leaves generous headroom while still catching true
        combinational loops quickly.
    engine:
        Settle strategy: ``"event"`` (dependency-driven, the default) or
        ``"naive"`` (brute-force whole-design iteration).  ``None`` reads
        the ``REPRO_SIM_ENGINE`` environment variable, falling back to
        ``"event"``.
    """

    def __init__(
        self,
        max_settle_iterations: int = 64,
        engine: str | None = None,
    ):
        if engine is None:
            engine = os.environ.get("REPRO_SIM_ENGINE") or "event"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown settle engine {engine!r}; expected one of {ENGINES}"
            )
        self.max_settle_iterations = int(max_settle_iterations)
        self.engine_name = engine
        self.cycle = 0
        self._components: list[Component] = []
        self._by_path: dict[str, Component] = {}
        self._signals: list[Signal] = []
        self._signal_by_name: dict[str, Signal] = {}
        self._observers: list[Callable[["Simulator"], None]] = []
        self._engine: Any = None
        self._finalized = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register *component* (and its whole subtree) with the simulator."""
        if self._finalized:
            raise SimulationError("cannot add components after simulation start")
        for comp in component.iter_tree():
            self._components.append(comp)
            self._by_path.setdefault(comp.path, comp)
        return component

    def add_observer(self, fn: Callable[["Simulator"], None]) -> None:
        """Register a callback invoked after each cycle's settle phase."""
        self._observers.append(fn)

    def _finalize(self) -> None:
        if self._finalized:
            return
        seen: set[int] = set()
        signals: list[Signal] = []
        for comp in self._components:
            for sig in comp.local_signals().values():
                if id(sig) not in seen:
                    seen.add(id(sig))
                    signals.append(sig)
        self._signals = signals
        self._signal_by_name = {}
        for sig in signals:
            self._signal_by_name.setdefault(sig.name, sig)
        # Components with no capture/commit/reset override are skipped in
        # the per-cycle phase sweeps (channels and monitors make up a
        # large share of real designs and have nothing to do there).
        self._capture_list = [
            c for c in self._components if type(c).capture is not Component.capture
        ]
        self._commit_list = [
            c for c in self._components if type(c).commit is not Component.commit
        ]
        self._reset_list = [
            c for c in self._components if type(c).reset is not Component.reset
        ]
        self._engine = make_engine(
            self.engine_name,
            self._components,
            signals,
            self.max_settle_iterations,
        )
        self._note_state = getattr(self._engine, "note_state_change", None)
        self._finalized = True

    # ------------------------------------------------------------------
    # reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset all registered state and the cycle counter."""
        self._finalize()
        for comp in self._reset_list:
            comp.reset()
        invalidate_all = getattr(self._engine, "invalidate_all", None)
        if invalidate_all is not None:
            invalidate_all()
        self.cycle = 0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def settle(self) -> int:
        """Run combinational evaluation to a fixed point.

        Returns the number of iterations used (an engine-specific
        effort measure: whole-design passes for the naive engine, the
        deepest local iteration count for the event engine).  Exposed
        publicly so tests can inspect settled values mid-cycle without
        advancing the clock.
        """
        self._finalize()
        return self._engine.settle(self.cycle)

    def _tick(self) -> None:
        """Observe, capture and commit one settled cycle."""
        for observer in self._observers:
            observer(self)
        for comp in self._capture_list:
            comp.capture()
        note = self._note_state
        if note is None:
            for comp in self._commit_list:
                comp.commit()
        else:
            # Components report whether their commit changed state the
            # combinational logic depends on; False lets the event engine
            # skip their next re-evaluation, None means "assume changed".
            for comp in self._commit_list:
                if comp.commit() is not False:
                    note(comp)
        self.cycle += 1

    def step(self) -> None:
        """Advance the simulation by one clock cycle."""
        self.settle()
        self._tick()

    def run(
        self,
        cycles: int | None = None,
        until: Callable[["Simulator"], bool] | None = None,
        max_cycles: int = 100_000,
    ) -> int:
        """Run for a fixed number of cycles or until a predicate holds.

        Parameters
        ----------
        cycles:
            Exact number of cycles to run (mutually exclusive with *until*).
        until:
            Stop as soon as the predicate returns True (checked after the
            settle phase of each cycle, before state commit — i.e. the
            condition is observed in the cycle in which it first holds).
        max_cycles:
            Safety bound for *until* runs; exceeding it raises
            :class:`~repro.kernel.errors.SimulationError` so a deadlocked
            elastic network fails a test instead of hanging it.

        Returns the number of cycles executed by this call.
        """
        if (cycles is None) == (until is None):
            raise ValueError("specify exactly one of 'cycles' or 'until'")
        executed = 0
        if cycles is not None:
            for _ in range(cycles):
                self.step()
                executed += 1
            return executed
        assert until is not None
        while executed < max_cycles:
            self.settle()
            if until(self):
                return executed
            self._tick()
            executed += 1
        raise SimulationError(
            f"'until' predicate not satisfied within {max_cycles} cycles "
            f"(possible deadlock)"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> list[Component]:
        return list(self._components)

    @property
    def signals(self) -> list[Signal]:
        """Every signal owned by a registered component."""
        self._finalize()
        return list(self._signals)

    def find(self, path: str) -> Component:
        """Look up a component by hierarchical dotted path (O(1))."""
        try:
            return self._by_path[path]
        except KeyError:
            raise KeyError(f"no component with path {path!r}") from None

    def signal_by_name(self, name: str) -> Signal:
        """Look up a signal by its full hierarchical name (O(1))."""
        self._finalize()
        try:
            return self._signal_by_name[name]
        except KeyError:
            raise KeyError(f"no signal named {name!r}") from None


def build(
    *components: Component,
    max_settle_iterations: int = 64,
    engine: str | None = None,
) -> Simulator:
    """Convenience constructor: make a simulator, add components, reset."""
    sim = Simulator(max_settle_iterations=max_settle_iterations, engine=engine)
    for comp in components:
        sim.add(comp)
    sim.reset()
    return sim
