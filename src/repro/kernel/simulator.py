"""Two-phase cycle-accurate simulator with pluggable settle engines.

Each simulated clock cycle runs:

1. **Settle** — combinational logic is evaluated until every signal is
   stable (a fixed point).  This models the combinational logic between
   register stages, including the backward combinational propagation of
   elastic ``ready`` signals through joins and forks.  Failure to
   converge within ``max_settle_iterations`` raises
   :class:`~repro.kernel.errors.ConvergenceError` naming the unstable
   signals — the kernel's stand-in for a synthesis tool's combinational
   loop check.
2. **Observe** — registered probes (monitors, trace recorders, user
   callbacks) sample the settled values.
3. **Capture** — every component computes its next register state from the
   settled values without writing any signal.
4. **Commit** — every component applies the captured state and drives its
   registered outputs.  Because capture and commit are split, register
   updates are race-free regardless of component ordering, exactly like
   nonblocking assignment in RTL.

*How* the settle phase reaches its fixed point is delegated to a settle
engine (:mod:`repro.kernel.engine`), chosen per simulator:

* ``engine="compiled"`` (default) — signals are flattened into a
  slot-indexed value store (:mod:`repro.kernel.slots`) at finalize time;
  maximal acyclic runs of the declared dependency graph are fused into
  generated straight-line functions and combinational cycles run a
  dirty-set worklist over component ints.  Hot components supply
  vectorized slot-level evaluations via
  :meth:`~repro.kernel.component.Component.compile_comb`; everything
  else falls back to its plain ``combinational()`` transparently.
* ``engine="event"`` — the same dependency graph, scheduled change-first:
  components whose inputs did not change are never re-evaluated.  Wins
  when large parts of the design are idle; loses to ``compiled`` on
  dense designs where the per-evaluation Python cost dominates.
* ``engine="naive"`` — the original brute-force loop: every component is
  re-evaluated until a whole pass changes nothing.  Kept as the oracle
  for differential testing (``tests/test_engine_differential.py`` drives
  every network under all engines and asserts cycle-identical traces)
  and as an escape hatch for components with undeclarable dependencies.

The default can also be set process-wide through the
``REPRO_SIM_ENGINE`` environment variable, which is how the differential
suite replays unmodified examples under every engine.

All engines produce identical settled values, identical
:class:`ConvergenceError` diagnostics on true combinational loops, and
identical race-free capture/commit ordering; only the work per cycle
differs (see ``docs/engines.md`` for the contract and the measured
speedups).

The simulator owns a flat list of components (the tree flattened in
registration order) and a cycle counter.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.kernel.component import Component
from repro.kernel.engine import ENGINES, make_engine
from repro.kernel.errors import SimulationError
from repro.kernel.signal import Signal
from repro.kernel.slots import SlotStore


class Simulator:
    """Drives a set of components through synchronous clock cycles.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on fixed-point iterations per cycle.  The elastic
        networks in this repo settle in a handful of passes; the default
        of 64 leaves generous headroom while still catching true
        combinational loops quickly.
    engine:
        Settle strategy: ``"compiled"`` (slot-compiled, the default),
        ``"event"`` (dependency-driven change scheduling) or ``"naive"``
        (brute-force whole-design iteration).  ``None`` reads the
        ``REPRO_SIM_ENGINE`` environment variable, falling back to
        ``"compiled"``.
    """

    def __init__(
        self,
        max_settle_iterations: int = 64,
        engine: str | None = None,
    ):
        if engine is None:
            engine = os.environ.get("REPRO_SIM_ENGINE") or "compiled"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown settle engine {engine!r}; expected one of {ENGINES}"
            )
        self.max_settle_iterations = int(max_settle_iterations)
        self.engine_name = engine
        self.cycle = 0
        self._components: list[Component] = []
        self._by_path: dict[str, Component] = {}
        self._signals: list[Signal] = []
        self._signal_by_name: dict[str, Signal] = {}
        self._observers: list[Callable[["Simulator"], None]] = []
        self._engine: Any = None
        self._finalized = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register *component* (and its whole subtree) with the simulator."""
        if self._finalized:
            raise SimulationError("cannot add components after simulation start")
        for comp in component.iter_tree():
            self._components.append(comp)
            self._by_path.setdefault(comp.path, comp)
        return component

    def add_observer(self, fn: Callable[["Simulator"], None]) -> None:
        """Register a callback invoked after each cycle's settle phase."""
        self._observers.append(fn)

    def _finalize(self) -> None:
        if self._finalized:
            return
        seen: set[int] = set()
        signals: list[Signal] = []
        for comp in self._components:
            for sig in comp.local_signals().values():
                if id(sig) not in seen:
                    seen.add(id(sig))
                    signals.append(sig)
        self._signals = signals
        self._signal_by_name = {}
        for sig in signals:
            self._signal_by_name.setdefault(sig.name, sig)
        # Flatten every signal into the shared slot-indexed value store.
        # All engines read/write through it (Signal.get/set index the
        # same list); the compiled engine additionally evaluates raw
        # slots and slices directly.
        self._store = SlotStore(signals)
        # Components with no capture/commit/reset override are skipped in
        # the per-cycle phase sweeps (channels and monitors make up a
        # large share of real designs and have nothing to do there).
        # The phase loops run over pre-bound methods: one global lookup
        # fewer per component per cycle.
        self._capture_list = [
            c for c in self._components if type(c).capture is not Component.capture
        ]
        self._commit_list = [
            c for c in self._components if type(c).commit is not Component.commit
        ]
        self._reset_list = [
            c for c in self._components if type(c).reset is not Component.reset
        ]
        self._captures = [c.capture for c in self._capture_list]
        self._build_engine()
        self._finalized = True

    def _build_engine(self) -> None:
        """(Re)create the settle engine over the finalized structure."""
        self._engine = make_engine(
            self.engine_name,
            self._components,
            self._signals,
            self.max_settle_iterations,
            self._store,
        )
        self._note_state = getattr(self._engine, "note_state_change", None)
        # Commit-change reports only matter for components the engine
        # actually schedules; observers (monitors, sinks) commit without
        # the notification round-trip.
        tracked = getattr(self._engine, "tracked_component_ids", frozenset())
        if self._note_state is None:
            tracked = frozenset()
        self._noted_commits = [
            (c, c.commit) for c in self._commit_list if id(c) in tracked
        ]
        self._plain_commits = [
            c.commit for c in self._commit_list if id(c) not in tracked
        ]

    # ------------------------------------------------------------------
    # reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset all registered state and the cycle counter.

        On an already-finalized simulator the settle engine is rebuilt,
        re-resolving everything the engines capture at compile time —
        so post-finalize collaborator swaps (replacing an MEB's arbiter
        in an ablation, re-wiring a function) take effect at the next
        reset.  Mutating collaborators *without* a reset is undefined
        under the compiled engine (its slot steps hold compile-time
        bindings).
        """
        already_finalized = self._finalized
        self._finalize()
        if already_finalized:
            self._build_engine()
        for comp in self._reset_list:
            comp.reset()
        invalidate_all = getattr(self._engine, "invalidate_all", None)
        if invalidate_all is not None:
            invalidate_all()
        self.cycle = 0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def settle(self) -> int:
        """Run combinational evaluation to a fixed point.

        Returns the number of iterations used (an engine-specific
        effort measure: whole-design passes for the naive engine, the
        deepest local iteration count for the event engine).  Exposed
        publicly so tests can inspect settled values mid-cycle without
        advancing the clock.
        """
        self._finalize()
        return self._engine.settle(self.cycle)

    def _tick(self) -> None:
        """Observe, capture and commit one settled cycle."""
        for observer in self._observers:
            observer(self)
        for capture in self._captures:
            capture()
        for commit in self._plain_commits:
            commit()
        note = self._note_state
        if note is not None:
            # Components report whether their commit changed state the
            # combinational logic depends on; False lets the settle
            # engine skip their next re-evaluation, None means "assume
            # changed".
            for comp, commit in self._noted_commits:
                if commit() is not False:
                    note(comp)
        self.cycle += 1

    def step(self) -> None:
        """Advance the simulation by one clock cycle."""
        self.settle()
        self._tick()

    def run(
        self,
        cycles: int | None = None,
        until: Callable[["Simulator"], bool] | None = None,
        max_cycles: int = 100_000,
    ) -> int:
        """Run for a fixed number of cycles or until a predicate holds.

        Parameters
        ----------
        cycles:
            Exact number of cycles to run (mutually exclusive with *until*).
        until:
            Stop as soon as the predicate returns True (checked after the
            settle phase of each cycle, before state commit — i.e. the
            condition is observed in the cycle in which it first holds).
        max_cycles:
            Safety bound for *until* runs; exceeding it raises
            :class:`~repro.kernel.errors.SimulationError` so a deadlocked
            elastic network fails a test instead of hanging it.

        Returns the number of cycles executed by this call.
        """
        if (cycles is None) == (until is None):
            raise ValueError("specify exactly one of 'cycles' or 'until'")
        executed = 0
        self._finalize()
        # self._engine is re-read every cycle (not bound once): an
        # observer or `until` predicate may call reset(), which rebuilds
        # the engine mid-run.
        tick = self._tick
        if cycles is not None:
            for _ in range(cycles):
                self._engine.settle(self.cycle)
                tick()
                executed += 1
            return executed
        assert until is not None
        while executed < max_cycles:
            self._engine.settle(self.cycle)
            if until(self):
                return executed
            tick()
            executed += 1
        raise SimulationError(
            f"'until' predicate not satisfied within {max_cycles} cycles "
            f"(possible deadlock)"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> list[Component]:
        return list(self._components)

    @property
    def signals(self) -> list[Signal]:
        """Every signal owned by a registered component."""
        self._finalize()
        return list(self._signals)

    @property
    def store(self) -> SlotStore:
        """The flat slot-indexed value store backing every signal."""
        self._finalize()
        return self._store

    def find(self, path: str) -> Component:
        """Look up a component by hierarchical dotted path (O(1))."""
        try:
            return self._by_path[path]
        except KeyError:
            raise KeyError(f"no component with path {path!r}") from None

    def signal_by_name(self, name: str) -> Signal:
        """Look up a signal by its full hierarchical name (O(1))."""
        self._finalize()
        try:
            return self._signal_by_name[name]
        except KeyError:
            raise KeyError(f"no signal named {name!r}") from None


def build(
    *components: Component,
    max_settle_iterations: int = 64,
    engine: str | None = None,
) -> Simulator:
    """Convenience constructor: make a simulator, add components, reset."""
    sim = Simulator(max_settle_iterations=max_settle_iterations, engine=engine)
    for comp in components:
        sim.add(comp)
    sim.reset()
    return sim
