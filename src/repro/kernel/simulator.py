"""Two-phase cycle-accurate simulator.

Each simulated clock cycle runs:

1. **Settle** — every component's ``combinational()`` is evaluated
   repeatedly until no signal changes (a fixed point).  This models the
   combinational logic between register stages, including the backward
   combinational propagation of elastic ``ready`` signals through joins and
   forks.  Failure to converge within ``max_settle_iterations`` raises
   :class:`~repro.kernel.errors.ConvergenceError` naming the unstable
   signals — the kernel's stand-in for a synthesis tool's combinational
   loop check.
2. **Observe** — registered probes (monitors, trace recorders, user
   callbacks) sample the settled values.
3. **Capture** — every component computes its next register state from the
   settled values without writing any signal.
4. **Commit** — every component applies the captured state and drives its
   registered outputs.  Because capture and commit are split, register
   updates are race-free regardless of component ordering, exactly like
   nonblocking assignment in RTL.

The simulator owns a flat list of components (the tree flattened in
registration order) and a cycle counter.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.component import Component
from repro.kernel.errors import ConvergenceError, SimulationError
from repro.kernel.signal import Signal


class Simulator:
    """Drives a set of components through synchronous clock cycles.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on fixed-point iterations per cycle.  The elastic
        networks in this repo settle in a handful of passes; the default
        of 64 leaves generous headroom while still catching true
        combinational loops quickly.
    """

    def __init__(self, max_settle_iterations: int = 64):
        self.max_settle_iterations = int(max_settle_iterations)
        self.cycle = 0
        self._components: list[Component] = []
        self._signals: list[Signal] = []
        self._observers: list[Callable[["Simulator"], None]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register *component* (and its whole subtree) with the simulator."""
        if self._finalized:
            raise SimulationError("cannot add components after simulation start")
        for comp in component.iter_tree():
            self._components.append(comp)
        return component

    def add_observer(self, fn: Callable[["Simulator"], None]) -> None:
        """Register a callback invoked after each cycle's settle phase."""
        self._observers.append(fn)

    def _finalize(self) -> None:
        if self._finalized:
            return
        seen: set[int] = set()
        signals: list[Signal] = []
        for comp in self._components:
            for sig in comp.local_signals().values():
                if id(sig) not in seen:
                    seen.add(id(sig))
                    signals.append(sig)
        self._signals = signals
        self._finalized = True

    # ------------------------------------------------------------------
    # reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset all registered state and the cycle counter."""
        self._finalize()
        for comp in self._components:
            comp.reset()
        self.cycle = 0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def settle(self) -> int:
        """Run combinational evaluation to a fixed point.

        Returns the number of iterations used.  Exposed publicly so tests
        can inspect settled values mid-cycle without advancing the clock.
        """
        self._finalize()
        from repro.kernel.values import same_value

        for iteration in range(1, self.max_settle_iterations + 1):
            # Convergence is judged on net change across the whole pass, so
            # a component may harmlessly clear-then-set a signal within one
            # evaluation (a common idiom in demux-style logic).
            before = [sig.value for sig in self._signals]
            for comp in self._components:
                comp.combinational()
            changed = [
                sig.name
                for sig, old in zip(self._signals, before)
                if not same_value(sig.value, old)
            ]
            if not changed:
                return iteration
        raise ConvergenceError(self.cycle, self.max_settle_iterations, changed)

    def step(self) -> None:
        """Advance the simulation by one clock cycle."""
        self.settle()
        for observer in self._observers:
            observer(self)
        for comp in self._components:
            comp.capture()
        for comp in self._components:
            comp.commit()
        self.cycle += 1

    def run(
        self,
        cycles: int | None = None,
        until: Callable[["Simulator"], bool] | None = None,
        max_cycles: int = 100_000,
    ) -> int:
        """Run for a fixed number of cycles or until a predicate holds.

        Parameters
        ----------
        cycles:
            Exact number of cycles to run (mutually exclusive with *until*).
        until:
            Stop as soon as the predicate returns True (checked after the
            settle phase of each cycle, before state commit — i.e. the
            condition is observed in the cycle in which it first holds).
        max_cycles:
            Safety bound for *until* runs; exceeding it raises
            :class:`~repro.kernel.errors.SimulationError` so a deadlocked
            elastic network fails a test instead of hanging it.

        Returns the number of cycles executed by this call.
        """
        if (cycles is None) == (until is None):
            raise ValueError("specify exactly one of 'cycles' or 'until'")
        executed = 0
        if cycles is not None:
            for _ in range(cycles):
                self.step()
                executed += 1
            return executed
        assert until is not None
        while executed < max_cycles:
            self.settle()
            if until(self):
                return executed
            for observer in self._observers:
                observer(self)
            for comp in self._components:
                comp.capture()
            for comp in self._components:
                comp.commit()
            self.cycle += 1
            executed += 1
        raise SimulationError(
            f"'until' predicate not satisfied within {max_cycles} cycles "
            f"(possible deadlock)"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> list[Component]:
        return list(self._components)

    def find(self, path: str) -> Component:
        """Look up a component by hierarchical dotted path."""
        for comp in self._components:
            if comp.path == path:
                return comp
        raise KeyError(f"no component with path {path!r}")

    def signal_by_name(self, name: str) -> Signal:
        """Look up a signal by its full hierarchical name."""
        self._finalize()
        for sig in self._signals:
            if sig.name == name:
                return sig
        raise KeyError(f"no signal named {name!r}")


def build(*components: Component, max_settle_iterations: int = 64) -> Simulator:
    """Convenience constructor: make a simulator, add components, reset."""
    sim = Simulator(max_settle_iterations=max_settle_iterations)
    for comp in components:
        sim.add(comp)
    sim.reset()
    return sim
