"""Two-phase cycle-accurate simulator with pluggable settle engines.

Each simulated clock cycle runs:

1. **Settle** — combinational logic is evaluated until every signal is
   stable (a fixed point).  This models the combinational logic between
   register stages, including the backward combinational propagation of
   elastic ``ready`` signals through joins and forks.  Failure to
   converge within ``max_settle_iterations`` raises
   :class:`~repro.kernel.errors.ConvergenceError` naming the unstable
   signals — the kernel's stand-in for a synthesis tool's combinational
   loop check.
2. **Observe** — registered probes (monitors, trace recorders, user
   callbacks) sample the settled values.
3. **Capture** — every component computes its next register state from the
   settled values without writing any signal.
4. **Commit** — every component applies the captured state and drives its
   registered outputs.  Because capture and commit are split, register
   updates are race-free regardless of component ordering, exactly like
   nonblocking assignment in RTL.

Under the compiled engine the capture/commit phases (the **tick**) are
additionally compiled onto the slot architecture: components that
implement :meth:`~repro.kernel.component.Component.compile_seq` re-home
their registered state into a columnar
:class:`~repro.kernel.slots.SeqStore` and supply vectorized
capture/commit steps that are **delta-gated** — a component whose
watched inputs did not change since its last capture and whose last
commit reported no state change is skipped outright.  When every plan
would skip and the settle engine is quiescent, ``run(cycles=...)``
fuses settle+tick and batches whole cycles without re-entering
per-component dispatch.  Components without a plan keep the legacy
per-cycle dispatch transparently; ``compile_seq`` can be force-disabled
with ``REPRO_SIM_SEQ=0`` (or ``Simulator(compile_seq=False)``) for
differential testing.

*How* the settle phase reaches its fixed point is delegated to a settle
engine (:mod:`repro.kernel.engine`), chosen per simulator:

* ``engine="compiled"`` (default) — signals are flattened into a
  slot-indexed value store (:mod:`repro.kernel.slots`) at finalize time;
  maximal acyclic runs of the declared dependency graph are fused into
  generated straight-line functions and combinational cycles run a
  dirty-set worklist over component ints.  Hot components supply
  vectorized slot-level evaluations via
  :meth:`~repro.kernel.component.Component.compile_comb`; everything
  else falls back to its plain ``combinational()`` transparently.
* ``engine="event"`` — the same dependency graph, scheduled change-first:
  components whose inputs did not change are never re-evaluated.  Wins
  when large parts of the design are idle; loses to ``compiled`` on
  dense designs where the per-evaluation Python cost dominates.
* ``engine="naive"`` — the original brute-force loop: every component is
  re-evaluated until a whole pass changes nothing.  Kept as the oracle
  for differential testing (``tests/test_engine_differential.py`` drives
  every network under all engines and asserts cycle-identical traces)
  and as an escape hatch for components with undeclarable dependencies.

The default can also be set process-wide through the
``REPRO_SIM_ENGINE`` environment variable, which is how the differential
suite replays unmodified examples under every engine.

All engines produce identical settled values, identical
:class:`ConvergenceError` diagnostics on true combinational loops, and
identical race-free capture/commit ordering; only the work per cycle
differs (see ``docs/engines.md`` for the contract and the measured
speedups).

The simulator owns a flat list of components (the tree flattened in
registration order) and a cycle counter.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.kernel.component import Component
from repro.kernel.engine import ENGINES, make_engine

# Re-exported here because ensemble execution is part of the simulator's
# public surface (build one simulator, advance K scenarios in lockstep).
from repro.kernel.ensemble import (
    EnsembleSimulator as EnsembleSimulator,
)
from repro.kernel.ensemble import (
    lift_simulator as lift_simulator,
)
from repro.kernel.errors import FusionBlockedError, SimulationError
from repro.kernel.signal import Signal
from repro.kernel.slots import SeqStore, SlotStore
from repro.kernel.snapshot import (
    ForkContext,
    SimSnapshot,
    restore_snapshot,
    take_snapshot,
)


class WatchedPredicate:
    """An ``until`` predicate with a declared-watch contract.

    ``run(until=...)`` polls its predicate every cycle, which forces the
    simulator to step cycle-by-cycle even when the design is fully
    quiescent — a deadlocked (or slowly draining) elastic network pays
    full per-cycle dispatch just to keep observing the same False.
    Wrapping the predicate in a ``WatchedPredicate`` declares a contract
    that lets ``run`` batch those idle stretches through the same
    ``_fuse_quiescent`` fast path ``run(cycles=...)`` already uses:

    **the predicate's value is a pure function of the declared watch
    signals and of transfer-derived component state** (counts, received
    logs) — never of ``sim.cycle`` or wall-clock side state.

    Fusion only ever fires when the design is provably quiescent: no
    signal is changing *and* no compiled tick plan advances any state
    (an in-flight transfer keeps its endpoints' plans non-skippable).
    Under that precondition neither watched signals nor transfer-derived
    state can change, so a predicate honouring the contract stays False
    across the whole fused stretch and the observable behaviour is
    bit-identical to the unfused run (differential-tested).

    Parameters
    ----------
    fn:
        The underlying predicate, called with the simulator.
    watches:
        The signals the predicate's value depends on (informational for
        diagnostics/``watch_slots``; fusion relies on the quiescence
        precondition, which freezes *all* signals).
    strict:
        When True, ``run(until=...)`` raises
        :class:`~repro.kernel.errors.FusionBlockedError` up front if the
        configuration can never fuse (observers registered, non-compiled
        engine, ``compile_seq`` off, unplanned tick components) instead
        of silently degrading to cycle-by-cycle polling.
    """

    def __init__(
        self,
        fn: Callable[["Simulator"], bool],
        watches: Any = (),
        strict: bool = False,
    ):
        self._fn = fn
        self._watches = tuple(watches)
        self.strict = bool(strict)

    def watch_slots(self) -> tuple:
        """Declared watch signals (resolved to slots where available)."""
        return tuple(
            getattr(sig, "slot", sig) for sig in self._watches
        )

    def __call__(self, sim: "Simulator") -> bool:
        return bool(self._fn(sim))

    def __repr__(self) -> str:
        return (
            f"<WatchedPredicate fn={self._fn!r} "
            f"watches={len(self._watches)} strict={self.strict}>"
        )


class Simulator:
    """Drives a set of components through synchronous clock cycles.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on fixed-point iterations per cycle.  The elastic
        networks in this repo settle in a handful of passes; the default
        of 64 leaves generous headroom while still catching true
        combinational loops quickly.
    engine:
        Settle strategy: ``"compiled"`` (slot-compiled, the default),
        ``"event"`` (dependency-driven change scheduling) or ``"naive"``
        (brute-force whole-design iteration).  ``None`` reads the
        ``REPRO_SIM_ENGINE`` environment variable, falling back to
        ``"compiled"``.
    compile_seq:
        Whether the compiled engine also compiles the tick phase
        (:class:`~repro.kernel.slots.SeqStore` plans with delta-gated
        capture and settle+tick fusion).  ``None`` reads the
        ``REPRO_SIM_SEQ`` environment variable (default on); has no
        effect under the event/naive engines, whose tick is always the
        legacy per-component dispatch.
    profile:
        ``True`` attaches a fresh
        :class:`~repro.obs.profile.KernelProfiler` (available as
        ``sim.profiler``); an existing profiler instance attaches that
        one.  Profiling hooks are *compiled into* the engine and tick
        plans rather than registered as observers, so settle+tick
        fusion stays enabled and reports stay bit-identical; see
        :meth:`profile` for scoped use and ``docs/observability.md``
        for the contract.
    """

    def __init__(
        self,
        max_settle_iterations: int = 64,
        engine: str | None = None,
        compile_seq: bool | None = None,
        profile: bool | Any = False,
    ):
        if engine is None:
            engine = os.environ.get("REPRO_SIM_ENGINE") or "compiled"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown settle engine {engine!r}; expected one of {ENGINES}"
            )
        if compile_seq is None:
            compile_seq = (os.environ.get("REPRO_SIM_SEQ") or "1") not in (
                "0", "false", "off",
            )
        self.max_settle_iterations = int(max_settle_iterations)
        self.engine_name = engine
        self.seq_enabled = bool(compile_seq)
        self.cycle = 0
        self._components: list[Component] = []
        self._by_path: dict[str, Component] = {}
        self._signals: list[Signal] = []
        self._signal_by_name: dict[str, Signal] = {}
        self._observers: list[Callable[["Simulator"], None]] = []
        self._engine: Any = None
        self._seq: SeqStore | None = None
        self._seq_capture: Callable[[int], None] | None = None
        self._seq_commit: Callable[[], None] | None = None
        self._seq_fusible: Callable[[], bool] | None = None
        self._seq_covers_ticks = False
        self._snapshot_hooks: list[
            tuple[Callable[[], Any], Callable[[Any], None]]
        ] = []
        self._finalized = False
        self._profiler: Any = None
        if profile:
            self.attach_profiler(None if profile is True else profile)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register *component* (and its whole subtree) with the simulator."""
        if self._finalized:
            raise SimulationError("cannot add components after simulation start")
        for comp in component.iter_tree():
            self._components.append(comp)
            self._by_path.setdefault(comp.path, comp)
        return component

    def add_observer(self, fn: Callable[["Simulator"], None]) -> None:
        """Register a callback invoked after each cycle's settle phase."""
        self._observers.append(fn)

    def remove_observer(self, fn: Callable[["Simulator"], None]) -> None:
        """Deregister an observer added with :meth:`add_observer`.

        Observers are not part of snapshots, so a caller that attaches
        one for a bounded window (the coverage maps of
        :mod:`repro.sweep.coverage`) must detach it explicitly — a
        leftover observer keeps settle+tick fusion disabled and keeps
        firing across later snapshot rewinds.  Removing a function that
        is not registered is a no-op.
        """
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    def _finalize(self) -> None:
        if self._finalized:
            return
        seen: set[int] = set()
        signals: list[Signal] = []
        for comp in self._components:
            for sig in comp.local_signals().values():
                if id(sig) not in seen:
                    seen.add(id(sig))
                    signals.append(sig)
        self._signals = signals
        self._signal_by_name = {}
        for sig in signals:
            self._signal_by_name.setdefault(sig.name, sig)
        # Flatten every signal into the shared slot-indexed value store.
        # All engines read/write through it (Signal.get/set index the
        # same list); the compiled engine additionally evaluates raw
        # slots and slices directly.
        self._store = SlotStore(signals)
        # Components with no capture/commit/reset override are skipped in
        # the per-cycle phase sweeps (channels and monitors make up a
        # large share of real designs and have nothing to do there).
        # The phase loops run over pre-bound methods: one global lookup
        # fewer per component per cycle.
        self._capture_list = [
            c for c in self._components if type(c).capture is not Component.capture
        ]
        self._commit_list = [
            c for c in self._components if type(c).commit is not Component.commit
        ]
        self._reset_list = [
            c for c in self._components if type(c).reset is not Component.reset
        ]
        self._build_engine()
        self._finalized = True

    def _build_engine(self) -> None:
        """(Re)create the settle engine and tick plans over the structure.

        Tick plans are compiled *first* so that components re-home their
        sequential state before the settle engine asks for
        ``compile_comb`` closures — both then bind the same storage.
        Re-compiling (``rebuild()``/``reset()``) re-homes live state
        into the fresh :class:`SeqStore`, preserving it.
        """
        profiler = self._profiler
        self._seq = None
        seq_ids: set[int] = set()
        for comp in self._components:
            comp._seq_hook = None
        if self.engine_name == "compiled" and self.seq_enabled:
            seq = SeqStore(self._store)
            tick_ids = {id(c) for c in self._capture_list}
            tick_ids.update(id(c) for c in self._commit_list)
            for comp in self._components:
                if id(comp) not in tick_ids:
                    continue
                plan = comp.compile_seq(seq)
                if plan is not None:
                    if profiler is not None:
                        # Timing hooks are baked into the plan *before*
                        # compile_driver generates the fused tick sweep,
                        # so profiled and unprofiled builds each run
                        # their own generated code — nothing branches on
                        # the profiler at cycle time.
                        path = plan.component.path
                        plan.capture = profiler.wrap_tick_capture(
                            plan.capture, path
                        )
                        plan.commit = profiler.wrap_tick_fn(
                            plan.commit, path
                        )
                    seq.plans.append(plan)
                    comp._seq_hook = plan
                    seq_ids.add(id(comp))
            if seq.plans:
                self._seq = seq
        self._engine = make_engine(
            self.engine_name,
            self._components,
            self._signals,
            self.max_settle_iterations,
            self._store,
            profiler=profiler,
        )
        self._note_state = getattr(self._engine, "note_state_change", None)
        # Commit-change reports only matter for components the engine
        # actually schedules; observers (monitors, sinks) commit without
        # the notification round-trip.
        tracked = getattr(self._engine, "tracked_component_ids", frozenset())
        if self._note_state is None:
            tracked = frozenset()
        def tick_fn(fn, comp):
            if profiler is None:
                return fn
            return profiler.wrap_tick_fn(fn, comp.path)

        self._captures = [
            tick_fn(c.capture, c)
            for c in self._capture_list
            if id(c) not in seq_ids
        ]
        self._noted_commits = [
            (c, tick_fn(c.commit, c))
            for c in self._commit_list
            if id(c) in tracked and id(c) not in seq_ids
        ]
        self._plain_commits = [
            tick_fn(c.commit, c)
            for c in self._commit_list
            if id(c) not in tracked and id(c) not in seq_ids
        ]
        if self._seq is not None:
            # Fuse the whole schedule into generated capture/commit
            # sweeps with the engine's stale bookkeeping baked in.
            self._seq_capture, self._seq_commit, self._seq_fusible = (
                self._seq.compile_driver(
                    self._engine.stale_set, self._engine.component_index
                )
            )
        else:
            self._seq_capture = self._seq_commit = None
            self._seq_fusible = None
        # Fusion needs the *whole* tick expressible through plans.
        self._seq_covers_ticks = (
            self._seq is not None
            and not self._captures
            and not self._noted_commits
            and not self._plain_commits
        )
        if profiler is not None:
            profiler.instrument_engine(self._engine)

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> Any:
        """The attached :class:`KernelProfiler`, or ``None``."""
        return self._profiler

    def attach_profiler(self, profiler: Any = None) -> Any:
        """Attach *profiler* (or a fresh one) by recompiling the engine.

        This is explicitly **not** an observer registration: the engine
        and tick plans are rebuilt with timing closures compiled in, so
        settle+tick fusion stays eligible and the run's observable
        behaviour is bit-identical (everything is marked stale, and the
        re-derived fixed point is the same one).  Returns the profiler.
        """
        if profiler is None:
            from repro.obs.profile import KernelProfiler

            profiler = KernelProfiler()
        if self._profiler is profiler:
            return profiler
        if self._profiler is not None:
            self.detach_profiler()
        self._profiler = profiler
        if self._finalized:
            self._build_engine()
            invalidate_all = getattr(self._engine, "invalidate_all", None)
            if invalidate_all is not None:
                invalidate_all()
        profiler.instrument_sim(self)
        return profiler

    def detach_profiler(self) -> Any:
        """Detach the profiler and recompile the unprofiled fast path.

        The engine and tick plans are rebuilt without any timing
        closures — the simulator afterwards runs the exact code it
        would have run had the profiler never existed (the
        ``profile_overhead`` benchmark gate holds this to <2% on
        ``mt_pipeline``).  Returns the detached profiler (its
        accumulated report stays readable), or ``None`` if none was
        attached.
        """
        profiler = self._profiler
        if profiler is None:
            return None
        profiler.release_sim(self)
        self._profiler = None
        if self._finalized:
            self._build_engine()
            invalidate_all = getattr(self._engine, "invalidate_all", None)
            if invalidate_all is not None:
                invalidate_all()
        return profiler

    def profile(self, profiler: Any = None) -> Any:
        """Scoped profiling: ``with sim.profile() as prof: sim.run(...)``.

        Attaches on enter, detaches on exit; ``prof.report()`` stays
        available after the block.  See
        :class:`repro.obs.profile.ProfileSession`.
        """
        from repro.obs.profile import ProfileSession

        return ProfileSession(self, profiler)

    # ------------------------------------------------------------------
    # reset / rebuild
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Recompile the settle engine and tick plans, keeping all state.

        Post-finalize collaborator swaps (replacing an MEB's arbiter in
        an ablation, re-wiring a function) need the compile-time
        bindings of the compiled engine's slot/seq steps refreshed;
        ``rebuild()`` does exactly that without touching registered
        state — sequential slots are re-homed into the fresh
        :class:`SeqStore` with their live values, so traces continue
        seamlessly.  Everything is marked stale, as after any
        out-of-band mutation.
        """
        already_finalized = self._finalized
        self._finalize()
        if already_finalized:
            self._build_engine()
        invalidate_all = getattr(self._engine, "invalidate_all", None)
        if invalidate_all is not None:
            invalidate_all()

    def reset(self) -> None:
        """Reset all registered state and the cycle counter.

        On an already-finalized simulator this includes a
        :meth:`rebuild`, so collaborator swaps take effect at the next
        reset.  Mutating collaborators *without* a reset or rebuild is
        undefined under the compiled engine (its slot steps hold
        compile-time bindings).
        """
        self.rebuild()
        for comp in self._reset_list:
            comp.reset()
        self.cycle = 0

    # ------------------------------------------------------------------
    # snapshot / restore / fork
    # ------------------------------------------------------------------
    def add_snapshot_hook(
        self,
        save: Callable[[], Any],
        load: Callable[[Any], None],
    ) -> None:
        """Register extra (non-component) state with the snapshot layer.

        *save* returns a copyable blob of the state; *load* receives a
        private copy of that blob on every restore.  Used for state that
        lives outside the component tree but inside the simulated
        semantics — e.g. the MD5 circuit's global round counter.
        """
        self._snapshot_hooks.append((save, load))

    def snapshot(self) -> SimSnapshot:
        """Capture the complete simulation state at this point.

        One columnar copy of the signal store and the sequential-state
        store plus a structure-sharing copy of every component's
        registered Python state (monitor columns, endpoint logs, FSMs).
        The snapshot is immutable with respect to further simulation:
        restoring and running never corrupts it, so a single warm-up
        snapshot can seed any number of forked trajectories.  See
        :mod:`repro.kernel.snapshot` for the exact contract.
        """
        self._finalize()
        return take_snapshot(self)

    def restore(self, snap: SimSnapshot) -> None:
        """Rewind this simulator to *snap* (taken from this instance).

        State is written through the existing objects (lists in place,
        helper objects' ``__dict__`` rewritten) so compiled closures
        keep their bindings; afterwards everything is marked stale, as
        after any out-of-band mutation.  Out-of-band inputs applied
        since the snapshot (``push``, ``block``) are rewound with it.
        """
        self._finalize()
        restore_snapshot(self, snap)

    def fork(self) -> ForkContext:
        """Branch point: ``with sim.fork(): ...`` rewinds on exit.

        Takes a snapshot immediately; the ``with`` body runs one
        trajectory (push stimulus, run, measure) and the exit restores
        the branch-point state — warm-up cycles are paid once and
        shared by every variant.  Entering the context yields the
        underlying :class:`SimSnapshot` for explicit reuse.
        """
        self._finalize()
        return ForkContext(self)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def settle(self) -> int:
        """Run combinational evaluation to a fixed point.

        Returns the number of iterations used (an engine-specific
        effort measure: whole-design passes for the naive engine, the
        deepest local iteration count for the event engine).  Exposed
        publicly so tests can inspect settled values mid-cycle without
        advancing the clock.
        """
        self._finalize()
        return self._engine.settle(self.cycle)

    def _tick(self) -> None:
        """Observe, capture and commit one settled cycle.

        Phase order is capture-everything then commit-everything, as
        before; within each phase the compiled tick plans run alongside
        the legacy per-component dispatch (captures never write signals
        and commits only apply their own state, so relative order within
        a phase is immaterial).
        """
        for observer in self._observers:
            observer(self)
        seq_capture = self._seq_capture
        cycle = self.cycle
        if seq_capture is not None:
            seq_capture(cycle)
        for capture in self._captures:
            capture()
        for commit in self._plain_commits:
            commit()
        note = self._note_state
        if note is not None:
            # Components report whether their commit changed state the
            # combinational logic depends on; False lets the settle
            # engine skip their next re-evaluation, None means "assume
            # changed".
            for comp, commit in self._noted_commits:
                if commit() is not False:
                    note(comp)
        seq_commit = self._seq_commit
        if seq_commit is not None:
            seq_commit()
        self.cycle = cycle + 1

    def _fuse_quiescent(self, budget: int) -> int:
        """Batch up to *budget* fully quiescent cycles in one step.

        Eligible only when the settled design provably reproduces itself
        cycle-over-cycle: the compiled settle engine is quiescent
        (nothing stale/dirty, no volatile or opaque components), every
        tick-phase component runs through a plan, every plan would
        delta-skip, and no observers sample per cycle.  Per-cycle
        effects that survive skipping (monitor rows, endpoint cycle
        counters) are applied in bulk through the plans' ``repeat``
        hooks.  Returns the number of cycles fused (0 when ineligible).
        """
        if budget <= 0 or self._observers or not self._seq_covers_ticks:
            return 0
        if not getattr(self._engine, "quiescent", False):
            return 0
        if not self._seq_fusible():
            return 0
        self._seq.fast_forward(budget, self.cycle)
        self.cycle += budget
        return budget

    def fusion_blockers(self) -> list[dict]:
        """Structural reasons why idle-stretch fusion can never fire.

        Returns one ``{"kind", "detail"}`` dict per reason: registered
        observers (**any** observer — e.g. the coverage maps of
        :mod:`repro.sweep.coverage` — disables fusion and therefore idle
        batching outright), a non-compiled settle engine, ``compile_seq``
        disabled, or tick-phase components not covered by compiled plans.
        An empty list means fusion is structurally possible (it still
        only fires on provably quiescent cycles).
        """
        self._finalize()
        blockers: list[dict] = []
        for fn in self._observers:
            name = getattr(fn, "__qualname__", None) or repr(fn)
            blockers.append({"kind": "observer", "detail": name})
        if self.engine_name != "compiled":
            blockers.append(
                {"kind": "engine", "detail": f"engine={self.engine_name!r}"}
            )
        if not self.seq_enabled:
            blockers.append(
                {"kind": "compile_seq", "detail": "compile_seq disabled"}
            )
        elif not self._seq_covers_ticks and self.engine_name == "compiled":
            unplanned = sorted(
                {
                    c.__self__.path
                    for c in self._captures
                }
                | {c.path for c, _fn in self._noted_commits}
                | {c.__self__.path for c in self._plain_commits}
            )
            blockers.append(
                {
                    "kind": "unplanned-components",
                    "detail": ", ".join(unplanned) or "no compiled tick plans",
                }
            )
        return blockers

    def step(self) -> None:
        """Advance the simulation by one clock cycle."""
        self.settle()
        self._tick()

    def run(
        self,
        cycles: int | None = None,
        until: Callable[["Simulator"], bool] | None = None,
        max_cycles: int = 100_000,
    ) -> int:
        """Run for a fixed number of cycles or until a predicate holds.

        Parameters
        ----------
        cycles:
            Exact number of cycles to run (mutually exclusive with *until*).
        until:
            Stop as soon as the predicate returns True (checked after the
            settle phase of each cycle, before state commit — i.e. the
            condition is observed in the cycle in which it first holds).
        max_cycles:
            Safety bound for *until* runs; exceeding it raises
            :class:`~repro.kernel.errors.SimulationError` so a deadlocked
            elastic network fails a test instead of hanging it.

        Returns the number of cycles executed by this call.
        """
        if (cycles is None) == (until is None):
            raise ValueError("specify exactly one of 'cycles' or 'until'")
        executed = 0
        self._finalize()
        # self._engine is re-read every cycle (not bound once): an
        # observer or `until` predicate may call reset(), which rebuilds
        # the engine mid-run.
        tick = self._tick
        if cycles is not None:
            while executed < cycles:
                fused = self._fuse_quiescent(cycles - executed)
                if fused:
                    executed += fused
                    continue
                self._engine.settle(self.cycle)
                tick()
                executed += 1
            return executed
        if until is None:  # unreachable: the exclusivity check above
            raise SimulationError("run() requires exactly one of cycles/until")
        watched = isinstance(until, WatchedPredicate)
        if watched and until.strict:
            blockers = self.fusion_blockers()
            if blockers:
                raise FusionBlockedError(blockers)
        while executed < max_cycles:
            self._engine.settle(self.cycle)
            if until(self):
                return executed
            tick()
            executed += 1
            if watched:
                # A fully quiescent design stays quiescent for the rest
                # of this call (nothing can change without out-of-band
                # input), and the declared-watch contract freezes the
                # predicate with it — so the whole remaining budget can
                # be batched in one step.  Ends either at the budget
                # (deadlock diagnosis below, same cycle count as the
                # unfused run) or not at all (ineligible -> poll on).
                executed += self._fuse_quiescent(max_cycles - executed)
        raise SimulationError(
            f"'until' predicate not satisfied within {max_cycles} cycles "
            f"(possible deadlock)"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> list[Component]:
        return list(self._components)

    @property
    def signals(self) -> list[Signal]:
        """Every signal owned by a registered component."""
        self._finalize()
        return list(self._signals)

    @property
    def store(self) -> SlotStore:
        """The flat slot-indexed value store backing every signal."""
        self._finalize()
        return self._store

    @property
    def seq(self) -> SeqStore | None:
        """The columnar sequential-state store (compiled engine with
        ``compile_seq`` enabled and at least one planned component),
        else ``None``."""
        self._finalize()
        return self._seq

    def find(self, path: str) -> Component:
        """Look up a component by hierarchical dotted path (O(1))."""
        try:
            return self._by_path[path]
        except KeyError:
            raise KeyError(f"no component with path {path!r}") from None

    def signal_by_name(self, name: str) -> Signal:
        """Look up a signal by its full hierarchical name (O(1))."""
        self._finalize()
        try:
            return self._signal_by_name[name]
        except KeyError:
            raise KeyError(f"no signal named {name!r}") from None


def build(
    *components: Component,
    max_settle_iterations: int = 64,
    engine: str | None = None,
    compile_seq: bool | None = None,
) -> Simulator:
    """Convenience constructor: make a simulator, add components, reset."""
    sim = Simulator(
        max_settle_iterations=max_settle_iterations,
        engine=engine,
        compile_seq=compile_seq,
    )
    for comp in components:
        sim.add(comp)
    sim.reset()
    return sim
