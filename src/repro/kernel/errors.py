"""Exception hierarchy for the RTL simulation kernel.

Every error raised by :mod:`repro.kernel` derives from :class:`KernelError`
so callers can catch simulation problems without also catching unrelated
Python errors.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for all simulation-kernel errors."""


class ConvergenceError(KernelError):
    """Combinational logic failed to reach a fixed point.

    Raised by :class:`repro.kernel.simulator.Simulator` when the settle loop
    exceeds its iteration budget.  The attached ``unstable`` list names the
    signals that were still changing, which almost always points at a
    combinational cycle (for example an arbiter whose grant depends on a
    downstream ready that depends on the grant).
    """

    def __init__(self, cycle: int, iterations: int, unstable: list[str]):
        self.cycle = cycle
        self.iterations = iterations
        self.unstable = list(unstable)
        names = ", ".join(self.unstable[:12])
        if len(self.unstable) > 12:
            names += ", ..."
        super().__init__(
            f"combinational settle did not converge at cycle {cycle} after "
            f"{iterations} iterations; unstable signals: [{names}]"
        )


class ProtocolError(KernelError):
    """An elastic-protocol invariant was violated.

    Raised by the protocol monitors in :mod:`repro.elastic.monitor` and
    :mod:`repro.core.monitor`, e.g. when data changes while ``valid`` is
    high and ``ready`` is low, or when more than one thread asserts
    ``valid`` on a multithreaded channel.
    """


class WiringError(KernelError):
    """A structural problem in how components were connected.

    Examples: a signal driven by two components, a port left unconnected at
    elaboration time, or a channel connected to two consumers.
    """


class SimulationError(KernelError):
    """A generic runtime failure during simulation (bad state, bad value)."""


class FusionBlockedError(SimulationError):
    """A strict watched predicate ran on a design that can never fuse.

    Raised by :meth:`repro.kernel.simulator.Simulator.run` when an
    ``until`` predicate declared with ``strict=True`` (see
    :class:`repro.kernel.simulator.WatchedPredicate`) is combined with a
    configuration that structurally disables idle-stretch fusion:
    registered observers, a non-compiled engine, ``compile_seq`` turned
    off, or components whose tick phase is not covered by compiled
    plans.  The attached ``blockers`` list holds one ``{"kind", "detail"}``
    dict per reason.
    """

    def __init__(self, blockers: list[dict]):
        self.blockers = list(blockers)
        kinds = ", ".join(b.get("kind", "?") for b in self.blockers)
        super().__init__(
            f"run(until=...) idle fusion is structurally blocked ({kinds}); "
            "drop strict=True to poll cycle-by-cycle, or remove the blockers "
            "(observers disable fusion entirely)"
        )


class EnsembleUnsupported(KernelError):
    """A design contains a component that is not ensemble-safe.

    Raised by :func:`repro.kernel.ensemble.lift_simulator` when a
    component's ``ENSEMBLE_DATA`` contract is ``"unsafe"`` (the default),
    or by a component's ``ensemble_lift`` when a per-instance check fails
    (e.g. an :class:`~repro.core.function.MTFunction` whose callable is
    declared non-pure).  Callers fall back to serial execution.
    """


class EnsembleDivergence(KernelError):
    """Lanes of an ensemble stopped agreeing on control flow.

    Raised by a lifted :class:`~repro.core.operators.MBranch` selector
    when live lanes select different output ports (control flow is no
    longer identical across the ensemble), or when every lane of a row
    has already failed.  Callers fall back to serial execution, which is
    always correct.
    """


class SnapshotError(KernelError):
    """A simulator snapshot could not be taken or restored.

    Raised by :mod:`repro.kernel.snapshot` when a component holds state
    that cannot be copied (e.g. a live iterator), or when a snapshot is
    restored onto a simulator whose structure no longer matches it.
    """
