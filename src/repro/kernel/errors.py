"""Exception hierarchy for the RTL simulation kernel.

Every error raised by :mod:`repro.kernel` derives from :class:`KernelError`
so callers can catch simulation problems without also catching unrelated
Python errors.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for all simulation-kernel errors."""


class ConvergenceError(KernelError):
    """Combinational logic failed to reach a fixed point.

    Raised by :class:`repro.kernel.simulator.Simulator` when the settle loop
    exceeds its iteration budget.  The attached ``unstable`` list names the
    signals that were still changing, which almost always points at a
    combinational cycle (for example an arbiter whose grant depends on a
    downstream ready that depends on the grant).
    """

    def __init__(self, cycle: int, iterations: int, unstable: list[str]):
        self.cycle = cycle
        self.iterations = iterations
        self.unstable = list(unstable)
        names = ", ".join(self.unstable[:12])
        if len(self.unstable) > 12:
            names += ", ..."
        super().__init__(
            f"combinational settle did not converge at cycle {cycle} after "
            f"{iterations} iterations; unstable signals: [{names}]"
        )


class ProtocolError(KernelError):
    """An elastic-protocol invariant was violated.

    Raised by the protocol monitors in :mod:`repro.elastic.monitor` and
    :mod:`repro.core.monitor`, e.g. when data changes while ``valid`` is
    high and ``ready`` is low, or when more than one thread asserts
    ``valid`` on a multithreaded channel.
    """


class WiringError(KernelError):
    """A structural problem in how components were connected.

    Examples: a signal driven by two components, a port left unconnected at
    elaboration time, or a channel connected to two consumers.
    """


class SimulationError(KernelError):
    """A generic runtime failure during simulation (bad state, bad value)."""


class SnapshotError(KernelError):
    """A simulator snapshot could not be taken or restored.

    Raised by :mod:`repro.kernel.snapshot` when a component holds state
    that cannot be copied (e.g. a live iterator), or when a snapshot is
    restored onto a simulator whose structure no longer matches it.
    """
