"""Waveform capture and rendering.

:class:`TraceRecorder` samples a chosen set of signals after the settle
phase of every cycle and keeps the samples in memory.  Two renderers are
provided:

* :meth:`TraceRecorder.ascii_waveform` — compact per-signal timelines in
  the style of the paper's Fig. 2(b) and Fig. 5 channel tables, suitable
  for terminal output from the benchmark harness.
* :meth:`TraceRecorder.write_vcd` — a minimal Value Change Dump writer so
  captured runs can be inspected in any waveform viewer.
"""

from __future__ import annotations

import io
from typing import Any, Sequence

from repro.kernel.signal import Signal
from repro.kernel.simulator import Simulator
from repro.kernel.values import is_x, same_value


class TraceRecorder:
    """Records the value of selected signals every cycle.

    Attach to a simulator with :meth:`attach`; samples land in
    :attr:`samples` as ``{signal_name: value}`` dicts, one per cycle.
    """

    def __init__(self, signals: Sequence[Signal], labels: Sequence[str] | None = None):
        self.signals = list(signals)
        if labels is None:
            self.labels = [sig.name for sig in self.signals]
        else:
            if len(labels) != len(signals):
                raise ValueError("labels and signals must have equal length")
            self.labels = list(labels)
        self.samples: list[dict[str, Any]] = []
        self.cycles: list[int] = []

    def attach(self, sim: Simulator) -> "TraceRecorder":
        sim.add_observer(self._observe)
        return self

    def detach(self, sim: Simulator) -> "TraceRecorder":
        """Stop sampling: deregister this recorder's observer from *sim*.

        The inverse of :meth:`attach`.  Captured samples are kept.  A
        registered observer is what disables settle+tick fusion, so a
        bounded capture window should always end with a ``detach`` —
        afterwards the simulator can batch quiescent stretches again
        (see :meth:`Simulator.fusion_blockers`).  Detaching a recorder
        that is not attached is a no-op.
        """
        sim.remove_observer(self._observe)
        return self

    def _observe(self, sim: Simulator) -> None:
        row = {
            label: sig.value for label, sig in zip(self.labels, self.signals)
        }
        self.samples.append(row)
        self.cycles.append(sim.cycle)

    def clear(self) -> None:
        self.samples.clear()
        self.cycles.clear()

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------
    def column(self, label: str) -> list[Any]:
        """All samples of one signal, in cycle order."""
        return [row[label] for row in self.samples]

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _cell(value: Any, width: int) -> str:
        if is_x(value):
            text = "."
        elif value is True:
            text = "1"
        elif value is False:
            text = "0"
        elif value is None:
            text = "-"
        else:
            text = str(value)
        if len(text) > width:
            text = text[: width - 1] + "~"
        return text.rjust(width)

    def ascii_waveform(self, cell_width: int = 4, max_cycles: int | None = None) -> str:
        """Render the trace as an ASCII table: one row per signal.

        ``X`` renders as ``.``, ``None`` as ``-``, booleans as 0/1; other
        values are stringified and clipped to the cell width.
        """
        n = len(self.samples) if max_cycles is None else min(max_cycles, len(self.samples))
        label_width = max((len(lbl) for lbl in self.labels), default=5)
        label_width = max(label_width, len("cycle"))
        out = io.StringIO()
        header = "cycle".ljust(label_width) + " |"
        for c in self.cycles[:n]:
            header += self._cell(c, cell_width)
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for label in self.labels:
            line = label.ljust(label_width) + " |"
            for row in self.samples[:n]:
                line += self._cell(row[label], cell_width)
            out.write(line + "\n")
        return out.getvalue()

    # ------------------------------------------------------------------
    # VCD export
    # ------------------------------------------------------------------
    @staticmethod
    def _vcd_ident(index: int) -> str:
        # Printable VCD identifier codes: ! through ~
        chars = []
        index += 1
        while index:
            index, rem = divmod(index - 1, 94)
            chars.append(chr(33 + rem))
        return "".join(reversed(chars))

    @staticmethod
    def _vcd_value(value: Any, width: int) -> str:
        if is_x(value):
            return "b" + "x" * width + " " if width > 1 else "x"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, int) and width > 1:
            if value < 0:
                value &= (1 << width) - 1
            return "b" + format(value, f"0{width}b") + " "
        if isinstance(value, int):
            return "1" if value else "0"
        # Non-integer payloads are dumped as a string literal signal.
        return "s" + str(value).replace(" ", "_") + " "

    def write_vcd(self, path: str, timescale: str = "1ns") -> None:
        """Write the captured samples as a minimal VCD file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("$date today $end\n")
            fh.write("$version repro TraceRecorder $end\n")
            fh.write(f"$timescale {timescale} $end\n")
            fh.write("$scope module trace $end\n")
            idents: list[str] = []
            for i, (sig, label) in enumerate(zip(self.signals, self.labels)):
                ident = self._vcd_ident(i)
                idents.append(ident)
                safe = label.replace(" ", "_")
                fh.write(f"$var wire {sig.width} {ident} {safe} $end\n")
            fh.write("$upscope $end\n$enddefinitions $end\n")
            previous: list[Any] = [object()] * len(self.signals)
            for cycle, row in zip(self.cycles, self.samples):
                fh.write(f"#{cycle}\n")
                for i, (sig, label) in enumerate(zip(self.signals, self.labels)):
                    value = row[label]
                    if not same_value(previous[i], value):
                        encoded = self._vcd_value(value, sig.width)
                        if encoded.startswith(("b", "s")):
                            fh.write(f"{encoded}{idents[i]}\n")
                        else:
                            fh.write(f"{encoded}{idents[i]}\n")
                        previous[i] = value


def trace_signals(
    sim: Simulator,
    signals: Sequence[Signal | str],
    labels: Sequence[str] | None = None,
) -> TraceRecorder:
    """Create a :class:`TraceRecorder` and attach it to *sim*.

    Entries in *signals* may be :class:`Signal` objects or full
    hierarchical names, which are resolved through the simulator's
    constant-time :meth:`~repro.kernel.simulator.Simulator.signal_by_name`
    index.
    """
    resolved = [
        sim.signal_by_name(sig) if isinstance(sig, str) else sig
        for sig in signals
    ]
    return TraceRecorder(resolved, labels=labels).attach(sim)
