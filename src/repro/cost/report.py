"""Table-I style area/frequency reports.

A :class:`DesignCost` bundles one design point (name, MEB kind, LE count,
fmax); :func:`table1` renders the two-designs × two-MEB-kinds comparison
in the layout of the paper's Table I, with a savings column appended.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Sequence


@dataclasses.dataclass(frozen=True)
class DesignCost:
    """One (design, MEB kind) implementation point."""

    design: str
    meb_kind: str          # "full" | "reduced"
    area_le: float
    fmax_mhz: float
    ff_bits: int = 0
    luts: int = 0

    @property
    def area_rounded(self) -> int:
        return int(round(self.area_le / 10.0) * 10)


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """Full-vs-reduced comparison for one design."""

    design: str
    full: DesignCost
    reduced: DesignCost

    @property
    def area_savings(self) -> float:
        """Fractional LE savings of reduced over full."""
        return 1.0 - self.reduced.area_le / self.full.area_le

    @property
    def speedup(self) -> float:
        return self.reduced.fmax_mhz / self.full.fmax_mhz


def average_savings(rows: Sequence[ComparisonRow]) -> float:
    if not rows:
        raise ValueError("no rows")
    return sum(r.area_savings for r in rows) / len(rows)


def table1(rows: Sequence[ComparisonRow], title: str | None = None) -> str:
    """Render rows in the paper's Table I layout plus a savings column."""
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = (
        f"{'Design':<14} | {'Full MEB':>22} | {'Reduced MEB':>22} | "
        f"{'Savings':>8}"
    )
    sub = (
        f"{'':<14} | {'Area(LE)':>10} {'Freq(MHz)':>11} | "
        f"{'Area(LE)':>10} {'Freq(MHz)':>11} | {'':>8}"
    )
    out.write(header + "\n")
    out.write(sub + "\n")
    out.write("-" * len(header) + "\n")
    for row in rows:
        out.write(
            f"{row.design:<14} | {row.full.area_rounded:>10} "
            f"{row.full.fmax_mhz:>11.1f} | {row.reduced.area_rounded:>10} "
            f"{row.reduced.fmax_mhz:>11.1f} | {row.area_savings:>7.1%}\n"
        )
    out.write("-" * len(header) + "\n")
    out.write(f"Average area savings: {average_savings(rows):.1%}\n")
    return out.getvalue()


def savings_sweep_table(
    design: str, points: Sequence[tuple[int, float, float]]
) -> str:
    """Render a thread-count sweep: (S, full LE, reduced LE) rows."""
    out = io.StringIO()
    header = (
        f"{'Threads':>8} | {'Full LE':>10} | {'Reduced LE':>11} | "
        f"{'Savings':>8}"
    )
    out.write(f"{design}: MEB area savings vs thread count\n")
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for s, full_le, reduced_le in points:
        savings = 1.0 - reduced_le / full_le
        out.write(
            f"{s:>8} | {full_le:>10.0f} | {reduced_le:>11.0f} | "
            f"{savings:>7.1%}\n"
        )
    return out.getvalue()
