"""FPGA area and timing cost model (the Table I substitution).

The paper reports post-place-and-route FPGA results (logic elements and
fmax).  We have no FPGA tools offline, so every component in this library
reports a structural inventory via ``Component.area_items()`` — flip-flop
bits, latch bits, 2:1-mux bits and control LUTs — and this module folds
the inventory into logic-element (LE) counts, with a routing overhead
factor, and into a clock-period estimate with an area-dependent wiring
term.

Why this preserves the paper's comparison: Table I contrasts *the same
design* built with full vs. reduced MEBs.  The difference is dominated by
storage (``2S`` vs ``S+1`` slots per buffered channel) and the associated
muxing, which the structural inventory captures exactly.  Absolute LEs
depend on a handful of calibration constants (documented in
EXPERIMENTS.md together with paper-vs-measured tables); the *relative*
savings and their growth with thread count are model outputs, not inputs.

LE convention: one LE = one 4-input LUT + one flip-flop, the usual
low-end-FPGA unit.  A register bit consumes the FF of one LE; a 2:1 mux
bit or a control function consumes a LUT.  Wide muxes must be decomposed
into ``mux2`` units by the component reporting them.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable

from repro.kernel.component import Component

#: LE cost per unit of each primitive kind.  ``ff``/``latch``/``mux2``
#: are per *bit* (count × width bits), ``lut`` is per LUT.
DEFAULT_PRIMITIVE_LE: dict[str, float] = {
    "ff": 1.0,
    "latch": 1.0,
    "mux2": 1.0,
    "lut": 1.0,
}


@dataclasses.dataclass(frozen=True)
class AreaBreakdown:
    """Area of one component subtree, split by primitive kind."""

    ff_bits: int
    latch_bits: int
    mux_bits: int
    luts: int
    total_le: float

    def __add__(self, other: "AreaBreakdown") -> "AreaBreakdown":
        return AreaBreakdown(
            self.ff_bits + other.ff_bits,
            self.latch_bits + other.latch_bits,
            self.mux_bits + other.mux_bits,
            self.luts + other.luts,
            self.total_le + other.total_le,
        )


class AreaModel:
    """Folds structural inventories into LE estimates.

    Parameters
    ----------
    routing_overhead:
        Multiplier on raw LE counts accounting for replication/duplication
        introduced by place and route (default 1.08, a typical low single
        digit percentage).
    primitive_le:
        Per-primitive LE costs; override to model a different device
        family.
    """

    def __init__(
        self,
        routing_overhead: float = 1.08,
        primitive_le: dict[str, float] | None = None,
    ):
        self.routing_overhead = float(routing_overhead)
        self.primitive_le = dict(DEFAULT_PRIMITIVE_LE)
        if primitive_le:
            self.primitive_le.update(primitive_le)

    # ------------------------------------------------------------------
    def items_area(
        self, items: Iterable[tuple[str, int, int]]
    ) -> AreaBreakdown:
        """Cost of a raw ``(kind, count, width)`` inventory."""
        ff = latch = mux = luts = 0
        raw = 0.0
        for kind, count, width in items:
            if kind not in self.primitive_le:
                raise KeyError(f"unknown primitive kind {kind!r}")
            units = count * width if kind != "lut" else count
            raw += units * self.primitive_le[kind]
            if kind == "ff":
                ff += count * width
            elif kind == "latch":
                latch += count * width
            elif kind == "mux2":
                mux += count * width
            else:
                luts += count
        return AreaBreakdown(ff, latch, mux, luts, raw * self.routing_overhead)

    def component_area(self, component: Component) -> AreaBreakdown:
        """Aggregate area over *component* and all its descendants."""
        total = AreaBreakdown(0, 0, 0, 0, 0.0)
        for comp in component.iter_tree():
            total = total + self.items_area(comp.area_items())
        return total

    def total_le(self, components: Iterable[Component]) -> float:
        return sum(self.component_area(c).total_le for c in components)


class TimingModel:
    """Clock-period estimate: logic depth plus area-dependent wiring.

    ``period_ns = logic_depth_ns + wire_ns_per_sqrt_le * sqrt(area_le)``

    The square-root term models average interconnect length growing with
    the die-region diagonal occupied by the design — it is what makes the
    reduced-MEB builds in Table I *slightly faster* ("the slightly higher
    clock frequencies achieved are a result of the smaller wiring delays
    due to lower area").
    """

    def __init__(self, wire_ns_per_sqrt_le: float = 0.55):
        self.wire_ns_per_sqrt_le = float(wire_ns_per_sqrt_le)

    def period_ns(self, logic_depth_ns: float, area_le: float) -> float:
        if area_le < 0:
            raise ValueError("area must be non-negative")
        return logic_depth_ns + self.wire_ns_per_sqrt_le * math.sqrt(area_le)

    def fmax_mhz(self, logic_depth_ns: float, area_le: float) -> float:
        return 1000.0 / self.period_ns(logic_depth_ns, area_le)


# ----------------------------------------------------------------------
# Convenience estimators for common datapath blocks.  Components that
# model pure combinational functions (adders, MD5 steps, ALUs) declare
# their LUT budgets with these helpers so the numbers are traceable.
# ----------------------------------------------------------------------

def adder_luts(width: int) -> int:
    """Ripple/carry-chain adder: one LUT per bit on LUT4 fabric."""
    return width


def logic_unit_luts(width: int) -> int:
    """Bitwise logic function of up to 4 inputs: one LUT per bit."""
    return width


def mux_tree_luts(inputs: int, width: int) -> int:
    """An ``inputs``:1 mux decomposed into 2:1 stages."""
    return max(0, inputs - 1) * width


def shifter_luts(width: int) -> int:
    """Barrel shifter: log2(width) mux levels."""
    levels = max(1, math.ceil(math.log2(width)))
    return levels * width


def comparator_luts(width: int) -> int:
    """Equality/magnitude comparator tree."""
    return max(1, width // 2)
