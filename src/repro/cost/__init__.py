"""Structural FPGA area/timing cost model and Table-I reporting."""

from repro.cost.model import (
    DEFAULT_PRIMITIVE_LE,
    AreaBreakdown,
    AreaModel,
    TimingModel,
    adder_luts,
    comparator_luts,
    logic_unit_luts,
    mux_tree_luts,
    shifter_luts,
)
from repro.cost.report import (
    ComparisonRow,
    DesignCost,
    average_savings,
    savings_sweep_table,
    table1,
)

__all__ = [
    "AreaBreakdown",
    "AreaModel",
    "ComparisonRow",
    "DEFAULT_PRIMITIVE_LE",
    "DesignCost",
    "TimingModel",
    "adder_luts",
    "average_savings",
    "comparator_luts",
    "logic_unit_luts",
    "mux_tree_luts",
    "savings_sweep_table",
    "shifter_luts",
    "table1",
]
