"""Single-thread elastic channels (paper §II, Fig. 2(a)).

An elastic channel replaces a plain data connection with three wires:
``data``, a forward ``valid`` and a backward ``ready``.  A transfer happens
in every cycle where both handshake wires are high.

The channel is modelled as a (behaviour-free) :class:`Component` so its
signals participate in the simulator's settle loop and appear in traces
under a readable name.  The producer side drives ``valid``/``data``; the
consumer side drives ``ready``.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.component import Component
from repro.kernel.values import as_bool


class ElasticChannel(Component):
    """A valid/ready/data bundle connecting one producer to one consumer."""

    def __init__(self, name: str, width: int = 32, parent: Component | None = None):
        super().__init__(name, parent=parent)
        self.width = int(width)
        self.valid = self.signal("valid", width=1, init=False)
        self.ready = self.signal("ready", width=1, init=False)
        self.data = self.signal("data", width=self.width)

    # ------------------------------------------------------------------
    # connection bookkeeping (single producer / single consumer)
    # ------------------------------------------------------------------
    def connect_producer(self, component: Component) -> "ElasticChannel":
        """Declare *component* as the driver of ``valid`` and ``data``."""
        self.valid.set_driver(component)
        self.data.set_driver(component)
        return self

    def connect_consumer(self, component: Component) -> "ElasticChannel":
        """Declare *component* as the driver of ``ready``."""
        self.ready.set_driver(component)
        return self

    # ------------------------------------------------------------------
    # settled-value helpers
    # ------------------------------------------------------------------
    @property
    def transfer(self) -> bool:
        """True when a data item moves across the channel this cycle."""
        return as_bool(self.valid.value) and as_bool(self.ready.value)

    @property
    def stalled(self) -> bool:
        """True when the producer offers data but the consumer refuses it."""
        return as_bool(self.valid.value) and not as_bool(self.ready.value)

    @property
    def idle(self) -> bool:
        """True when no data is offered this cycle."""
        return not as_bool(self.valid.value)

    def payload(self) -> Any:
        """The data value currently on the channel."""
        return self.data.value

    def __repr__(self) -> str:
        return f"<ElasticChannel {self.path} width={self.width}>"


def channels(prefix: str, count: int, width: int = 32) -> list[ElasticChannel]:
    """Create *count* channels named ``{prefix}0 .. {prefix}{count-1}``."""
    return [ElasticChannel(f"{prefix}{i}", width=width) for i in range(count)]
