"""Single-thread elastic control operators (paper §II, Fig. 3).

* :class:`Join` — synchronizes N input channels into one output (data
  convergence, e.g. the two operands of an adder).
* :class:`LazyFork` / :class:`EagerFork` — replicates one channel to N
  consumers.  The lazy fork transfers only when *all* consumers are ready;
  the eager fork delivers to each consumer as soon as it is ready,
  remembering who has been served.
* :class:`Branch` — routes each input item to one of N outputs according
  to a condition extracted from the data ("if-then-else" split).
* :class:`Merge` — funnels mutually exclusive branches back into one
  channel.

These operators are purely combinational except for the eager fork's
served-flags register; all of them are later replicated per thread by the
multithreaded variants in :mod:`repro.core.operators`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.elastic.channel import ElasticChannel
from repro.kernel.component import Component
from repro.kernel.errors import ProtocolError
from repro.kernel.values import X, as_bool


class Join(Component):
    """Synchronize N input channels; output carries the combined data.

    ``out.valid`` is the AND of all input valids; input *i* sees ready only
    when the output is ready and every *other* input is valid, so all
    inputs transfer in the same cycle (token alignment).
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[ElasticChannel],
        out: ElasticChannel,
        combine: Callable[..., Any] | None = None,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(inputs) < 2:
            raise ValueError("Join needs at least two inputs")
        self.inputs = list(inputs)
        self.out = out
        self._combine = combine if combine is not None else lambda *xs: tuple(xs)
        for ch in self.inputs:
            ch.connect_consumer(self)
            self.declare_reads(ch.valid, ch.data)
        out.connect_producer(self)
        self.declare_reads(out.ready)

    def combinational(self) -> None:
        valids = [as_bool(ch.valid.value) for ch in self.inputs]
        all_valid = all(valids)
        out_ready = as_bool(self.out.ready.value)
        self.out.valid.set(all_valid)
        if all_valid:
            self.out.data.set(self._combine(*[ch.data.value for ch in self.inputs]))
        else:
            self.out.data.set(X)
        for i, ch in enumerate(self.inputs):
            others = all(v for j, v in enumerate(valids) if j != i)
            ch.ready.set(out_ready and others)

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", 2 * len(self.inputs), 1)]


class LazyFork(Component):
    """Replicate a channel to N outputs; transfer only when all are ready."""

    def __init__(
        self,
        name: str,
        inp: ElasticChannel,
        outputs: Sequence[ElasticChannel],
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(outputs) < 2:
            raise ValueError("Fork needs at least two outputs")
        self.inp = inp
        self.outputs = list(outputs)
        inp.connect_consumer(self)
        self.declare_reads(inp.valid, inp.data)
        for ch in self.outputs:
            ch.connect_producer(self)
            self.declare_reads(ch.ready)

    def combinational(self) -> None:
        in_valid = as_bool(self.inp.valid.value)
        readies = [as_bool(ch.ready.value) for ch in self.outputs]
        self.inp.ready.set(all(readies))
        for i, ch in enumerate(self.outputs):
            others = all(r for j, r in enumerate(readies) if j != i)
            ch.valid.set(in_valid and others)
            ch.data.set(self.inp.data.value if in_valid else X)

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", 2 * len(self.outputs), 1)]


class EagerFork(Component):
    """Replicate a channel to N outputs, serving each as soon as possible.

    A registered ``served`` flag per output remembers which consumers have
    already taken the current item; the input token retires when every
    consumer has been served.
    """

    def __init__(
        self,
        name: str,
        inp: ElasticChannel,
        outputs: Sequence[ElasticChannel],
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(outputs) < 2:
            raise ValueError("Fork needs at least two outputs")
        self.inp = inp
        self.outputs = list(outputs)
        inp.connect_consumer(self)
        self.declare_reads(inp.valid, inp.data)
        for ch in self.outputs:
            ch.connect_producer(self)
            self.declare_reads(ch.ready)
        self._served = [False] * len(outputs)
        self._next: list[bool] | None = None

    def combinational(self) -> None:
        in_valid = as_bool(self.inp.valid.value)
        # The token retires when, for every branch, it was served earlier
        # or is being served right now.
        done = [
            self._served[i] or as_bool(ch.ready.value)
            for i, ch in enumerate(self.outputs)
        ]
        self.inp.ready.set(in_valid and all(done))
        for i, ch in enumerate(self.outputs):
            ch.valid.set(in_valid and not self._served[i])
            ch.data.set(self.inp.data.value if in_valid else X)

    def capture(self) -> None:
        served = list(self._served)
        for i, ch in enumerate(self.outputs):
            if ch.transfer:
                served[i] = True
        if self.inp.transfer:
            served = [False] * len(self.outputs)
        self._next = served

    def commit(self) -> bool:
        if self._next is None:
            return False
        changed = self._served != self._next
        self._served = self._next
        self._next = None
        return changed

    def reset(self) -> None:
        self._served = [False] * len(self.outputs)
        self._next = None

    def area_items(self) -> list[tuple[str, int, int]]:
        n = len(self.outputs)
        return [("ff", n, 1), ("lut", 3 * n, 1)]


class Branch(Component):
    """Route each item to one of N outputs based on a data-derived condition.

    ``selector(data)`` must return the output index (a bool works for the
    common two-way case: ``False`` routes to output 0, ``True`` to 1).
    An optional ``route`` function transforms the payload on the way out
    (e.g. stripping the condition field).
    """

    def __init__(
        self,
        name: str,
        inp: ElasticChannel,
        outputs: Sequence[ElasticChannel],
        selector: Callable[[Any], int | bool],
        route: Callable[[Any], Any] | None = None,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(outputs) < 2:
            raise ValueError("Branch needs at least two outputs")
        self.inp = inp
        self.outputs = list(outputs)
        self._selector = selector
        self._route = route if route is not None else lambda d: d
        inp.connect_consumer(self)
        self.declare_reads(inp.valid, inp.data)
        for ch in self.outputs:
            ch.connect_producer(self)
            self.declare_reads(ch.ready)

    def _select(self, data: Any) -> int:
        sel = self._selector(data)
        index = int(sel)
        if not 0 <= index < len(self.outputs):
            raise ProtocolError(
                f"{self.path}: selector returned {sel!r} for {len(self.outputs)}"
                " outputs"
            )
        return index

    def combinational(self) -> None:
        in_valid = as_bool(self.inp.valid.value)
        if not in_valid:
            self.inp.ready.set(False)
            for ch in self.outputs:
                ch.valid.set(False)
                ch.data.set(X)
            return
        index = self._select(self.inp.data.value)
        for i, ch in enumerate(self.outputs):
            take = i == index
            ch.valid.set(take)
            ch.data.set(self._route(self.inp.data.value) if take else X)
        self.inp.ready.set(as_bool(self.outputs[index].ready.value))

    def area_items(self) -> list[tuple[str, int, int]]:
        n = len(self.outputs)
        return [("lut", 2 * n, 1)]


class Merge(Component):
    """Funnel mutually exclusive inputs into one output.

    By construction (items arrive from the two sides of a :class:`Branch`)
    at most one input is valid per cycle.  With ``strict=True`` (default) a
    simultaneous-valid cycle raises :class:`ProtocolError`; with
    ``strict=False`` the lowest-index input wins and the other waits.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[ElasticChannel],
        out: ElasticChannel,
        strict: bool = True,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if len(inputs) < 2:
            raise ValueError("Merge needs at least two inputs")
        self.inputs = list(inputs)
        self.out = out
        self.strict = strict
        for ch in self.inputs:
            ch.connect_consumer(self)
            self.declare_reads(ch.valid, ch.data)
        out.connect_producer(self)
        self.declare_reads(out.ready)

    def combinational(self) -> None:
        valids = [as_bool(ch.valid.value) for ch in self.inputs]
        chosen: int | None = None
        for i, v in enumerate(valids):
            if v:
                if chosen is None:
                    chosen = i
                elif self.strict:
                    raise ProtocolError(
                        f"{self.path}: inputs {chosen} and {i} valid in the "
                        "same cycle (merge inputs must be mutually exclusive)"
                    )
        out_ready = as_bool(self.out.ready.value)
        self.out.valid.set(chosen is not None)
        self.out.data.set(self.inputs[chosen].data.value if chosen is not None else X)
        for i, ch in enumerate(self.inputs):
            ch.ready.set(out_ready and chosen == i)

    def area_items(self) -> list[tuple[str, int, int]]:
        n = len(self.inputs)
        width = self.out.width
        return [("mux2", n - 1, width), ("lut", 2 * n, 1)]
