"""Traffic endpoints: elastic sources and sinks.

These are the test benches' boundary components.  A :class:`Source` feeds
a finite or infinite stream of items into a channel, optionally gated by an
injection pattern; a :class:`Sink` consumes from a channel under a
configurable readiness (stall) pattern and records everything it received.

Both honour the elastic-protocol persistence rule: once ``valid`` has been
asserted it stays asserted (with stable data) until the transfer happens,
even if the injection pattern has moved on — matching the behaviour the
protocol monitors enforce.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.elastic.channel import ElasticChannel
from repro.kernel.component import Component
from repro.kernel.values import X, as_bool

#: A pattern is a per-cycle boolean gate: a callable of the local cycle
#: number, a sequence treated as cyclic, or None meaning "always on".
Pattern = Callable[[int], bool] | Sequence[bool] | None


def _pattern_fn(pattern: Pattern) -> Callable[[int], bool]:
    if pattern is None:
        return lambda _cycle: True
    if callable(pattern):
        return pattern
    seq = [bool(b) for b in pattern]
    if not seq:
        raise ValueError("pattern sequence must not be empty")
    return lambda cycle: seq[cycle % len(seq)]


class Source(Component):
    """Drives items into an elastic channel.

    Parameters
    ----------
    items:
        The data items to inject, in order.  Pass ``generate`` instead for
        programmatic or infinite streams.
    pattern:
        Injection gate, consulted only when starting a new offer; an offer
        in flight persists until accepted.
    generate:
        Optional ``fn(k) -> item`` producing the k-th item; combined with
        ``count`` (None means infinite).
    """

    def __init__(
        self,
        name: str,
        channel: ElasticChannel,
        items: Iterable[Any] | None = None,
        pattern: Pattern = None,
        generate: Callable[[int], Any] | None = None,
        count: int | None = None,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        if (items is None) == (generate is None):
            raise ValueError("specify exactly one of 'items' or 'generate'")
        if items is not None:
            self._items: list[Any] | None = list(items)
            self._count: int | None = len(self._items)
        else:
            self._items = None
            self._count = count
        self._generate = generate
        self._gate = _pattern_fn(pattern)
        self.channel = channel
        channel.connect_producer(self)
        # The offer depends on registered state and the pattern only.
        self.declare_reads()
        if pattern is not None:
            # The injection gate is a function of the cycle number, which
            # advances outside the signal graph.
            self.declare_volatile()
        # Registered state.
        self._index = 0
        self._offering = False
        self._cycle = 0
        self._next: tuple[int, bool, int] | None = None
        self.sent: list[tuple[int, Any]] = []

    def _item_at(self, k: int) -> Any:
        if self._items is not None:
            return self._items[k]
        assert self._generate is not None
        return self._generate(k)

    def push(self, item: Any) -> None:
        """Append an item to the stream (usable mid-simulation).

        Only valid for list-backed sources; generator-backed sources
        define their stream up front.
        """
        if self._items is None:
            raise ValueError("cannot push into a generator-backed source")
        self._items.append(item)
        self._count = len(self._items)
        self.invalidate()

    @property
    def exhausted(self) -> bool:
        """True when every item has been transferred."""
        return self._count is not None and self._index >= self._count

    @property
    def remaining(self) -> int | None:
        if self._count is None:
            return None
        return self._count - self._index

    def combinational(self) -> None:
        has_item = self._count is None or self._index < self._count
        offer = has_item and (self._offering or self._gate(self._cycle))
        self.channel.valid.set(offer)
        self.channel.data.set(self._item_at(self._index) if offer else X)

    def capture(self) -> None:
        index, offering = self._index, self._offering
        if as_bool(self.channel.valid.value):
            if self.channel.transfer:
                self.sent.append((self._cycle, self.channel.data.value))
                index += 1
                offering = False
            else:
                offering = True  # persist the stalled offer
        self._next = (index, offering, self._cycle + 1)

    def commit(self) -> bool:
        if self._next is None:
            return False
        # The cycle counter feeds only the (volatile-flagged) pattern, so
        # the offer changes only with the stream position.
        changed = (self._index, self._offering) != self._next[:2]
        self._index, self._offering, self._cycle = self._next
        self._next = None
        return changed

    def reset(self) -> None:
        self._index = 0
        self._offering = False
        self._cycle = 0
        self._next = None
        self.sent = []


class Sink(Component):
    """Consumes items from an elastic channel under a stall pattern."""

    def __init__(
        self,
        name: str,
        channel: ElasticChannel,
        pattern: Pattern = None,
        limit: int | None = None,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self._gate = _pattern_fn(pattern)
        self._limit = limit
        self.channel = channel
        channel.connect_consumer(self)
        self.declare_reads()
        if pattern is not None:
            self.declare_volatile()
        self._cycle = 0
        self._next_cycle: int | None = None
        self._accepted_now = False
        self.received: list[tuple[int, Any]] = []

    @property
    def count(self) -> int:
        return len(self.received)

    def values(self) -> list[Any]:
        """Just the data items, in arrival order."""
        return [data for _cycle, data in self.received]

    def arrival_cycles(self) -> list[int]:
        return [cycle for cycle, _data in self.received]

    def combinational(self) -> None:
        open_for_more = self._limit is None or self.count < self._limit
        self.channel.ready.set(open_for_more and self._gate(self._cycle))

    def capture(self) -> None:
        self._accepted_now = self.channel.transfer
        if self._accepted_now:
            self.received.append((self._cycle, self.channel.data.value))
        self._next_cycle = self._cycle + 1

    def commit(self) -> bool:
        if self._next_cycle is None:
            return False
        self._cycle = self._next_cycle
        self._next_cycle = None
        # ready only moves with the received count when a limit is set
        # (the cycle counter matters solely through the volatile pattern).
        return self._limit is not None and self._accepted_now

    def reset(self) -> None:
        self._cycle = 0
        self._next_cycle = None
        self._accepted_now = False
        self.received = []


def stall_window(start: int, end: int) -> Callable[[int], bool]:
    """Pattern that is ready except during cycles ``[start, end)``.

    This is the traffic shape of the paper's Fig. 5 experiment ("Thread B
    stalls" for a window, then is released).
    """
    return lambda cycle: not (start <= cycle < end)


def duty_cycle(numerator: int, denominator: int, phase: int = 0) -> Callable[[int], bool]:
    """Pattern asserting ``numerator`` out of every ``denominator`` cycles."""
    if not 0 <= numerator <= denominator or denominator <= 0:
        raise ValueError("need 0 <= numerator <= denominator, denominator > 0")
    return lambda cycle: ((cycle + phase) % denominator) < numerator
