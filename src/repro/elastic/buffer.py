"""Single-thread elastic buffers (paper §II).

Two implementations with the same external contract (capacity 2, forward
and backward handshake latency of one cycle — the minimum storage for
full-throughput elastic pipelining [Carloni et al. 2001]):

* :class:`ElasticBuffer` — the flip-flop based 2-slot FIFO with the
  EMPTY/HALF/FULL occupancy states described in the paper.
* :class:`LatchElasticBuffer` — the latch-style decomposition into two
  chained capacity-1 half-buffers with a combinational ready bypass,
  mirroring the paper's remark that EBs "can be designed ... either with
  regular edge-triggered flip flops or level sensitive latches".

Both present an upstream channel (``up``) whose ``ready`` they drive and a
downstream channel (``down``) whose ``valid``/``data`` they drive.
"""

from __future__ import annotations

from typing import Any

from repro.elastic.channel import ElasticChannel
from repro.kernel.component import Component
from repro.kernel.errors import SimulationError
from repro.kernel.slots import SeqPlan
from repro.kernel.values import X, as_bool, same_value, state_changed


class _SlotWriter:
    """Scalar compare-and-assign with Signal.set's change semantics.

    One writer per driven signal: on a real value change it stores the
    new value and marks the signal's declared readers in the engine's
    dirty set (the slot-level analogue of ``Signal.set`` ->
    ``note_change``).
    """

    __slots__ = ("values", "slot", "dirty", "readers")

    def __init__(self, store, sig):
        self.values = store.values
        self.slot = store.slot(sig)
        self.dirty = store.dirty
        self.readers = store.readers_of((sig,))

    def write(self, new) -> bool:
        values = self.values
        old = values[self.slot]
        if old is new or same_value(old, new):
            return False
        values[self.slot] = new
        if self.readers:
            self.dirty.update(self.readers)
        return True


def _handshake_writers(store, buffer) -> tuple | None:
    """(up-ready, down-valid, down-data) slot writers, or None."""
    sigs = (buffer.up.ready, buffer.down.valid, buffer.down.data)
    if any(store.slot_or_none(sig) is None for sig in sigs):
        return None
    return tuple(_SlotWriter(store, sig) for sig in sigs)


def _seq_handshake_layout(seq, buffer) -> tuple | None:
    """Capture-side slot layout shared by the single-thread buffers.

    Returns ``(values, uv, ur, ud, dv, dr, watch)`` — the slot store's
    value list, the five handshake/data slots a buffer capture may read,
    and the matching watch ranges — or ``None`` when any signal did not
    land in the store.
    """
    store = seq.store
    sigs = (buffer.up.valid, buffer.up.ready, buffer.up.data,
            buffer.down.valid, buffer.down.ready)
    slots = [store.slot_or_none(sig) for sig in sigs]
    if None in slots:
        return None
    watch = tuple((s, s + 1) for s in slots)
    return (store.values, *slots, watch)

#: Symbolic occupancy states used throughout tests and traces.
EMPTY = "EMPTY"
HALF = "HALF"
FULL = "FULL"


class ElasticBuffer(Component):
    """Flip-flop based 2-slot elastic buffer.

    State is a two-entry circular FIFO.  ``ready`` upstream is a function
    of the registered occupancy only (high unless FULL) and ``valid``
    downstream is high unless EMPTY, so the buffer cuts every combinational
    path between its two channels — the property that lets long chains of
    EBs settle in O(1) iterations.
    """

    CAPACITY = 2

    def __init__(
        self,
        name: str,
        up: ElasticChannel,
        down: ElasticChannel,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.up = up
        self.down = down
        up.connect_consumer(self)
        down.connect_producer(self)
        # Both handshake outputs are functions of registered occupancy
        # only: the EB reads no signal combinationally.
        self.declare_reads()
        # Registered state: the stored items, oldest first, in one
        # slot-backed cell (private until compile_seq re-homes it into
        # the design-wide SeqStore).
        self._sstore: list[Any] = [[]]
        self._sq = 0
        self._next_items: list[Any] | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def _items(self) -> list[Any]:
        return self._sstore[self._sq]

    @_items.setter
    def _items(self, items: list[Any]) -> None:
        self._sstore[self._sq] = items

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def state(self) -> str:
        """Occupancy as the paper's EMPTY/HALF/FULL naming."""
        return (EMPTY, HALF, FULL)[len(self._items)]

    def contents(self) -> list[Any]:
        return list(self._items)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def combinational(self) -> None:
        count = len(self._items)
        self.up.ready.set(count < self.CAPACITY)
        self.down.valid.set(count > 0)
        self.down.data.set(self._items[0] if count else X)

    def compile_comb(self, store):
        if type(self).combinational is not ElasticBuffer.combinational:
            return None
        writers = _handshake_writers(store, self)
        if writers is None:
            return None
        ready_w, valid_w, data_w = (w.write for w in writers)
        capacity = self.CAPACITY
        sstore = self._sstore
        cell = self._sq

        def step() -> bool:
            items = sstore[cell]
            count = len(items)
            changed = ready_w(count < capacity)
            if valid_w(count > 0):
                changed = True
            if data_w(items[0] if count else X):
                changed = True
            return changed

        return step

    def compile_seq(self, seq):
        """Columnar tick plan: slot-level transfer detection, COW item
        list in one re-homed cell, delta-gated on the five handshake
        slots plus the cell itself."""
        cls = type(self)
        if (cls.capture is not ElasticBuffer.capture
                or cls.commit is not ElasticBuffer.commit):
            return None
        layout = _seq_handshake_layout(seq, self)
        if layout is None:
            return None
        values, uv, ur, ud, dv, dr, watch = layout
        cell = seq.alloc([self._sstore[self._sq]])
        self._sstore = seq.values
        self._sq = cell
        svalues = seq.values
        capacity = self.CAPACITY
        path = self.path

        def capture(cycle) -> None:
            deq = as_bool(values[dv]) and as_bool(values[dr])
            enq = as_bool(values[uv]) and as_bool(values[ur])
            if not deq and not enq:
                self._next_items = None
                return
            items = list(svalues[cell])
            if deq:
                items.pop(0)
            if enq:
                if len(items) >= capacity:
                    raise SimulationError(f"{path}: enqueue into full EB")
                items.append(values[ud])
            self._next_items = items

        def commit() -> bool:
            nxt = self._next_items
            if nxt is None:
                return False
            old = svalues[cell]
            changed = state_changed(old, nxt)
            svalues[cell] = nxt
            self._next_items = None
            return changed

        return SeqPlan(self, capture, commit, watch,
                       state=((cell, cell + 1),))

    def capture(self) -> None:
        items = list(self._items)
        if self.down.transfer:
            items.pop(0)
        if self.up.transfer:
            if len(items) >= self.CAPACITY:
                raise SimulationError(f"{self.path}: enqueue into full EB")
            items.append(self.up.data.value)
        self._next_items = items

    def commit(self) -> bool:
        if self._next_items is None:
            return False
        changed = state_changed(self._items, self._next_items)
        self._items = self._next_items
        self._next_items = None
        return changed

    def reset(self) -> None:
        self._items = []
        self._next_items = None

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def area_items(self) -> list[tuple[str, int, int]]:
        width = self.down.width
        return [
            ("ff", 2, width),      # two data slots
            ("mux2", 1, width),    # output/head selection
            ("ff", 1, 2),          # occupancy counter / state FSM
            ("lut", 3, 1),         # handshake control
        ]


class HalfBuffer(Component):
    """Capacity-1 elastic stage with combinational ready bypass.

    ``ready`` upstream is high when the slot is empty *or* the downstream
    side is draining it this very cycle, so a chain of half-buffers
    sustains full throughput with only one slot per stage — at the price of
    a combinational backward ``ready`` path (one extra settle iteration per
    chained stage) and one cycle of forward latency per stage.
    """

    def __init__(
        self,
        name: str,
        up: ElasticChannel,
        down: ElasticChannel,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.up = up
        self.down = down
        up.connect_consumer(self)
        down.connect_producer(self)
        # The ready bypass reads downstream ready while the slot is full.
        self.declare_reads(down.ready)
        # Slot-backed sequential state: [full, item].
        self._sstore: list[Any] = [False, X]
        self._sq = 0
        self._next: tuple[bool, Any] | None = None

    @property
    def _full(self) -> bool:
        return self._sstore[self._sq]

    @_full.setter
    def _full(self, full: bool) -> None:
        self._sstore[self._sq] = full

    @property
    def _item(self) -> Any:
        return self._sstore[self._sq + 1]

    @_item.setter
    def _item(self, item: Any) -> None:
        self._sstore[self._sq + 1] = item

    @property
    def occupancy(self) -> int:
        return 1 if self._full else 0

    def combinational(self) -> None:
        self.down.valid.set(self._full)
        self.down.data.set(self._item if self._full else X)
        draining = self._full and as_bool(self.down.ready.value)
        self.up.ready.set((not self._full) or draining)

    def compile_comb(self, store):
        if type(self).combinational is not HalfBuffer.combinational:
            return None
        writers = _handshake_writers(store, self)
        down_ready = store.slot_or_none(self.down.ready)
        if writers is None or down_ready is None:
            return None
        ready_w, valid_w, data_w = (w.write for w in writers)
        values = store.values
        sstore = self._sstore
        fb = self._sq

        def step() -> bool:
            full = sstore[fb]
            changed = valid_w(full)
            if data_w(sstore[fb + 1] if full else X):
                changed = True
            draining = full and as_bool(values[down_ready])
            if ready_w((not full) or draining):
                changed = True
            return changed

        return step

    def compile_seq(self, seq):
        """Columnar tick plan: slot-level transfers into the [full, item]
        cells, delta-gated on the handshake slots plus the cells."""
        cls = type(self)
        if (cls.capture is not HalfBuffer.capture
                or cls.commit is not HalfBuffer.commit):
            return None
        layout = _seq_handshake_layout(seq, self)
        if layout is None:
            return None
        values, uv, ur, ud, dv, dr, watch = layout
        fb = seq.alloc(self._sstore[self._sq:self._sq + 2])
        self._sstore = seq.values
        self._sq = fb
        svalues = seq.values

        def capture(cycle) -> None:
            full, item = svalues[fb], svalues[fb + 1]
            if as_bool(values[dv]) and as_bool(values[dr]):
                full, item = False, X
            if as_bool(values[uv]) and as_bool(values[ur]):
                full, item = True, values[ud]
            self._next = (full, item)

        def commit() -> bool:
            nxt = self._next
            if nxt is None:
                return False
            changed = state_changed((svalues[fb], svalues[fb + 1]), nxt)
            svalues[fb], svalues[fb + 1] = nxt
            self._next = None
            return changed

        return SeqPlan(self, capture, commit, watch,
                       state=((fb, fb + 2),))

    def capture(self) -> None:
        full, item = self._full, self._item
        if self.down.transfer:
            full, item = False, X
        if self.up.transfer:
            full, item = True, self.up.data.value
        self._next = (full, item)

    def commit(self) -> bool:
        if self._next is None:
            return False
        changed = state_changed((self._full, self._item), self._next)
        self._full, self._item = self._next
        self._next = None
        return changed

    def reset(self) -> None:
        self._full = False
        self._item = X
        self._next = None

    def area_items(self) -> list[tuple[str, int, int]]:
        width = self.down.width
        return [("latch", 1, width), ("lut", 2, 1)]


class LatchElasticBuffer(Component):
    """Latch-style EB: a main (slave) slot plus a shadow (master) slot.

    This is the master/slave latch decomposition at cycle granularity: the
    slave latch feeds the output every cycle; the master latch only
    captures ("skids") when the output is stalled.  Externally it is
    cycle-for-cycle equivalent to :class:`ElasticBuffer` — forward latency
    1, capacity 2, registered handshakes — which the property test in
    ``tests/test_elastic_buffer.py`` verifies under random traffic.  Only
    the area accounting differs (latches instead of flip-flops).
    """

    CAPACITY = 2

    def __init__(
        self,
        name: str,
        up: ElasticChannel,
        down: ElasticChannel,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.up = up
        self.down = down
        up.connect_consumer(self)
        down.connect_producer(self)
        self.declare_reads()
        # Registered state: (full, item) for the slave/output slot and the
        # master/shadow slot, in two slot-backed cells.
        self._sstore: list[Any] = [(False, X), (False, X)]
        self._sq = 0
        self._next: tuple[tuple[bool, Any], tuple[bool, Any]] | None = None

    @property
    def _out(self) -> tuple[bool, Any]:
        return self._sstore[self._sq]

    @_out.setter
    def _out(self, out: tuple[bool, Any]) -> None:
        self._sstore[self._sq] = out

    @property
    def _skid(self) -> tuple[bool, Any]:
        return self._sstore[self._sq + 1]

    @_skid.setter
    def _skid(self, skid: tuple[bool, Any]) -> None:
        self._sstore[self._sq + 1] = skid

    @property
    def occupancy(self) -> int:
        return int(self._out[0]) + int(self._skid[0])

    @property
    def state(self) -> str:
        return (EMPTY, HALF, FULL)[self.occupancy]

    def contents(self) -> list[Any]:
        out: list[Any] = []
        if self._out[0]:
            out.append(self._out[1])
        if self._skid[0]:
            out.append(self._skid[1])
        return out

    def combinational(self) -> None:
        out_full, out_item = self._out
        self.down.valid.set(out_full)
        self.down.data.set(out_item if out_full else X)
        self.up.ready.set(not self._skid[0])

    def compile_comb(self, store):
        if type(self).combinational is not LatchElasticBuffer.combinational:
            return None
        writers = _handshake_writers(store, self)
        if writers is None:
            return None
        ready_w, valid_w, data_w = (w.write for w in writers)
        sstore = self._sstore
        ob = self._sq

        def step() -> bool:
            out_full, out_item = sstore[ob]
            changed = valid_w(out_full)
            if data_w(out_item if out_full else X):
                changed = True
            if ready_w(not sstore[ob + 1][0]):
                changed = True
            return changed

        return step

    def compile_seq(self, seq):
        """Columnar tick plan for the master/slave latch pair."""
        cls = type(self)
        if (cls.capture is not LatchElasticBuffer.capture
                or cls.commit is not LatchElasticBuffer.commit):
            return None
        layout = _seq_handshake_layout(seq, self)
        if layout is None:
            return None
        values, uv, ur, ud, dv, dr, watch = layout
        ob = seq.alloc(self._sstore[self._sq:self._sq + 2])
        self._sstore = seq.values
        self._sq = ob
        svalues = seq.values
        path = self.path

        def capture(cycle) -> None:
            out_full, out_item = svalues[ob]
            skid_full, skid_item = svalues[ob + 1]
            deq = as_bool(values[dv]) and as_bool(values[dr])
            enq = as_bool(values[uv]) and as_bool(values[ur])
            if enq and skid_full:
                raise SimulationError(f"{path}: enqueue while shadow full")
            incoming = values[ud]
            if deq:
                if skid_full:
                    # Shadow refills the output slot; no enqueue possible.
                    out_full, out_item = True, skid_item
                    skid_full, skid_item = False, X
                else:
                    out_full, out_item = (True, incoming) if enq else (False, X)
            else:
                if enq:
                    if out_full:
                        skid_full, skid_item = True, incoming
                    else:
                        out_full, out_item = True, incoming
            self._next = ((out_full, out_item), (skid_full, skid_item))

        def commit() -> bool:
            nxt = self._next
            if nxt is None:
                return False
            changed = state_changed((svalues[ob], svalues[ob + 1]), nxt)
            svalues[ob], svalues[ob + 1] = nxt
            self._next = None
            return changed

        return SeqPlan(self, capture, commit, watch,
                       state=((ob, ob + 2),))

    def capture(self) -> None:
        out_full, out_item = self._out
        skid_full, skid_item = self._skid
        deq = self.down.transfer
        enq = self.up.transfer
        if enq and skid_full:
            raise SimulationError(f"{self.path}: enqueue while shadow full")
        incoming = self.up.data.value
        if deq:
            if skid_full:
                # Shadow refills the output slot; no enqueue was possible.
                out_full, out_item = True, skid_item
                skid_full, skid_item = False, X
            else:
                out_full, out_item = (True, incoming) if enq else (False, X)
        else:
            if enq:
                if out_full:
                    skid_full, skid_item = True, incoming
                else:
                    out_full, out_item = True, incoming
        self._next = ((out_full, out_item), (skid_full, skid_item))

    def commit(self) -> bool:
        if self._next is None:
            return False
        changed = state_changed((self._out, self._skid), self._next)
        self._out, self._skid = self._next
        self._next = None
        return changed

    def reset(self) -> None:
        self._out = (False, X)
        self._skid = (False, X)
        self._next = None

    def area_items(self) -> list[tuple[str, int, int]]:
        width = self.down.width
        return [
            ("latch", 2, width),   # master + slave latch arrays
            ("mux2", 1, width),    # refill path into the slave slot
            ("latch", 1, 2),       # control state
            ("lut", 3, 1),
        ]
