"""Single-thread elastic substrate (paper §II).

Channels, 2-slot elastic buffers, join/fork/branch/merge operators,
variable-latency function units, traffic endpoints and protocol monitors.
The multithreaded primitives in :mod:`repro.core` are built by replicating
and sharing these pieces.
"""

from repro.elastic.buffer import EMPTY, FULL, HALF, ElasticBuffer, LatchElasticBuffer
from repro.elastic.channel import ElasticChannel, channels
from repro.elastic.endpoints import Pattern, Sink, Source, duty_cycle, stall_window
from repro.elastic.function import FunctionUnit, VariableLatencyUnit
from repro.elastic.monitor import ChannelMonitor
from repro.elastic.operators import Branch, EagerFork, Join, LazyFork, Merge

__all__ = [
    "Branch",
    "ChannelMonitor",
    "EagerFork",
    "ElasticBuffer",
    "ElasticChannel",
    "EMPTY",
    "FULL",
    "FunctionUnit",
    "HALF",
    "Join",
    "LatchElasticBuffer",
    "LazyFork",
    "Merge",
    "Pattern",
    "Sink",
    "Source",
    "VariableLatencyUnit",
    "channels",
    "duty_cycle",
    "stall_window",
]
