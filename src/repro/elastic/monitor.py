"""Elastic-protocol monitors (assertion checkers).

A :class:`ChannelMonitor` watches one elastic channel and enforces the
protocol rules of the SELF-style handshake the paper builds on:

* **Persistence** — once ``valid`` is asserted it must stay asserted until
  the transfer completes (a producer may not withdraw an offer).
* **Data stability** — while an offer is stalled (``valid & !ready``) the
  data must not change.

It also records every transfer, which downstream analysis code uses for
token-conservation and ordering checks ("behaviourally equivalent ... with
respect to the trace of valid data", paper §I).
"""

from __future__ import annotations

from typing import Any

from repro.elastic.channel import ElasticChannel
from repro.kernel.component import Component
from repro.kernel.errors import ProtocolError
from repro.kernel.slots import SeqPlan
from repro.kernel.values import as_bool, same_value


class ChannelMonitor(Component):
    """Passive protocol checker and transfer recorder for one channel."""

    def __init__(
        self,
        name: str,
        channel: ElasticChannel,
        check_persistence: bool = True,
        check_stability: bool = True,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.channel = channel
        self.check_persistence = check_persistence
        self.check_stability = check_stability
        # Registered observation state.
        self._cycle = 0
        self._stalled_prev = False
        self._stalled_data: Any = None
        self._pending: tuple[int, bool, Any] | None = None
        self.transfers: list[tuple[int, Any]] = []
        self.stall_cycles = 0
        self.idle_cycles = 0

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    @property
    def transfer_count(self) -> int:
        return len(self.transfers)

    def values(self) -> list[Any]:
        return [data for _cycle, data in self.transfers]

    def transfer_cycles(self) -> list[int]:
        return [cycle for cycle, _data in self.transfers]

    def throughput(self) -> float:
        """Transfers per observed cycle (0.0 when nothing observed)."""
        return self.transfer_count / self._cycle if self._cycle else 0.0

    # ------------------------------------------------------------------
    # evaluation: observe in capture (settled values), commit bookkeeping
    # ------------------------------------------------------------------
    def capture(self) -> None:
        valid = as_bool(self.channel.valid.value)
        ready = as_bool(self.channel.ready.value)
        data = self.channel.data.value

        if self._stalled_prev:
            if self.check_persistence and not valid:
                raise ProtocolError(
                    f"{self.path}: valid withdrawn on {self.channel.path} "
                    f"at cycle {self._cycle} before transfer completed"
                )
            if (
                self.check_stability
                and valid
                and not same_value(data, self._stalled_data)
            ):
                raise ProtocolError(
                    f"{self.path}: data changed on {self.channel.path} while "
                    f"stalled at cycle {self._cycle}: "
                    f"{self._stalled_data!r} -> {data!r}"
                )

        if valid and ready:
            self.transfers.append((self._cycle, data))
            stalled_now = False
        elif valid:
            self.stall_cycles += 1
            stalled_now = True
        else:
            self.idle_cycles += 1
            stalled_now = False
        self._pending = (self._cycle + 1, stalled_now, data if stalled_now else None)

    def compile_seq(self, seq):
        """Delta-gated tick plan with bulk replay of idle/stall stretches.

        The observation (including both protocol checks) is a pure
        function of the watched valid/ready/data slots and the stall
        bookkeeping, so an unchanged watch set replays the previous
        classification: ``repeat`` bumps the stall/idle counters — or
        extends the transfer list with advancing cycle stamps — ``k``
        cycles at a time.
        """
        cls = type(self)
        if (cls.capture is not ChannelMonitor.capture
                or cls.commit is not ChannelMonitor.commit):
            return None
        store = seq.store
        vs = store.slot_or_none(self.channel.valid)
        rs = store.slot_or_none(self.channel.ready)
        ds = store.slot_or_none(self.channel.data)
        if None in (vs, rs, ds):
            return None
        values = store.values
        capture_fn = self.capture
        #: last classification: "transfer" | "stall" | "idle"
        last = ["idle", None]

        def capture(cycle) -> None:
            capture_fn()
            valid = as_bool(values[vs])
            if valid and as_bool(values[rs]):
                last[0], last[1] = "transfer", values[ds]
            elif valid:
                last[0] = "stall"
            else:
                last[0] = "idle"

        def repeat(k, start_cycle) -> None:
            kind = last[0]
            if kind == "transfer":
                data = last[1]
                self.transfers.extend(
                    (c, data) for c in range(start_cycle, start_cycle + k)
                )
            elif kind == "stall":
                self.stall_cycles += k
            else:
                self.idle_cycles += k
            self._cycle += k

        watch = ((vs, vs + 1), (rs, rs + 1), (ds, ds + 1))
        return SeqPlan(self, capture, self.commit, watch, repeat=repeat)

    def commit(self) -> bool:
        if self._pending is not None:
            self._cycle, self._stalled_prev, self._stalled_data = self._pending
            self._pending = None
        # Pure observer: nothing combinational depends on this state.
        return False

    def reset(self) -> None:
        self._cycle = 0
        self._stalled_prev = False
        self._stalled_data = None
        self._pending = None
        # In-place clear: the compiled tick plan binds this list.
        self.transfers.clear()
        self.stall_cycles = 0
        self.idle_cycles = 0
