"""Elastic function units: the computation nodes between buffers.

* :class:`FunctionUnit` — zero-latency combinational mapping on a channel
  (valid/ready pass straight through, data is transformed).
* :class:`VariableLatencyUnit` — a unit that accepts one item, holds it for
  a data- or schedule-dependent number of cycles, then presents the result
  until taken.  This is the paper's "variable latency computation" the
  elastic control exists to tolerate (§I, §V-B: "instruction and data
  memory as well as the execution units are considered variable latency
  units").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.elastic.channel import ElasticChannel
from repro.kernel.component import Component
from repro.kernel.errors import SimulationError
from repro.kernel.values import X, as_bool, state_changed

#: Latency policy: a fixed int, a callable ``fn(data, k) -> int`` where k
#: counts accepted items, or an iterable of per-item latencies.
LatencyPolicy = int | Callable[[Any, int], int] | Iterable[int]


class FunctionUnit(Component):
    """Combinational (zero-cycle) elastic function on a channel pair."""

    def __init__(
        self,
        name: str,
        inp: ElasticChannel,
        out: ElasticChannel,
        fn: Callable[[Any], Any],
        area_luts: int = 0,
        pure: bool = False,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.inp = inp
        self.out = out
        self.fn = fn
        self._area_luts = int(area_luts)
        inp.connect_consumer(self)
        out.connect_producer(self)
        self.declare_reads(inp.valid, inp.data, out.ready)
        if not pure:
            # fn is an arbitrary callable that may close over mutable
            # context; re-evaluate every settle unless the author asserts
            # purity (see MTFunction for the contract).
            self.declare_volatile()

    def combinational(self) -> None:
        in_valid = as_bool(self.inp.valid.value)
        self.out.valid.set(in_valid)
        self.out.data.set(self.fn(self.inp.data.value) if in_valid else X)
        self.inp.ready.set(as_bool(self.out.ready.value))

    def area_items(self) -> list[tuple[str, int, int]]:
        return [("lut", self._area_luts, 1)] if self._area_luts else []


class VariableLatencyUnit(Component):
    """Single-occupancy unit with per-item latency.

    Timing contract: an item accepted in cycle *t* with latency *L* (≥ 1)
    presents its result from cycle *t+L* until the downstream takes it.
    While occupied the unit is not ready upstream, so the surrounding
    elastic network absorbs the bubbles — exactly the situation Fig. 1(b)
    of the paper illustrates.
    """

    def __init__(
        self,
        name: str,
        inp: ElasticChannel,
        out: ElasticChannel,
        fn: Callable[[Any], Any],
        latency: LatencyPolicy = 1,
        area_luts: int = 0,
        parent: Component | None = None,
    ):
        super().__init__(name, parent=parent)
        self.inp = inp
        self.out = out
        self.fn = fn
        self._area_luts = int(area_luts)
        self._latency_policy = latency
        self._latency_iter: Iterator[int] | None = None
        inp.connect_consumer(self)
        out.connect_producer(self)
        # Handshake outputs depend on registered occupancy only.
        self.declare_reads()
        # Registered state.
        self._busy = False
        self._remaining = 0
        self._result: Any = X
        self._accepted = 0
        self._next: tuple[bool, int, Any, int] | None = None

    def _latency_for(self, data: Any) -> int:
        policy = self._latency_policy
        if isinstance(policy, int):
            lat = policy
        elif callable(policy):
            lat = policy(data, self._accepted)
        else:
            if self._latency_iter is None:
                self._latency_iter = iter(policy)
            try:
                lat = next(self._latency_iter)
            except StopIteration as exc:
                raise SimulationError(
                    f"{self.path}: latency iterable exhausted"
                ) from exc
        if lat < 1:
            raise SimulationError(f"{self.path}: latency must be >= 1, got {lat}")
        return int(lat)

    @property
    def done(self) -> bool:
        return self._busy and self._remaining == 0

    def combinational(self) -> None:
        self.inp.ready.set(not self._busy)
        self.out.valid.set(self.done)
        self.out.data.set(self._result if self.done else X)

    def capture(self) -> None:
        busy, remaining, result = self._busy, self._remaining, self._result
        accepted = self._accepted
        if self.done and self.out.transfer:
            busy, result = False, X
        if not self._busy and self.inp.transfer:
            data = self.inp.data.value
            # Result is presented L cycles after acceptance; the register
            # update itself consumes one of those cycles.
            remaining = self._latency_for(data) - 1
            result = self.fn(data)
            busy = True
            accepted += 1
        elif busy and remaining > 0:
            remaining -= 1
        self._next = (busy, remaining, result, accepted)

    def commit(self) -> bool:
        if self._next is None:
            return False
        changed = state_changed(
            (self._busy, self._remaining, self._result), self._next[:3]
        )
        self._busy, self._remaining, self._result, self._accepted = self._next
        self._next = None
        return changed

    def reset(self) -> None:
        self._busy = False
        self._remaining = 0
        self._result = X
        self._accepted = 0
        self._next = None
        self._latency_iter = None

    def area_items(self) -> list[tuple[str, int, int]]:
        width = self.out.width
        items: list[tuple[str, int, int]] = [
            ("ff", 1, width),  # result register
            ("ff", 1, 4),      # countdown / occupancy
            ("lut", 4, 1),     # control
        ]
        if self._area_luts:
            items.append(("lut", self._area_luts, 1))
        return items
