#!/usr/bin/env python3
"""MD5 on the multithreaded elastic circuit (paper §V-A).

Hashes a batch of messages — one per hardware thread — on the elastic
MD5 loop (merge -> MEB -> 16-step round datapath -> MEB -> barrier ->
branch), checks every digest against the software reference, and reports
the barrier's round synchronization and the cost of both MEB kinds.

Run:  python examples/md5_hashing.py
"""

import hashlib

from repro.apps.md5 import MD5Hasher, md5_hex
from repro.cost import AreaModel


def main() -> None:
    messages = [
        b"elastic systems",
        b"multithreading hides latency",
        b"the quick brown fox jumps over the lazy dog",
        b"x" * 100,            # multi-block message
        b"",                   # empty message (pure padding)
        b"DATE 2014",
        b"reduced MEB: S+1 slots",
        b"full MEB: 2S slots",
    ]

    print(f"hashing {len(messages)} messages on 8 threads "
          "(reduced MEBs)...\n")
    hasher = MD5Hasher(threads=8, meb="reduced")
    digests = hasher.hash_batch(messages)

    ok = True
    for msg, digest in zip(messages, digests):
        expected = hashlib.md5(msg).hexdigest()
        match = "ok" if digest == expected else "MISMATCH"
        ok &= digest == expected
        label = msg[:28].decode("latin1") + ("..." if len(msg) > 28 else "")
        print(f"  {digest}  {match}   {label!r}")
    assert ok, "digest mismatch!"

    circuit = hasher.circuit
    print(f"\ncycles: {circuit.sim.cycle}, barrier releases: "
          f"{circuit.barrier.releases} (4 per wave of blocks)")
    print("software reference agrees with hashlib:",
          md5_hex(b"abc") == hashlib.md5(b"abc").hexdigest())

    # Cost comparison of the two buffer choices (Table I, MD5 row).
    model = AreaModel()
    print("\narea comparison (structural LE model):")
    for kind in ("full", "reduced"):
        circ = MD5Hasher(threads=8, meb=kind).circuit
        le = sum(model.component_area(c).total_le
                 for c in circ.area_components())
        slots = sum(m.total_slots for m in circ.meb_components())
        print(f"  {kind:<8} MEBs: {le:8.0f} LE, {slots} buffer slots")


if __name__ == "__main__":
    main()
