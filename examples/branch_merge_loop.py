#!/usr/bin/env python3
"""Dataflow control flow with M-Branch and M-Merge: Collatz in hardware.

Each thread pushes numbers into an elastic loop that applies one Collatz
step per trip (n -> n/2 or 3n+1) and exits through the M-Branch once the
value reaches 1, yielding the step count.  This is the "if-then-else /
while-loop" synthesis pattern of the paper's Fig. 3 and Fig. 7, built
from the public netlist API.

Run:  python examples/branch_merge_loop.py
"""

from repro.netlist import DataflowGraph, elaborate


def collatz_steps(n: int) -> int:
    steps = 0
    while n != 1:
        n = n // 2 if n % 2 == 0 else 3 * n + 1
        steps += 1
    return steps


def collatz_step(token):
    origin, value, steps = token
    if value == 1:
        return token
    return (origin, value // 2 if value % 2 == 0 else 3 * value + 1,
            steps + 1)


def main() -> None:
    inputs = [[7, 6], [27]]  # two threads, independent work queues

    g = DataflowGraph("collatz")
    g.source("numbers",
             items=[[(n, n, 0) for n in stream] for stream in inputs])
    g.merge("loop_entry", n_inputs=2)
    g.buffer("loop_buf")        # becomes a reduced MEB when elaborated
    g.op("step", fn=collatz_step, area_luts=96)
    g.buffer("exit_buf")
    g.branch("done", selector=lambda tok: 1 if tok[1] == 1 else 0)
    g.sink("results")
    g.connect("numbers", "loop_entry", dst_port=0)
    g.connect("loop_entry", "loop_buf")
    g.connect("loop_buf", "step")
    g.connect("step", "exit_buf")
    g.connect("exit_buf", "done")
    g.connect("done", "loop_entry", src_port=0, dst_port=1)  # recirculate
    g.connect("done", "results", src_port=1)                 # exit

    elab = elaborate(g, threads=2, meb="reduced")
    sink = elab.sink("results")
    total = sum(len(s) for s in inputs)
    elab.run(until=lambda _s: sink.count == total, max_cycles=3000)

    print("Collatz step counts computed by the elastic loop:\n")
    ok = True
    for t, stream in enumerate(inputs):
        got = {origin: steps for origin, _v, steps in sink.values_for(t)}
        order = [origin for origin, _v, _s in sink.values_for(t)]
        for n in stream:
            expected = collatz_steps(n)
            ok &= got.get(n) == expected
            print(f"  thread {t}: collatz({n}) = {got.get(n)} steps "
                  f"(expected {expected})")
        if order != stream:
            print(f"  thread {t}: completion order {order} differs from "
                  f"injection order {stream} — tokens needing fewer loop "
                  "trips overtake (dynamic dataflow scheduling)")
    print(f"\nsimulated {elab.sim.cycle} cycles; all correct: {ok}")
    print("loop entry transfers per thread:",
          [elab.monitor(g.edges[1].name).transfer_count(t)
           for t in range(2)])


if __name__ == "__main__":
    main()
