#!/usr/bin/env python3
"""The multithreaded pipelined elastic processor (paper §V-B).

Loads a different program on each of 8 hardware threads — loops,
recursion-free call/return, memory copies, multiplies — runs them to
completion on the shared 5-stage elastic pipeline, validates every
result, and shows how IPC scales with thread count as multithreading
hides the variable memory/execute latencies.

Run:  python examples/processor_demo.py
"""

from repro.apps.processor import Processor, programs


def run_mixed_workload() -> None:
    cpu = Processor(threads=8, meb="reduced", imem_latency=1,
                    dmem_latency=3, mul_latency=3)
    mix = programs.standard_mix()
    for t, prog in enumerate(mix):
        cpu.load_program(t, prog.source)
    stats = cpu.run()

    print("8-thread mixed workload (reduced MEBs):")
    print(f"{'thread':>7} {'program':<18} {'retired':>8} {'result':>12} ok")
    for t, prog in enumerate(mix):
        kind, where = prog.check
        got = cpu.reg(t, where) if kind == "reg" else cpu.mem_word(t, where)
        ok = "yes" if got == prog.expected else "NO"
        print(f"{t:>7} {prog.name:<18} {stats.retired[t]:>8} "
              f"{got:>12} {ok}")
    print(f"\ntotal: {stats.total_retired} instructions in "
          f"{stats.cycles} cycles -> IPC {stats.ipc:.3f}\n")


def ipc_scaling() -> None:
    print("IPC vs thread count (spin loops, slow memories: fetch=2, "
          "data=4 cycles):")
    print(f"{'threads':>8} | {'cycles':>7} | {'IPC':>6} | speedup")
    base_ipc = None
    for n in (1, 2, 4, 8):
        cpu = Processor(threads=n, meb="reduced", imem_latency=2,
                        dmem_latency=4)
        for t in range(n):
            cpu.load_program(t, programs.spin(40).source)
        stats = cpu.run()
        if base_ipc is None:
            base_ipc = stats.ipc
        print(f"{n:>8} | {stats.cycles:>7} | {stats.ipc:>6.3f} | "
              f"{stats.ipc / base_ipc:>6.2f}x")
    print("\nThe shared pipeline stays busy with other threads while each "
          "thread's\nfetch/memory access is in flight — the utilization "
          "argument of the paper's Fig. 1(c).")


def custom_program() -> None:
    print("\ncustom assembly (call/return with jal/jalr):")
    cpu = Processor(threads=1)
    cpu.load_program(0, """
        addi x10, x0, 6       ; argument n = 6
        jal  x1, triangle     ; x2 = 1+2+...+n
        sw   x2, x0, 0
        halt
    triangle:
        addi x2, x0, 0
    tloop:
        beq  x10, x0, tdone
        add  x2, x2, x10
        addi x10, x10, -1
        jal  x0, tloop
    tdone:
        jalr x0, x1, 0        ; return
    """, base=0)
    stats = cpu.run()
    print(f"  triangle(6) = {cpu.mem_word(0, 0)} (expected 21), "
          f"{stats.retired[0]} instructions retired")


def main() -> None:
    run_mixed_workload()
    ipc_scaling()
    custom_program()


if __name__ == "__main__":
    main()
