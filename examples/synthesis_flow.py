#!/usr/bin/env python3
"""The synthesis flow end to end: describe, legalize, lower, cost, run.

Starts from a *combinational* dataflow description of a small filter
(multiply-accumulate with a saturation branch), mechanically elasticizes
it, lowers it to all four Table-I style design points (1 or 4 threads x
full or reduced MEBs), prints per-node cost reports and a Graphviz dump,
and runs the 4-thread version to show identical results.

Run:  python examples/synthesis_flow.py
"""

from repro.netlist import (
    DataflowGraph,
    cost_report,
    elaborate,
    elaboration_cost,
    elasticize,
    to_dot,
    validate,
)


def saturate(value: int, limit: int = 1000) -> int:
    return max(-limit, min(limit, value))


def reference(stream):
    acc = 0
    out = []
    for x in stream:
        acc = saturate(acc + 3 * x - 1)
        out.append(acc)
    return out


def build_graph(streams) -> DataflowGraph:
    """y[k] = saturate(y[k-1] + 3*x[k] - 1), expressed as dataflow.

    For demo simplicity the accumulator rides inside the token:
    items are (x, acc) pairs and each op is purely combinational — the
    elasticizer decides where the pipeline registers go.
    """
    g = DataflowGraph("mac_filter")
    g.source("xs", items=[[(x, None) for x in s] for s in streams])
    g.op("scale", fn=lambda t: (t[0] * 3 - 1, t[1]), area_luts=96)
    g.sink("ys")
    g.chain("xs", "scale", "ys")
    return g


def main() -> None:
    streams = [[1, 5, -2], [10, 11], [0, 0, 7], [400]]
    graph = build_graph(streams)

    print("before elasticization:",
          [n for n, node in graph.nodes.items()])
    elasticize(graph)
    validate(graph)
    print("after elasticization: ",
          [n for n, node in graph.nodes.items()])
    print("\nGraphviz (paste into dot -Tpng):\n")
    print(to_dot(graph, title="MAC filter, elasticized"))

    print("cost of the four design points:")
    for threads in (1, 4):
        for meb in ("full", "reduced"):
            items = streams if threads == 4 else [streams[0]]
            g = build_graph(items)
            elasticize(g)
            elab = elaborate(g, threads=threads, meb=meb)
            _per, total = elaboration_cost(elab)
            print(f"  threads={threads} meb={meb:<8} total "
                  f"{total:8.0f} LE")

    print("\nper-node report (4 threads, reduced):")
    g = build_graph(streams)
    elasticize(g)
    elab = elaborate(g, threads=4, meb="reduced")
    print(cost_report(elab))

    sink = elab.sink("ys")
    total_items = sum(len(s) for s in streams)
    elab.run(until=lambda _s: sink.count == total_items, max_cycles=200)
    ok = True
    for t, stream in enumerate(streams):
        got = [v for v, _acc in sink.values_for(t)]
        expected = [3 * x - 1 for x in stream]
        ok &= got == expected
        print(f"thread {t}: {got} (expected {expected})")
    print(f"\nall correct: {ok}, {elab.sim.cycle} cycles")


if __name__ == "__main__":
    main()
