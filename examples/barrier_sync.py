#!/usr/bin/env python3
"""The thread synchronization barrier (paper §IV-C, Fig. 8).

Four threads reach a barrier at very different times (staggered
injection); nothing passes until the last one arrives, then all four are
released together.  The per-cycle trace shows the IDLE/WAIT/FREE FSMs,
the arrival counter and the go flag — the exact machinery of Fig. 8.

Run:  python examples/barrier_sync.py
"""

from repro.analysis import OccupancyProbe
from repro.core import Barrier, FullMEB, MTChannel, MTSink, MTSource
from repro.kernel import build


def main() -> None:
    threads = 4
    c0 = MTChannel("c0", threads=threads, width=16)
    c1 = MTChannel("c1", threads=threads, width=16)
    c2 = MTChannel("c2", threads=threads, width=16)

    # Thread t injects its item at cycle 4*t: arrivals are staggered.
    src = MTSource("src", c0,
                   items=[[f"T{t}"] for t in range(threads)],
                   patterns=[lambda c, t=t: c >= 4 * t
                             for t in range(threads)])
    meb = FullMEB("meb", c0, c1)
    barrier = Barrier("barrier", c1, c2)
    sink = MTSink("snk", c2)

    sim = build(c0, c1, c2, src, meb, barrier, sink)
    states = OccupancyProbe(
        lambda: " ".join(barrier.thread_state(t)[0] for t in range(threads))
    )
    count = OccupancyProbe(lambda: barrier.count)
    go = OccupancyProbe(lambda: int(barrier.go))
    for probe in (states, count, go):
        sim.add_observer(probe)

    sim.run(until=lambda _s: sink.count == threads, max_cycles=60)

    print("cycle | FSM (I=IDLE W=WAIT F=FREE) | count | go")
    print("-" * 50)
    for c, (st, cnt, g) in enumerate(zip(states.series, count.series,
                                         go.series)):
        print(f"{c:>5} | {st:^26} | {cnt:>5} | {g}")

    arrivals = {t: cyc for cyc, t, _d in sink.received}
    print(f"\nall {threads} threads passed the barrier within "
          f"{max(arrivals.values()) - min(arrivals.values()) + 1} cycles "
          f"of each other (released together, serialized by the shared "
          "channel)")
    print(f"releases: {barrier.releases}, final go flag: {barrier.go}")


if __name__ == "__main__":
    main()
