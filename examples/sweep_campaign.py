"""Programmatic simulation campaign + fork-based stimulus variants.

Two demonstrations of the `repro.sweep` subsystem (docs/sweep.md):

1. A campaign built from a plain dict — the same structure a TOML spec
   parses into — swept over MEB kinds and active-thread counts,
   executed in-process, and rendered as the markdown report CI uploads.
2. The kernel's rewind-style fork directly: warm one pipeline up,
   branch three stimulus variants off the same snapshot, and compare
   — the warm-up cycles are paid exactly once.

Run:  PYTHONPATH=src python examples/sweep_campaign.py
"""

from __future__ import annotations

from repro.sweep import get_family, render_markdown, run_campaign
from repro.sweep.spec import from_dict

CAMPAIGN = {
    "campaign": {"name": "quickstart-sweep", "seed": 42, "workers": 1},
    "scenarios": [
        {
            # Paper Fig. 5's 1/M law: per-thread throughput with M of
            # 4 threads active, for both MEB kinds.
            "family": "mt_pipeline",
            "params": {"threads": 4, "n_stages": 3},
            "grid": {
                "meb": ["full", "reduced"],
                "stimulus.active": [1, 2, 4],
            },
            "stimulus": {"kind": "active", "items_per_thread": 30},
            "metrics": {"warmup": 8, "drain": 4},
        },
        {
            # The dense shared-function chain across widths.
            "family": "mt_chain",
            "params": {"n_funcs": 4},
            "grid": {"threads": [2, 4, 8]},
            "stimulus": {"kind": "uniform", "items_per_thread": 12},
            "metrics": {"warmup": 6, "drain": 4},
        },
    ],
}


def campaign_demo() -> None:
    spec = from_dict(CAMPAIGN)
    report = run_campaign(spec)
    print(render_markdown(report))
    # The 1/M law, read straight out of the aggregated report:
    for row in report["scenarios"]:
        if row["family"] != "mt_pipeline" or row["status"] != "ok":
            continue
        active = row["stimulus"]["active"]
        per_thread = row["metrics"]["per_thread_throughput"][:active]
        mean = sum(per_thread) / active
        print(
            f"meb={row['params']['meb']:7s} M={active}: "
            f"mean per-thread throughput {mean:.3f} (ideal {1 / active:.3f})"
        )


def fork_demo() -> None:
    print("\n-- fork(): one warm-up, three trajectories --")
    family = get_family("mt_pipeline")
    handle = family.build({"threads": 2, "n_stages": 2, "meb": "reduced"},
                          None)
    sim, source, sink = handle.sim, handle.source, handle.sink
    # Warm the pipeline up once.
    for k in range(6):
        source.push(0, k)
    sim.run(cycles=12)
    branch_cycle = sim.cycle
    for burst in (2, 5, 9):
        with sim.fork():
            for k in range(burst):
                source.push(1, 100 + k)
            sim.run(cycles=40)
            print(
                f"  variant burst={burst}: sink drained {sink.count} items "
                f"by cycle {sim.cycle}"
            )
    print(f"  rewound to branch point: cycle {sim.cycle} == {branch_cycle}")


if __name__ == "__main__":
    campaign_demo()
    fork_demo()
