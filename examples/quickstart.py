#!/usr/bin/env python3
"""Quickstart: a 3-stage multithreaded elastic pipeline in ~40 lines.

Builds the paper's basic structure — a chain of multithreaded elastic
buffers (MEBs) shared by two threads — runs traffic through it with one
thread stalling halfway, and prints the cycle-by-cycle channel activity.

Run:  python examples/quickstart.py
"""

from repro.analysis import channel_stats, render_activity_table
from repro.core import MTChannel, MTMonitor, MTSink, MTSource, ReducedMEB
from repro.elastic import stall_window
from repro.kernel import build


def main() -> None:
    threads = 2
    # Channels carry one thread's data per cycle plus a valid/ready pair
    # per thread.
    chans = [MTChannel(f"ch{i}", threads=threads, width=32) for i in range(4)]

    # Two independent item streams, one per thread.
    source = MTSource("src", chans[0], items=[
        [f"A{i}" for i in range(12)],
        [f"B{i}" for i in range(12)],
    ])

    # Three reduced MEBs: one main slot per thread + one shared slot each.
    mebs = [
        ReducedMEB(f"meb{i}", chans[i], chans[i + 1]) for i in range(3)
    ]

    # Thread B's consumer stalls during cycles [8, 16).
    sink = MTSink("snk", chans[-1], patterns=[None, stall_window(8, 16)])

    monitors = [MTMonitor(f"mon{i}", ch) for i, ch in enumerate(chans)]
    sim = build(*chans, source, *mebs, sink, *monitors)

    sim.run(until=lambda _s: sink.count == 24, max_cycles=200)

    print("Channel activity (lower-case* = presented but stalled):\n")
    print(render_activity_table(
        {"input": monitors[0], "mid": monitors[1], "output": monitors[-1]},
        end=28,
    ))

    stats = channel_stats(monitors[-1])
    print(f"finished in {sim.cycle} cycles")
    for ts in stats.per_thread:
        print(f"  thread {ts.thread}: {ts.transfers} items, "
              f"throughput {ts.throughput:.2f}/cycle")
    print(f"  channel utilization: {stats.utilization:.2f}")
    print("\nper-thread order preserved:",
          sink.values_for(0) == [f"A{i}" for i in range(12)]
          and sink.values_for(1) == [f"B{i}" for i in range(12)])


if __name__ == "__main__":
    main()
