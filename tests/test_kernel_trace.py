"""TraceRecorder: VCD round-trip fidelity and observer detach.

The round-trip test parses the emitted Value Change Dump back with a
minimal reader and reconstructs per-cycle values under VCD semantics
(a signal's value carries forward until the next change record), then
compares against the recorder's own samples — so the writer's
change-only encoding, identifier codes and width handling are all
checked against ground truth, not just against "the file has headers".
"""

from __future__ import annotations

import pytest

from repro.core import FullMEB
from repro.kernel import Component, Simulator, X, is_x
from repro.kernel.trace import TraceRecorder, trace_signals
from repro.sweep.families import make_mt_bursty


class Toggler(Component):
    """1-bit toggle plus an 8-bit counter plus an occasionally-X lane."""

    def __init__(self, name):
        super().__init__(name)
        self.bit = self.output("bit", width=1, init=False)
        self.count = self.output("count", width=8, init=0)
        self.weird = self.output("weird", width=4, init=X)
        self._n = 0
        self._next = None

    def combinational(self):
        self.bit.set(bool(self._n % 2))
        self.count.set(self._n)
        # X on every third cycle: exercises the x-encoding path.
        self.weird.set(X if self._n % 3 == 0 else self._n % 16)

    def capture(self):
        self._next = self._n + 1

    def commit(self):
        self._n = self._next

    def reset(self):
        self._n = 0
        self._next = None


def parse_vcd(text: str):
    """Minimal VCD reader: returns (vars, changes).

    ``vars`` maps identifier code -> (name, width); ``changes`` is a
    list of (cycle, {code: raw_value}) in file order where raw_value is
    ``True``/``False`` for scalars, an int for vectors, the string for
    string literals and ``"x"`` for unknowns.
    """
    vars: dict[str, tuple[str, int]] = {}
    changes: list[tuple[int, dict]] = []
    current: dict | None = None
    cycle = None
    in_defs = True
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if in_defs:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire <width> <code> <name> $end
                vars[parts[3]] = (parts[4], int(parts[2]))
            if line.startswith("$enddefinitions"):
                in_defs = False
            continue
        if line.startswith("#"):
            if current is not None:
                changes.append((cycle, current))
            cycle = int(line[1:])
            current = {}
            continue
        assert current is not None, "value change before first timestamp"
        if line[0] in "01":
            value, code = line[0] == "1", line[1:]
        elif line[0] in "xX":
            value, code = "x", line[1:]
        elif line[0] == "b":
            bits, code = line[1:].split()
            value = "x" if set(bits) <= {"x"} else int(bits, 2)
        elif line[0] == "s":
            value, code = line[1:].split()
        else:  # pragma: no cover - unknown record
            raise AssertionError(f"unhandled VCD record {line!r}")
        current[code] = value
    if current is not None:
        changes.append((cycle, current))
    return vars, changes


def reconstruct(vars, changes):
    """Apply carry-forward semantics: per-cycle {name: value} rows."""
    state: dict[str, object] = {}
    rows = []
    cycles = []
    for cycle, delta in changes:
        for code, value in delta.items():
            state[vars[code][0]] = value
        rows.append(dict(state))
        cycles.append(cycle)
    return cycles, rows


def _normalize(value, width):
    """A recorder sample in the representation parse_vcd returns."""
    if is_x(value):
        return "x"
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        if width == 1:
            return bool(value)
        return value & ((1 << width) - 1) if value < 0 else value
    return str(value).replace(" ", "_")


class TestVcdRoundTrip:
    def test_round_trip_matches_samples(self, tmp_path):
        sim = Simulator()
        tog = Toggler("tog")
        sim.add(tog)
        sim.reset()
        rec = trace_signals(
            sim, [tog.bit, tog.count, tog.weird],
            labels=["bit", "count", "weird"],
        )
        sim.run(cycles=10)
        path = tmp_path / "dump.vcd"
        rec.write_vcd(str(path))

        vars, changes = parse_vcd(path.read_text(encoding="utf-8"))
        assert {name for name, _w in vars.values()} == {
            "bit", "count", "weird",
        }
        widths = {name: w for name, w in vars.values()}
        assert widths["bit"] == 1 and widths["count"] == 8

        cycles, rows = reconstruct(vars, changes)
        assert cycles == rec.cycles
        assert len(rows) == len(rec.samples)
        for row, sample in zip(rows, rec.samples):
            for label in ("bit", "count", "weird"):
                expect = _normalize(sample[label], widths[label])
                assert row[label] == expect, (
                    f"{label}: VCD replays {row[label]!r}, "
                    f"recorder sampled {sample[label]!r}"
                )

    def test_change_only_encoding(self, tmp_path):
        """A constant signal appears once, not once per cycle."""
        sim = Simulator()
        tog = Toggler("tog")
        sim.add(tog)
        sim.reset()
        rec = trace_signals(sim, [tog.bit], labels=["bit"])
        sim.run(cycles=8)
        path = tmp_path / "dump.vcd"
        rec.write_vcd(str(path))
        vars, changes = parse_vcd(path.read_text(encoding="utf-8"))
        # bit toggles every cycle here, so every timestamp has a change;
        # now a constant:
        sim2 = Simulator()
        tog2 = Toggler("t2")
        sim2.add(tog2)
        sim2.reset()
        rec2 = trace_signals(sim2, [tog2.count], labels=["count"])
        # count is 0 on every settled cycle 0; run a single cycle window
        sim2.run(cycles=1)
        rec2.write_vcd(str(path))
        _vars2, changes2 = parse_vcd(path.read_text(encoding="utf-8"))
        total_changes = sum(len(delta) for _c, delta in changes2)
        assert total_changes == 1

    def test_label_spaces_sanitized(self, tmp_path):
        sim = Simulator()
        tog = Toggler("tog")
        sim.add(tog)
        sim.reset()
        rec = TraceRecorder([tog.count], labels=["my count"]).attach(sim)
        sim.run(cycles=2)
        path = tmp_path / "dump.vcd"
        rec.write_vcd(str(path))
        vars, _changes = parse_vcd(path.read_text(encoding="utf-8"))
        assert [name for name, _w in vars.values()] == ["my_count"]


class TestDetach:
    def test_detach_stops_sampling(self):
        sim = Simulator()
        tog = Toggler("tog")
        sim.add(tog)
        sim.reset()
        rec = trace_signals(sim, [tog.count], labels=["count"])
        sim.run(cycles=3)
        assert len(rec) == 3
        rec.detach(sim)
        sim.run(cycles=4)
        assert len(rec) == 3, "recorder kept sampling after detach"

    def test_detach_reenables_fusion(self):
        sim, src, sink, _mebs, _mons = make_mt_bursty(
            FullMEB, threads=2, n_stages=2, engine="compiled",
        )
        rec = TraceRecorder([sim.signals[0]]).attach(sim)
        assert sim.fusion_blockers(), "observer should block fusion"
        rec.detach(sim)
        assert not sim.fusion_blockers(), (
            "fusion still blocked after detach"
        )
        for t in range(2):
            for i in range(3):
                src.push(t, (t << 8) | i)
        with sim.profile() as prof:
            sim.run(cycles=300)
        assert prof.report()["cycles"]["fused"] > 0
        assert sink.count == 6

    def test_detach_unattached_is_noop(self):
        sim = Simulator()
        tog = Toggler("tog")
        sim.add(tog)
        sim.reset()
        rec = TraceRecorder([tog.count])
        rec.detach(sim)  # never attached: must not raise
        sim.run(cycles=1)
        assert len(rec) == 0

    def test_reattach_after_detach(self):
        sim = Simulator()
        tog = Toggler("tog")
        sim.add(tog)
        sim.reset()
        rec = trace_signals(sim, [tog.count], labels=["count"])
        sim.run(cycles=2)
        rec.detach(sim)
        sim.run(cycles=2)
        rec.attach(sim)
        sim.run(cycles=2)
        assert len(rec) == 4
        assert rec.cycles == [0, 1, 4, 5]
