"""Unit tests for the simulation kernel: signals, values, components."""

import pickle

import pytest

from repro.kernel import (
    Component,
    Signal,
    WiringError,
    X,
    as_bool,
    bit,
    is_x,
    onehot_index,
    popcount,
    same_value,
)


class TestUnknownValue:
    def test_x_is_singleton(self):
        from repro.kernel.values import _Unknown

        assert _Unknown() is X

    def test_x_survives_pickle_as_singleton(self):
        assert pickle.loads(pickle.dumps(X)) is X

    def test_x_repr(self):
        assert repr(X) == "X"

    def test_x_bool_coercion_raises(self):
        with pytest.raises(ValueError):
            bool(X)

    def test_is_x(self):
        assert is_x(X)
        assert not is_x(0)
        assert not is_x(None)
        assert not is_x(False)

    def test_as_bool_rejects_x(self):
        with pytest.raises(ValueError):
            as_bool(X)

    def test_as_bool_accepts_ints(self):
        assert as_bool(1) is True
        assert as_bool(0) is False

    def test_bit(self):
        assert bit(True) == 1
        assert bit(0) == 0


class TestSameValue:
    def test_x_equals_x(self):
        assert same_value(X, X)

    def test_x_differs_from_concrete(self):
        assert not same_value(X, 0)
        assert not same_value(1, X)

    def test_concrete_equality(self):
        assert same_value(3, 3)
        assert same_value((1, 2), (1, 2))
        assert not same_value(3, 4)

    def test_incomparable_values_differ(self):
        class Weird:
            def __eq__(self, other):
                raise RuntimeError("no comparisons")

        assert not same_value(Weird(), Weird())


class TestOnehot:
    def test_empty_vector(self):
        assert onehot_index([]) is None

    def test_all_clear(self):
        assert onehot_index([False, False, False]) is None

    def test_single_bit(self):
        assert onehot_index([False, True, False]) == 1

    def test_two_bits_raises(self):
        with pytest.raises(ValueError):
            onehot_index([True, False, True])

    def test_popcount(self):
        assert popcount([True, False, True, True]) == 3
        assert popcount([]) == 0


class TestSignal:
    def test_initial_value_is_x(self):
        sig = Signal("s")
        assert is_x(sig.value)

    def test_set_changes_value_and_reports(self):
        sig = Signal("s")
        assert sig.set(5) is True
        assert sig.value == 5

    def test_set_same_value_reports_no_change(self):
        sig = Signal("s", init=7)
        assert sig.set(7) is False

    def test_touched_tracking(self):
        sig = Signal("s")
        sig.clear_touched()
        assert not sig.touched
        sig.set(1)
        assert sig.touched
        sig.clear_touched()
        assert not sig.touched

    def test_double_driver_rejected(self):
        sig = Signal("s")
        a = Component("a")
        b = Component("b")
        sig.set_driver(a)
        with pytest.raises(WiringError):
            sig.set_driver(b)

    def test_same_driver_twice_is_fine(self):
        sig = Signal("s")
        a = Component("a")
        sig.set_driver(a)
        sig.set_driver(a)
        assert sig.driver is a


class TestComponentTree:
    def test_path_is_hierarchical(self):
        top = Component("top")
        mid = Component("mid", parent=top)
        leaf = Component("leaf", parent=mid)
        assert leaf.path == "top.mid.leaf"

    def test_iter_tree_depth_first(self):
        top = Component("top")
        a = Component("a", parent=top)
        b = Component("b", parent=top)
        a1 = Component("a1", parent=a)
        assert list(top.iter_tree()) == [top, a, a1, b]

    def test_duplicate_child_name_rejected(self):
        top = Component("top")
        Component("kid", parent=top)
        with pytest.raises(WiringError):
            Component("kid", parent=top)

    def test_signal_names_carry_path(self):
        top = Component("top")
        kid = Component("kid", parent=top)
        sig = kid.signal("s")
        assert sig.name == "top.kid.s"

    def test_duplicate_signal_name_rejected(self):
        comp = Component("c")
        comp.signal("s")
        with pytest.raises(WiringError):
            comp.signal("s")

    def test_output_sets_driver(self):
        comp = Component("c")
        sig = comp.output("o")
        assert sig.driver is comp

    def test_all_signals_collects_descendants(self):
        top = Component("top")
        kid = Component("kid", parent=top)
        top.signal("a")
        kid.signal("b")
        names = {s.name for s in top.all_signals()}
        assert names == {"top.a", "top.kid.b"}
